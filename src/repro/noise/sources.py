"""Registered :class:`NoiseSource` implementations.

Adapters binding every pre-existing noise mechanism to the unified
protocol:

* ``trace-replay`` — the paper's per-CPU worst-case replay
  (:class:`~repro.core.config.NoiseConfig` through
  :class:`~repro.core.injector.NoiseInjector`);
* ``io`` — completion-interrupt storms + writeback flusher bursts
  (:mod:`repro.extensions.ionoise`);
* ``memory`` — DRAM-bandwidth hogs (:mod:`repro.extensions.memnoise`);
* ``hpas.cpu_occupy`` / ``hpas.membw`` / ``hpas.cache_thrash`` — the
  HPAS-style synthetic generators (:mod:`repro.extensions.hpas`),
  stored by their generator parameters so specs stay small and
  human-readable;
* ``background`` lives in :mod:`repro.noise.background` (it wraps the
  synthetic OS-activity model, which needs environment serialization).

All of them serialize through the common
``{"kind", "version", "params"}`` envelope, so a single JSON document
can describe any composition of heterogeneous noise.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.config import NoiseConfig
from repro.extensions.ionoise import IoBurst, IoNoiseConfig, IoNoiseInjector
from repro.extensions.memnoise import MemoryNoiseConfig, MemoryNoiseEvent, MemoryNoiseInjector
from repro.noise.base import AttachedSource, NoiseSource, register_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

__all__ = [
    "TraceReplaySource",
    "IoNoiseSource",
    "MemoryNoiseSource",
    "HpasCpuOccupySource",
    "HpasMemoryBandwidthSource",
    "HpasCacheThrashSource",
]


class _LaunchOnStart(AttachedSource):
    """Adapter for single-use injectors armed by ``launch(machine)``."""

    def __init__(self, machine: "Machine", injector):
        self.machine = machine
        self.injector = injector

    def start(self, expected_duration: float) -> None:
        self.injector.launch(self.machine)


def _parse_float(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"noise parameter {key}={value!r} is not a number") from None


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"noise parameter {key}={value!r} is not an integer") from None


def _parse_cpus(key: str, value: str) -> tuple[int, ...]:
    """CPU lists use ``+`` separators (``,`` splits parameters)."""
    try:
        return tuple(int(part) for part in value.split("+") if part != "")
    except ValueError:
        raise ValueError(f"noise parameter {key}={value!r} is not a +-separated CPU list") from None


# ----------------------------------------------------------------------
# trace replay (the paper's injector)
# ----------------------------------------------------------------------
@register_source
class TraceReplaySource(NoiseSource):
    """Replays a per-CPU worst-case noise configuration (paper §4.3)."""

    kind: ClassVar[str] = "trace-replay"

    def __init__(self, config: NoiseConfig):
        if not isinstance(config, NoiseConfig):
            raise TypeError(f"TraceReplaySource needs a NoiseConfig, got {type(config).__name__}")
        self.config = config

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        from repro.core.injector import NoiseInjector

        return _LaunchOnStart(machine, NoiseInjector(self.config))

    def params(self) -> dict:
        return {"config": json.loads(self.config.to_json())}

    @classmethod
    def from_params(cls, params: dict) -> "TraceReplaySource":
        return cls(NoiseConfig.from_json(json.dumps(params["config"])))

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {"path": "noise config JSON written by `repro-noise configure` (required)"}

    @classmethod
    def from_cli(cls, **raw: str) -> "TraceReplaySource":
        path = raw.get("path")
        if not path:
            raise ValueError("trace-replay needs path=<config.json>")
        return cls(NoiseConfig.load(path))


# ----------------------------------------------------------------------
# I/O interference
# ----------------------------------------------------------------------
@register_source
class IoNoiseSource(NoiseSource):
    """I/O interference: completion IRQ storms + flusher kworkers."""

    kind: ClassVar[str] = "io"

    def __init__(self, config: IoNoiseConfig):
        if not isinstance(config, IoNoiseConfig):
            raise TypeError(f"IoNoiseSource needs an IoNoiseConfig, got {type(config).__name__}")
        self.config = config

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        return _LaunchOnStart(machine, IoNoiseInjector(self.config, rng=rng))

    def params(self) -> dict:
        return {"config": json.loads(self.config.to_json())}

    @classmethod
    def from_params(cls, params: dict) -> "IoNoiseSource":
        return cls(IoNoiseConfig.from_json(json.dumps(params["config"])))

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "start": "burst start time in seconds (required)",
            "duration": "burst window in seconds (required)",
            "irq_rate": "completion interrupts per second (default 2000)",
            "irq_duration": "CPU time per interrupt in seconds (default 8e-6)",
            "irq_cpus": "+-separated CPUs receiving completions (default 0)",
            "flush_cpu_time": "flusher CPU-seconds over the window (default 0.05)",
            "flush_segments": "flusher wakeups (default 20)",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "IoNoiseSource":
        if "start" not in raw or "duration" not in raw:
            raise ValueError("io needs start=<s> and duration=<s>")
        burst = IoBurst(
            start=_parse_float("start", raw["start"]),
            duration=_parse_float("duration", raw["duration"]),
            irq_rate=_parse_float("irq_rate", raw.get("irq_rate", "2000")),
            irq_duration=_parse_float("irq_duration", raw.get("irq_duration", "8e-6")),
            irq_cpus=_parse_cpus("irq_cpus", raw.get("irq_cpus", "0")),
            flush_cpu_time=_parse_float("flush_cpu_time", raw.get("flush_cpu_time", "0.05")),
            flush_segments=_parse_int("flush_segments", raw.get("flush_segments", "20")),
        )
        return cls(IoNoiseConfig([burst]))


# ----------------------------------------------------------------------
# memory bandwidth
# ----------------------------------------------------------------------
@register_source
class MemoryNoiseSource(NoiseSource):
    """Memory-bandwidth hogs pressuring the saturating DRAM model."""

    kind: ClassVar[str] = "memory"

    def __init__(self, config: MemoryNoiseConfig):
        if not isinstance(config, MemoryNoiseConfig):
            raise TypeError(
                f"MemoryNoiseSource needs a MemoryNoiseConfig, got {type(config).__name__}"
            )
        self.config = config

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        return _LaunchOnStart(machine, MemoryNoiseInjector(self.config))

    def params(self) -> dict:
        return {"config": json.loads(self.config.to_json())}

    @classmethod
    def from_params(cls, params: dict) -> "MemoryNoiseSource":
        return cls(MemoryNoiseConfig.from_json(json.dumps(params["config"])))

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "start": "burst start time in seconds (required)",
            "duration": "hog CPU-seconds (required)",
            "bandwidth_gbs": "DRAM bandwidth the hog pulls (required)",
            "source": "label in traces (default membw-hog)",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "MemoryNoiseSource":
        missing = [k for k in ("start", "duration", "bandwidth_gbs") if k not in raw]
        if missing:
            raise ValueError(f"memory needs {', '.join(missing)}")
        event = MemoryNoiseEvent(
            start=_parse_float("start", raw["start"]),
            duration=_parse_float("duration", raw["duration"]),
            bandwidth_gbs=_parse_float("bandwidth_gbs", raw["bandwidth_gbs"]),
            source=raw.get("source", "membw-hog"),
        )
        return cls(MemoryNoiseConfig([event]))


# ----------------------------------------------------------------------
# HPAS-style synthetic generators (stored by generator parameters)
# ----------------------------------------------------------------------
@register_source
class HpasCpuOccupySource(NoiseSource):
    """HPAS ``cpuoccupy``: synthetic (optionally square-wave) CPU hogs."""

    kind: ClassVar[str] = "hpas.cpu_occupy"

    def __init__(
        self,
        start: float,
        duration: float,
        cpus: tuple[int, ...],
        utilization: float = 1.0,
        period: float = 10e-3,
    ):
        self.start = float(start)
        self.duration = float(duration)
        self.cpus = tuple(int(c) for c in cpus)
        self.utilization = float(utilization)
        self.period = float(period)
        self._build()  # validate eagerly

    def _build(self) -> NoiseConfig:
        from repro.extensions.hpas import cpu_occupy

        return cpu_occupy(
            start=self.start,
            duration=self.duration,
            cpus=self.cpus,
            utilization=self.utilization,
            period=self.period,
        )

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        from repro.core.injector import NoiseInjector

        return _LaunchOnStart(machine, NoiseInjector(self._build()))

    def params(self) -> dict:
        return {
            "start": self.start,
            "duration": self.duration,
            "cpus": list(self.cpus),
            "utilization": self.utilization,
            "period": self.period,
        }

    @classmethod
    def from_params(cls, params: dict) -> "HpasCpuOccupySource":
        return cls(
            start=params["start"],
            duration=params["duration"],
            cpus=tuple(params["cpus"]),
            utilization=params.get("utilization", 1.0),
            period=params.get("period", 10e-3),
        )

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "start": "hog start time in seconds (required)",
            "duration": "hog duration in seconds (required)",
            "cpus": "+-separated target CPUs (required)",
            "utilization": "busy fraction per period, (0, 1] (default 1.0)",
            "period": "square-wave period in seconds (default 0.01)",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "HpasCpuOccupySource":
        missing = [k for k in ("start", "duration", "cpus") if k not in raw]
        if missing:
            raise ValueError(f"hpas.cpu_occupy needs {', '.join(missing)}")
        return cls(
            start=_parse_float("start", raw["start"]),
            duration=_parse_float("duration", raw["duration"]),
            cpus=_parse_cpus("cpus", raw["cpus"]),
            utilization=_parse_float("utilization", raw.get("utilization", "1.0")),
            period=_parse_float("period", raw.get("period", "0.01")),
        )


@register_source
class HpasMemoryBandwidthSource(NoiseSource):
    """HPAS ``membw``: streaming hogs saturating DRAM."""

    kind: ClassVar[str] = "hpas.membw"

    def __init__(self, start: float, duration: float, bandwidth_gbs: float, streams: int = 1):
        self.start = float(start)
        self.duration = float(duration)
        self.bandwidth_gbs = float(bandwidth_gbs)
        self.streams = int(streams)
        self._build()

    def _build(self) -> MemoryNoiseConfig:
        from repro.extensions.hpas import memory_bandwidth

        return memory_bandwidth(
            start=self.start,
            duration=self.duration,
            bandwidth_gbs=self.bandwidth_gbs,
            streams=self.streams,
        )

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        return _LaunchOnStart(machine, MemoryNoiseInjector(self._build()))

    def params(self) -> dict:
        return {
            "start": self.start,
            "duration": self.duration,
            "bandwidth_gbs": self.bandwidth_gbs,
            "streams": self.streams,
        }

    @classmethod
    def from_params(cls, params: dict) -> "HpasMemoryBandwidthSource":
        return cls(
            start=params["start"],
            duration=params["duration"],
            bandwidth_gbs=params["bandwidth_gbs"],
            streams=params.get("streams", 1),
        )

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "start": "hog start time in seconds (required)",
            "duration": "hog duration in seconds (required)",
            "bandwidth_gbs": "total DRAM bandwidth pulled (required)",
            "streams": "number of hog streams (default 1)",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "HpasMemoryBandwidthSource":
        missing = [k for k in ("start", "duration", "bandwidth_gbs") if k not in raw]
        if missing:
            raise ValueError(f"hpas.membw needs {', '.join(missing)}")
        return cls(
            start=_parse_float("start", raw["start"]),
            duration=_parse_float("duration", raw["duration"]),
            bandwidth_gbs=_parse_float("bandwidth_gbs", raw["bandwidth_gbs"]),
            streams=_parse_int("streams", raw.get("streams", "1")),
        )


@register_source
class HpasCacheThrashSource(NoiseSource):
    """HPAS ``cachecopy``: per-CPU copy loops evicting shared cache."""

    kind: ClassVar[str] = "hpas.cache_thrash"

    def __init__(self, start: float, duration: float, cpus: tuple[int, ...], bandwidth_gbs: float = 8.0):
        self.start = float(start)
        self.duration = float(duration)
        self.cpus = tuple(int(c) for c in cpus)
        self.bandwidth_gbs = float(bandwidth_gbs)
        self._build()

    def _build(self) -> MemoryNoiseConfig:
        from repro.extensions.hpas import cache_thrash

        return cache_thrash(
            start=self.start,
            duration=self.duration,
            cpus=self.cpus,
            bandwidth_gbs=self.bandwidth_gbs,
        )

    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        return _LaunchOnStart(machine, MemoryNoiseInjector(self._build()))

    def params(self) -> dict:
        return {
            "start": self.start,
            "duration": self.duration,
            "cpus": list(self.cpus),
            "bandwidth_gbs": self.bandwidth_gbs,
        }

    @classmethod
    def from_params(cls, params: dict) -> "HpasCacheThrashSource":
        return cls(
            start=params["start"],
            duration=params["duration"],
            cpus=tuple(params["cpus"]),
            bandwidth_gbs=params.get("bandwidth_gbs", 8.0),
        )

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "start": "thrash start time in seconds (required)",
            "duration": "thrash duration in seconds (required)",
            "cpus": "+-separated victim CPUs (required)",
            "bandwidth_gbs": "per-CPU bandwidth draw (default 8.0)",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "HpasCacheThrashSource":
        missing = [k for k in ("start", "duration", "cpus") if k not in raw]
        if missing:
            raise ValueError(f"hpas.cache_thrash needs {', '.join(missing)}")
        return cls(
            start=_parse_float("start", raw["start"]),
            duration=_parse_float("duration", raw["duration"]),
            cpus=_parse_cpus("cpus", raw["cpus"]),
            bandwidth_gbs=_parse_float("bandwidth_gbs", raw.get("bandwidth_gbs", "8.0")),
        )
