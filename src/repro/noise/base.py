"""The :class:`NoiseSource` protocol, registry, and :class:`NoiseStack`.

The paper's injector replays one kind of noise (OSnoise trace replay);
the repo has since grown synthetic background noise, I/O interference,
memory-bandwidth hogs, and HPAS-style generators — each of which used
to carry its own config type and its own ad-hoc wiring through the
harness.  This module is the single seam they all plug into:

* :class:`NoiseSource` — an immutable, JSON-serialisable description of
  one noise mechanism.  ``attach(machine, rng)`` binds it to a single
  simulated run and returns an :class:`AttachedSource` whose
  ``start(expected_duration)`` arms the events; ``spec_hash()`` is a
  stable content address used by the result cache.
* the **registry** — string-keyed source types
  (:func:`register_source` / :func:`get_source_type` /
  :func:`available_sources`), so serialized specs, CLI flags, and cache
  keys all dispatch by ``kind``.
* :class:`NoiseStack` — an ordered composition of sources driven in one
  run.  Determinism is preserved per-source: the stack spawns one child
  generator per source from the run's RNG via ``SeedSequence`` spawn
  keys, so adding a source never perturbs the streams of the others.

Any future mechanism (network noise, thermal throttling, cgroup
pressure) implements the protocol, registers a ``kind``, and is
immediately usable from ``ExperimentSpec``, the cache, sweeps,
campaigns, and the CLI's repeatable ``--noise`` flags.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

__all__ = [
    "SCHEMA_VERSION",
    "AttachedSource",
    "NoiseSource",
    "NoiseStack",
    "register_source",
    "get_source_type",
    "available_sources",
    "source_from_dict",
    "source_from_json",
    "parse_noise_spec",
]

#: serialization schema of ``{"kind": ..., "params": ...}`` payloads;
#: bump when the envelope (not a source's own params) changes shape
SCHEMA_VERSION = 1


class AttachedSource:
    """One source bound to one machine/run (returned by ``attach``).

    ``start`` arms the source's events on the machine's engine;
    ``stop`` cancels whatever is still pending (teardown).  The base
    implementation of ``stop`` is a no-op — sources whose events are
    simply abandoned when the engine stops need not override it.
    """

    def start(self, expected_duration: float) -> None:
        """Arm the source's events (``expected_duration`` places windows)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Cancel pending activity; safe to call after the run ended."""


class NoiseSource(ABC):
    """An immutable, serialisable description of one noise mechanism.

    Subclasses define a unique ``kind`` (the registry key), parameter
    (de)serialization via ``params``/``from_params``, and per-run
    binding via ``attach``.  Instances must be safe to share across
    repetitions and process boundaries (pure data, no machine state).
    """

    #: registry key; unique per source type
    kind: ClassVar[str] = ""

    # -------------------------------------------------- per-run binding
    @abstractmethod
    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        """Bind this source to one run; the result's ``start`` arms it."""

    # -------------------------------------------------- serialization
    @abstractmethod
    def params(self) -> dict:
        """JSON-serialisable parameters (inverse of :meth:`from_params`)."""

    @classmethod
    @abstractmethod
    def from_params(cls, params: dict) -> "NoiseSource":
        """Rebuild a source from :meth:`params` output."""

    def to_dict(self) -> dict:
        """Registry envelope: ``{"kind", "version", "params"}``."""
        return {"kind": self.kind, "version": SCHEMA_VERSION, "params": self.params()}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the envelope to JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def spec_hash(self) -> str:
        """Stable content address of this source (cache-key material)."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # -------------------------------------------------- semantics
    @property
    def disables_rt_throttle(self) -> bool:
        """Whether replaying this source needs RT throttling off.

        Injected SCHED_FIFO events must be able to occupy 100% of a CPU
        (the paper disables the fail-safe for injection runs); ambient
        background noise does not require it.
        """
        return True

    # -------------------------------------------------- CLI surface
    @classmethod
    def cli_params(cls) -> dict[str, str]:
        """``key -> help`` map for ``--noise kind:key=val,...`` flags."""
        return {}

    @classmethod
    def from_cli(cls, **raw: str) -> "NoiseSource":
        """Build a source from raw ``--noise`` key/value strings."""
        raise ValueError(f"noise source {cls.kind!r} cannot be built from --noise flags")

    # -------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NoiseSource):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.spec_hash())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r} hash={self.spec_hash()}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[NoiseSource]] = {}


def register_source(cls: type[NoiseSource]) -> type[NoiseSource]:
    """Class decorator: make ``cls`` constructible by its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    existing = _REGISTRY.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"noise source kind {cls.kind!r} already registered by {existing.__name__}")
    _REGISTRY[cls.kind] = cls
    return cls


def _ensure_builtin_sources() -> None:
    """Import the built-in implementations so the registry is populated
    even when callers only imported :mod:`repro.noise.base`."""
    import repro.noise.background  # noqa: F401
    import repro.noise.sources  # noqa: F401


def get_source_type(kind: str) -> type[NoiseSource]:
    """Look up a registered source type by its ``kind``."""
    _ensure_builtin_sources()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown noise source {kind!r}; registered: {', '.join(available_sources())}"
        ) from None


def available_sources() -> list[str]:
    """Registered source kinds, sorted."""
    _ensure_builtin_sources()
    return sorted(_REGISTRY)


def source_from_dict(payload: dict) -> NoiseSource:
    """Rebuild any registered source from its envelope dict."""
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ValueError(f"noise payload needs a string 'kind': {payload!r}")
    version = payload.get("version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported noise schema version {version!r} for {kind!r}")
    if kind == NoiseStack.kind:
        return NoiseStack.from_dict(payload)
    return get_source_type(kind).from_params(payload.get("params", {}))


def source_from_json(text: str) -> NoiseSource:
    """Rebuild any registered source (or a stack) from JSON."""
    return source_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
class _AttachedStack(AttachedSource):
    """Drives every attached member source through one run."""

    def __init__(self, members: list[AttachedSource]):
        self.members = members

    def start(self, expected_duration: float) -> None:
        for member in self.members:
            member.start(expected_duration)

    def stop(self) -> None:
        for member in self.members:
            member.stop()


class NoiseStack(NoiseSource):
    """An ordered composition of noise sources driven in one run.

    Stacks flatten on construction (a stack of stacks is just the
    concatenated sources) and serialize as
    ``{"kind": "stack", "sources": [...]}`` — the source-agnostic form
    the result cache hashes.  ``attach`` spawns one child RNG per
    member from the run's generator (``SeedSequence`` spawn keys), so
    every member draws from an independent, reproducible stream.
    """

    kind: ClassVar[str] = "stack"

    def __init__(self, sources: Iterable[NoiseSource] = ()):
        flat: list[NoiseSource] = []
        for src in sources:
            if isinstance(src, NoiseStack):
                flat.extend(src.sources)
            elif isinstance(src, NoiseSource):
                flat.append(src)
            else:
                raise TypeError(
                    f"NoiseStack takes NoiseSource instances, got {type(src).__name__} "
                    "(wrap legacy configs with NoiseStack.coerce)"
                )
        self.sources: tuple[NoiseSource, ...] = tuple(flat)

    # -------------------------------------------------- coercion
    @classmethod
    def coerce(cls, obj) -> Optional["NoiseStack"]:
        """Normalise anything noise-shaped into a stack (or ``None``).

        Accepts ``None``, a :class:`NoiseStack`, any :class:`NoiseSource`,
        a sequence of sources, or the legacy config types
        (:class:`~repro.core.config.NoiseConfig`,
        :class:`~repro.extensions.ionoise.IoNoiseConfig`,
        :class:`~repro.extensions.memnoise.MemoryNoiseConfig`) — the
        deprecated ``noise_config=`` seam funnels through here.
        """
        if obj is None:
            return None
        if isinstance(obj, NoiseStack):
            return obj
        if isinstance(obj, NoiseSource):
            return cls([obj])
        if isinstance(obj, (list, tuple)):
            return cls([s for o in obj for s in (cls.coerce(o) or cls()).sources])
        from repro.core.config import NoiseConfig
        from repro.extensions.ionoise import IoNoiseConfig
        from repro.extensions.memnoise import MemoryNoiseConfig
        from repro.noise.sources import IoNoiseSource, MemoryNoiseSource, TraceReplaySource
        from repro.sim.noise import NoiseEnvironment

        if isinstance(obj, NoiseConfig):
            return cls([TraceReplaySource(obj)])
        if isinstance(obj, IoNoiseConfig):
            return cls([IoNoiseSource(obj)])
        if isinstance(obj, MemoryNoiseConfig):
            return cls([MemoryNoiseSource(obj)])
        if isinstance(obj, NoiseEnvironment):
            from repro.noise.background import BackgroundNoiseSource

            return cls([BackgroundNoiseSource(obj)])
        raise TypeError(f"cannot interpret {type(obj).__name__} as a noise source")

    # -------------------------------------------------- protocol
    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        """Bind every member to the run with an independent child RNG."""
        children = _spawn_children(rng, len(self.sources))
        return _AttachedStack(
            [src.attach(machine, child) for src, child in zip(self.sources, children)]
        )

    def params(self) -> dict:
        return {"sources": [s.to_dict() for s in self.sources]}

    @classmethod
    def from_params(cls, params: dict) -> "NoiseStack":
        return cls([source_from_dict(d) for d in params.get("sources", [])])

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "version": SCHEMA_VERSION,
            "sources": [s.to_dict() for s in self.sources],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NoiseStack":
        return cls([source_from_dict(d) for d in payload.get("sources", [])])

    @classmethod
    def from_json(cls, text: str) -> "NoiseStack":
        """Parse a stack (or promote a single source) from JSON."""
        src = source_from_json(text)
        return src if isinstance(src, cls) else cls([src])

    @property
    def disables_rt_throttle(self) -> bool:
        return any(s.disables_rt_throttle for s in self.sources)

    # -------------------------------------------------- conveniences
    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)

    def __bool__(self) -> bool:
        return bool(self.sources)

    def kinds(self) -> list[str]:
        """Member kinds in stack order (diagnostics, CLI echo)."""
        return [s.kind for s in self.sources]

    def describe(self) -> str:
        """One-line human-readable composition summary."""
        return " + ".join(self.kinds()) if self.sources else "(empty)"

    def __repr__(self) -> str:
        return f"<NoiseStack [{self.describe()}] hash={self.spec_hash()}>"


def _spawn_children(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators via SeedSequence spawn keys."""
    if n == 0:
        return []
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - numpy < 1.25
        seed_seq = getattr(rng.bit_generator, "seed_seq", None) or rng.bit_generator._seed_seq
        return [np.random.default_rng(child) for child in seed_seq.spawn(n)]


# ----------------------------------------------------------------------
# CLI spec parsing
# ----------------------------------------------------------------------
def parse_noise_spec(text: str) -> NoiseSource:
    """Parse one ``--noise`` flag: ``KIND[:key=val,key=val,...]``.

    Example specs::

        trace-replay:path=noise_config.json
        io:start=0.05,duration=0.3,irq_rate=3000,irq_cpus=0+1
        memory:start=0.0,duration=0.5,bandwidth_gbs=20
        hpas.cache_thrash:start=0.0,duration=0.2,cpus=0+1+2
        background:preset=desktop,intensity=1.5
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise ValueError(f"empty noise source kind in {text!r}")
    try:
        cls = get_source_type(kind)
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    raw: dict[str, str] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ValueError(f"malformed noise parameter {item!r} in {text!r} (want key=val)")
            raw[key.strip()] = value.strip()
    known = cls.cli_params()
    unknown = set(raw) - set(known)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for noise source {kind!r} "
            f"(accepted: {sorted(known)})"
        )
    return cls.from_cli(**raw)
