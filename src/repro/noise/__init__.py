"""Unified noise abstraction: one protocol, one registry, one stack.

Every noise mechanism in the repo — the paper's trace-replay injector,
synthetic background OS activity, I/O interference, memory-bandwidth
hogs, and the HPAS-style generators — implements the
:class:`NoiseSource` protocol and registers under a string ``kind``.
A :class:`NoiseStack` composes any of them into a single run:

    from repro.noise import NoiseStack, parse_noise_spec
    stack = NoiseStack([
        parse_noise_spec("trace-replay:path=noise_config.json"),
        parse_noise_spec("io:start=0.05,duration=0.3"),
        parse_noise_spec("memory:start=0.0,duration=0.5,bandwidth_gbs=20"),
    ])
    run_experiment(spec, noise=stack)

See ``docs/noise_sources.md`` for the protocol contract, the ``--noise``
CLI syntax, and how to add a new source.
"""

from repro.noise.base import (
    SCHEMA_VERSION,
    AttachedSource,
    NoiseSource,
    NoiseStack,
    available_sources,
    get_source_type,
    parse_noise_spec,
    register_source,
    source_from_dict,
    source_from_json,
)
from repro.noise.background import (
    BackgroundNoiseSource,
    environment_from_dict,
    environment_to_dict,
)
from repro.noise.sources import (
    HpasCacheThrashSource,
    HpasCpuOccupySource,
    HpasMemoryBandwidthSource,
    IoNoiseSource,
    MemoryNoiseSource,
    TraceReplaySource,
)

__all__ = [
    "SCHEMA_VERSION",
    "AttachedSource",
    "NoiseSource",
    "NoiseStack",
    "available_sources",
    "get_source_type",
    "parse_noise_spec",
    "register_source",
    "source_from_dict",
    "source_from_json",
    "TraceReplaySource",
    "IoNoiseSource",
    "MemoryNoiseSource",
    "HpasCpuOccupySource",
    "HpasMemoryBandwidthSource",
    "HpasCacheThrashSource",
    "BackgroundNoiseSource",
    "environment_from_dict",
    "environment_to_dict",
]
