"""``background``: the synthetic OS-activity model as a noise source.

Wraps :class:`~repro.sim.noise.NoiseEnvironment` /
:class:`~repro.sim.noise.NoiseModel` — the "real system" the tracer
observes — so ambient OS noise composes with replayed noise in one
:class:`~repro.noise.base.NoiseStack`.  Useful for studies like "how
does the injector's replay degrade when the target machine is noisier
than the traced one": every platform still carries its own baseline
environment, and this source layers an *additional* one on top.

Environments serialize in full (micro spec, macro sources, anomaly
lottery), so a composed spec round-trips through JSON like every other
source.  Note that a second environment's micro noise overwrites the
per-CPU steal fractions the platform environment set — macro sources
and anomalies compose additively through the scheduler.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING, ClassVar, Optional

import numpy as np

from repro.noise.base import AttachedSource, NoiseSource, register_source
from repro.sim.noise import (
    AnomalySpec,
    AnomalyType,
    MicroNoiseSpec,
    NoiseEnvironment,
    NoiseModel,
    NoiseSourceSpec,
    desktop_noise,
    hpc_noise,
)
from repro.sim.task import TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

__all__ = [
    "BackgroundNoiseSource",
    "environment_to_dict",
    "environment_from_dict",
]

_PRESETS = {
    "desktop": lambda: desktop_noise(),
    "desktop-nogui": lambda: desktop_noise(gui=False),
    "hpc": lambda: hpc_noise(),
}


# ----------------------------------------------------------------------
# environment (de)serialization
# ----------------------------------------------------------------------
def environment_to_dict(env: NoiseEnvironment) -> dict:
    """Full JSON-serialisable form of a noise environment."""
    return {
        "micro": asdict(env.micro),
        "sources": [
            {**asdict(s), "kind": s.kind.name} for s in env.sources
        ],
        "anomalies": {
            "prob": env.anomalies.prob,
            "scale_with_cores": env.anomalies.scale_with_cores,
            "candidates": [
                {
                    "name": a.name,
                    "total_busy": list(a.total_busy),
                    "n_segments": list(a.n_segments),
                    "fifo_fraction": a.fifo_fraction,
                    "window_fraction": list(a.window_fraction),
                }
                for a in env.anomalies.candidates
            ],
        },
        "gui": env.gui,
        "os_affinity": list(env.os_affinity),
    }


def environment_from_dict(data: dict) -> NoiseEnvironment:
    """Inverse of :func:`environment_to_dict`."""
    anomalies = data.get("anomalies", {})
    return NoiseEnvironment(
        micro=MicroNoiseSpec(**data.get("micro", {})),
        sources=tuple(
            NoiseSourceSpec(**{**s, "kind": TaskKind[s["kind"]]})
            for s in data.get("sources", [])
        ),
        anomalies=AnomalySpec(
            prob=anomalies.get("prob", 0.0),
            scale_with_cores=anomalies.get("scale_with_cores", True),
            candidates=tuple(
                AnomalyType(
                    name=a["name"],
                    total_busy=tuple(a["total_busy"]),
                    n_segments=tuple(a["n_segments"]),
                    fifo_fraction=a.get("fifo_fraction", 0.15),
                    window_fraction=tuple(a.get("window_fraction", (0.3, 0.9))),
                )
                for a in anomalies.get("candidates", [])
            ),
        ),
        gui=data.get("gui", False),
        os_affinity=tuple(data.get("os_affinity", [])),
    )


class _AttachedBackground(AttachedSource):
    """One extra :class:`NoiseModel` layered onto a run."""

    def __init__(self, machine: "Machine", env: NoiseEnvironment, rng: np.random.Generator):
        self.model = NoiseModel(machine, env, rng)

    def start(self, expected_duration: float) -> None:
        self.model.start(expected_duration)

    def stop(self) -> None:
        self.model.stop()


@register_source
class BackgroundNoiseSource(NoiseSource):
    """Synthetic ambient OS noise layered on top of the platform's own."""

    kind: ClassVar[str] = "background"

    def __init__(self, env: NoiseEnvironment, intensity: float = 1.0):
        if not isinstance(env, NoiseEnvironment):
            raise TypeError(
                f"BackgroundNoiseSource needs a NoiseEnvironment, got {type(env).__name__}"
            )
        if intensity <= 0:
            raise ValueError(f"intensity must be positive: {intensity!r}")
        self.intensity = float(intensity)
        self.env = env.intensity_scaled(self.intensity) if intensity != 1.0 else env

    @classmethod
    def preset(
        cls,
        name: str,
        intensity: float = 1.0,
        anomaly_prob: Optional[float] = None,
    ) -> "BackgroundNoiseSource":
        """Build from a named environment preset (see ``presets()``)."""
        try:
            env = _PRESETS[name]()
        except KeyError:
            raise ValueError(
                f"unknown background preset {name!r} (available: {', '.join(sorted(_PRESETS))})"
            ) from None
        if anomaly_prob is not None:
            from dataclasses import replace

            env = replace(env, anomalies=replace(env.anomalies, prob=anomaly_prob))
        return cls(env, intensity=intensity)

    @staticmethod
    def presets() -> list[str]:
        """Available preset names for :meth:`preset` / the CLI."""
        return sorted(_PRESETS)

    # -------------------------------------------------- protocol
    def attach(self, machine: "Machine", rng: np.random.Generator) -> AttachedSource:
        return _AttachedBackground(machine, self.env, rng)

    def params(self) -> dict:
        return {"env": environment_to_dict(self.env)}

    @classmethod
    def from_params(cls, params: dict) -> "BackgroundNoiseSource":
        return cls(environment_from_dict(params["env"]))

    @property
    def disables_rt_throttle(self) -> bool:
        # Ambient noise obeys the normal RT fail-safe, like the
        # platform's own environment does during baseline runs.
        return False

    @classmethod
    def cli_params(cls) -> dict[str, str]:
        return {
            "preset": f"environment preset: {', '.join(sorted(_PRESETS))} (required)",
            "intensity": "macro-source rate multiplier (default 1.0)",
            "anomaly_prob": "override the per-run anomaly probability",
        }

    @classmethod
    def from_cli(cls, **raw: str) -> "BackgroundNoiseSource":
        if "preset" not in raw:
            raise ValueError("background needs preset=<name>")
        try:
            intensity = float(raw.get("intensity", "1.0"))
            anomaly_prob = float(raw["anomaly_prob"]) if "anomaly_prob" in raw else None
        except ValueError:
            raise ValueError("background intensity/anomaly_prob must be numbers") from None
        return cls.preset(raw["preset"], intensity=intensity, anomaly_prob=anomaly_prob)
