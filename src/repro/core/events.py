"""Noise-event vocabulary shared by tracer, pipeline, and injector.

The OSnoise tracer distinguishes three event classes (paper Fig. 3).
The configuration generator maps each class to the scheduling policy
the injector must replay it under (paper §4.2): thread activity is
ordinary ``SCHED_OTHER`` work, while interrupt-class noise preempts
everything and is replayed as ``SCHED_FIFO``.
"""

from __future__ import annotations

import enum

__all__ = ["EventType", "POLICY_FOR_EVENT", "RT_PRIORITY_FOR_EVENT", "event_type_code"]


class EventType(enum.IntEnum):
    """OSnoise event classes; the integer codes index columnar traces."""

    IRQ = 0        # "irq_noise"      — hardware interrupt handlers
    SOFTIRQ = 1    # "softirq_noise"  — softirq bottom halves
    THREAD = 2     # "thread_noise"   — other threads (kworkers, daemons)

    @property
    def label(self) -> str:
        """The OSnoise trace label for this class."""
        return _LABELS[self]

    @classmethod
    def from_label(cls, label: str) -> "EventType":
        """Parse an OSnoise label (``irq_noise`` etc.)."""
        try:
            return _BY_LABEL[label]
        except KeyError:
            raise ValueError(f"unknown OSnoise event label: {label!r}") from None


_LABELS = {
    EventType.IRQ: "irq_noise",
    EventType.SOFTIRQ: "softirq_noise",
    EventType.THREAD: "thread_noise",
}
_BY_LABEL = {v: k for k, v in _LABELS.items()}

#: Scheduling policy the injector uses for each event class (§4.2).
POLICY_FOR_EVENT = {
    EventType.IRQ: "SCHED_FIFO",
    EventType.SOFTIRQ: "SCHED_FIFO",
    EventType.THREAD: "SCHED_OTHER",
}

#: Real-time priority used when replaying under SCHED_FIFO.
RT_PRIORITY_FOR_EVENT = {
    EventType.IRQ: 90,
    EventType.SOFTIRQ: 50,
    EventType.THREAD: 0,
}


def event_type_code(label_or_type) -> int:
    """Normalise a label / enum / int to the columnar integer code."""
    if isinstance(label_or_type, EventType):
        return int(label_or_type)
    if isinstance(label_or_type, int):
        return int(EventType(label_or_type))
    return int(EventType.from_label(label_or_type))
