"""The paper's contribution: the trace-replay noise-injection pipeline.

Stage 1 — :mod:`repro.core.collection`: run the workload many times with
the OSnoise-style tracer enabled, keeping one trace per run.

Stage 2 — :mod:`repro.core.profile` / :mod:`repro.core.refine` /
:mod:`repro.core.merge` / :mod:`repro.core.config`: compute the average
noise profile, pick the worst-case run, subtract the average
contribution from its trace (delta refinement), merge overlapping
events, and emit a per-CPU JSON noise configuration.

Stage 3 — :mod:`repro.core.injector`: replay the configuration against
a fresh run, one injector process per configured CPU.

:mod:`repro.core.pipeline` wires the stages together;
:mod:`repro.core.accuracy` computes the replication-accuracy metric of
Table 7.
"""

from repro.core.events import EventType, POLICY_FOR_EVENT
from repro.core.trace import Trace, TraceSet
from repro.core.profile import NoiseProfile, SourceStats, build_profile
from repro.core.refine import refine_worst_case
from repro.core.merge import MergeStrategy, merge_events
from repro.core.config import ConfigEvent, NoiseConfig, generate_config
from repro.core.injector import NoiseInjector
from repro.core.accuracy import replication_accuracy
from repro.core.collection import CollectionResult, collect_traces
from repro.core.osnoise_import import load_osnoise_ftrace, parse_osnoise_ftrace
from repro.core.pipeline import NoiseInjectionPipeline, PipelineResult

__all__ = [
    "EventType",
    "POLICY_FOR_EVENT",
    "Trace",
    "TraceSet",
    "NoiseProfile",
    "SourceStats",
    "build_profile",
    "refine_worst_case",
    "MergeStrategy",
    "merge_events",
    "ConfigEvent",
    "NoiseConfig",
    "generate_config",
    "NoiseInjector",
    "replication_accuracy",
    "CollectionResult",
    "collect_traces",
    "parse_osnoise_ftrace",
    "load_osnoise_ftrace",
    "NoiseInjectionPipeline",
    "PipelineResult",
]
