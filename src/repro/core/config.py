"""Noise configuration generation (paper §4.2, Fig. 5).

The configuration file is the injector's blueprint: each traced logical
CPU maps to a list of noise events annotated with start time, duration,
and scheduling policy.  This module turns a worst-case trace plus the
average-noise profile into that JSON structure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.core.events import EventType
from repro.core.merge import MergeStrategy, RawEvent, merge_events, policy_for
from repro.core.profile import NoiseProfile
from repro.core.refine import refine_worst_case
from repro.core.trace import Trace

__all__ = ["ConfigEvent", "NoiseConfig", "generate_config"]

#: events shorter than this are not worth a wakeup+busy-loop (and the
#: real injector could not time them anyway)
DEFAULT_MIN_INJECT_DURATION = 5e-6


@dataclass(frozen=True)
class ConfigEvent:
    """One event an injector process must replay."""

    start: float
    duration: float
    policy: str          # "SCHED_FIFO" | "SCHED_OTHER"
    rt_priority: int
    weight: float
    etype: EventType
    source: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("event needs start >= 0 and duration > 0")
        if self.policy not in ("SCHED_FIFO", "SCHED_OTHER"):
            raise ValueError(f"unknown policy {self.policy!r}")

    def to_dict(self) -> dict:
        """JSON-serialisable form (Fig. 5 field names)."""
        return {
            "start_time": self.start,
            "duration": self.duration,
            "policy": self.policy,
            "rt_priority": self.rt_priority,
            "weight": self.weight,
            "event_type": self.etype.label,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ConfigEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start=d["start_time"],
            duration=d["duration"],
            policy=d["policy"],
            rt_priority=d["rt_priority"],
            weight=d.get("weight", 1.0),
            etype=EventType.from_label(d["event_type"]),
            source=d.get("source", "unknown"),
        )


class NoiseConfig:
    """Per-CPU noise event lists plus provenance metadata."""

    def __init__(self, events_per_cpu: dict[int, list[ConfigEvent]], meta: Optional[dict] = None):
        self.events_per_cpu = {
            cpu: sorted(evts, key=lambda e: e.start) for cpu, evts in events_per_cpu.items() if evts
        }
        self.meta = dict(meta) if meta else {}

    # ------------------------------------------------------------------
    @property
    def n_cpus(self) -> int:
        """Number of injector processes the config spawns."""
        return len(self.events_per_cpu)

    @property
    def n_events(self) -> int:
        """Total events to inject."""
        return sum(len(v) for v in self.events_per_cpu.values())

    def total_busy_time(self) -> float:
        """CPU-seconds of noise the config injects."""
        return sum(e.duration for evts in self.events_per_cpu.values() for e in evts)

    def window(self) -> float:
        """Span from first event start to last event end."""
        if not self.events_per_cpu:
            return 0.0
        starts = [e.start for v in self.events_per_cpu.values() for e in v]
        ends = [e.start + e.duration for v in self.events_per_cpu.values() for e in v]
        return max(ends) - min(starts)

    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise in the Fig.-5 layout (one thread block per CPU)."""
        payload = {
            "meta": self.meta,
            "threads": [
                {
                    "cpu": cpu,
                    "noise_events": [e.to_dict() for e in events],
                }
                for cpu, events in sorted(self.events_per_cpu.items())
            ],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "NoiseConfig":
        """Parse a configuration serialised by :meth:`to_json`."""
        payload = json.loads(text)
        events = {
            int(block["cpu"]): [ConfigEvent.from_dict(d) for d in block["noise_events"]]
            for block in payload["threads"]
        }
        return cls(events, payload.get("meta"))

    def save(self, path) -> None:
        """Write the configuration to ``path`` as indented JSON."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=2))

    @classmethod
    def load(cls, path) -> "NoiseConfig":
        """Read a configuration previously written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NoiseConfig cpus={self.n_cpus} events={self.n_events} "
            f"busy={self.total_busy_time() * 1e3:.2f}ms>"
        )


def generate_config(
    worst: Trace,
    profile: NoiseProfile,
    merge: MergeStrategy = MergeStrategy.IMPROVED,
    min_duration: float = DEFAULT_MIN_INJECT_DURATION,
    meta: Optional[dict] = None,
) -> NoiseConfig:
    """Stage 2 end-to-end: refine, merge, annotate, package.

    Parameters
    ----------
    worst:
        Worst-case trace from the collection stage.
    profile:
        Average-noise profile from the collection stage.
    merge:
        Overlap-merging rule; :attr:`MergeStrategy.NAIVE` reproduces
        the paper's compromised variant.
    min_duration:
        Events shorter than this after refinement are skipped.
    """
    refined = refine_worst_case(worst, profile)
    per_cpu: dict[int, list[RawEvent]] = {}
    for cpu, etype, source, start, duration in refined.iter_records():
        if duration < min_duration:
            continue
        per_cpu.setdefault(cpu, []).append(
            RawEvent(start=start, duration=duration, etype=etype, source=source)
        )
    events_per_cpu: dict[int, list[ConfigEvent]] = {}
    for cpu, raw in per_cpu.items():
        merged = merge_events(raw, merge)
        out = []
        for e in merged:
            policy, prio, weight = policy_for(e.etype, merge)
            out.append(
                ConfigEvent(
                    start=e.start,
                    duration=e.duration,
                    policy=policy,
                    rt_priority=prio,
                    weight=weight,
                    etype=e.etype,
                    source=e.source,
                )
            )
        events_per_cpu[cpu] = out
    full_meta = {
        "merge_strategy": merge.value,
        "worst_case_exec_time": worst.exec_time,
        "min_duration": min_duration,
        **(worst.meta or {}),
        **(meta or {}),
    }
    return NoiseConfig(events_per_cpu, full_meta)
