"""Noise injection during workload execution (paper §4.3, Listing 1).

One injector process per configured logical CPU.  Each process walks
its event list in order: switch scheduling policy if the next event
needs a different one (a real ``sched_setscheduler`` call, modelled as
a small latency), sleep until the event's start time, then occupy a CPU
for the event's duration.  Injector processes deliberately carry **no
CPU affinity** (paper §4.3): if the workload leaves cores free —
housekeeping — the OS places the noise there, which is exactly the
mitigation the paper measures.

Injection runs disable the RT-throttling fail-safe so SCHED_FIFO events
can occupy 100% of a CPU (the harness sets ``rt_throttle=False``).
Early termination is implicit: when the workload signals completion the
machine's event loop stops, abandoning any noise not yet replayed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.sim.machine import Machine
from repro.sim.task import SchedPolicy, Task, TaskKind

__all__ = ["NoiseInjector"]

_ETYPE_TO_KIND = {
    EventType.IRQ: TaskKind.IRQ_NOISE,
    EventType.SOFTIRQ: TaskKind.SOFTIRQ_NOISE,
    EventType.THREAD: TaskKind.THREAD_NOISE,
}

#: sched_setscheduler syscall latency when an event changes policy
_POLICY_SWITCH_COST = 2e-6


class _InjectorProcess:
    """Replays one CPU's event list (Listing 1's loop).

    The event list is unpacked into parallel per-field arrays up front
    (the numpy columns for the timing fields, resolved enums and
    interned names for the rest), so replaying a worst-case
    configuration with thousands of events per CPU is an index walk
    rather than per-event dataclass attribute traffic.  Values are
    taken back out as plain Python floats, keeping every downstream
    computation bit-identical to the direct walk.
    """

    def __init__(self, injector: "NoiseInjector", home_cpu: int, events: list[ConfigEvent]):
        self.injector = injector
        self.home_cpu = home_cpu
        self.n_events = len(events)
        n = self.n_events
        self._starts = np.fromiter((e.start for e in events), dtype=np.float64, count=n).tolist()
        self._durations = np.fromiter(
            (e.duration for e in events), dtype=np.float64, count=n
        ).tolist()
        self._weights = [e.weight for e in events]
        self._fifo = [e.policy == "SCHED_FIFO" for e in events]
        self._prios = [e.rt_priority if e.policy == "SCHED_FIFO" else 0 for e in events]
        self._kinds = [_ETYPE_TO_KIND[e.etype] for e in events]
        names: dict[str, str] = {}
        self._names = [
            names.setdefault(e.source, f"inject:{e.source}") for e in events
        ]
        self._idx = 0
        self._policy: Optional[str] = None
        self._policies = [e.policy for e in events]

    def start(self, machine: Machine) -> None:
        self.machine = machine
        self._next()

    def _next(self) -> None:
        i = self._idx
        if i >= self.n_events:
            return
        start = self._starts[i]
        now = self.machine.engine.now
        policy = self._policies[i]
        if self._policy != policy:
            # SetPolicy() before SleepUntil() (Listing 1): the switch
            # happens while waiting, but a switch landing exactly on
            # the event start delays it slightly.
            self._policy = policy
            switched = now + _POLICY_SWITCH_COST
            if switched > start:
                start = switched
        if now > start:
            start = now
        self.machine.engine.schedule(start, self._fire, i)

    def _fire(self, i: int) -> None:
        self._idx = i + 1
        duration = self._durations[i]
        task = Task(
            self._names[i],
            policy=SchedPolicy.FIFO if self._fifo[i] else SchedPolicy.OTHER,
            rt_priority=self._prios[i],
            weight=self._weights[i],
            affinity=None,  # injector processes roam (§4.3)
            kind=self._kinds[i],
            work=duration,
            on_complete=self._done,
        )
        self.injector.injected_events += 1
        self.injector.injected_busy += duration
        self.machine.scheduler.submit(task, hint=self.home_cpu)

    def _done(self, task: Task) -> None:
        self._next()


class NoiseInjector:
    """Spawns one injector process per configured CPU on launch.

    All processes and the workload synchronise at a barrier before the
    run (§4.3) — in simulation both start at t=0, which is that barrier.
    """

    def __init__(self, config: NoiseConfig):
        if config.n_events == 0:
            raise ValueError("refusing to inject an empty noise configuration")
        self.config = config
        self.injected_events = 0
        self.injected_busy = 0.0
        self._launched = False

    def launch(self, machine: Machine) -> None:
        """Arm every injector process at the current (barrier) time."""
        if self._launched:
            raise RuntimeError("injector instances are single-use")
        self._launched = True
        for cpu, events in sorted(self.config.events_per_cpu.items()):
            _InjectorProcess(self, cpu, events).start(machine)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NoiseInjector {self.config!r} injected={self.injected_events}>"
