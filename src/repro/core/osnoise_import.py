"""Import real Linux ``osnoise`` ftrace output.

The simulator's tracer produces :class:`~repro.core.trace.Trace`
objects directly, but the *pipeline* (profile → refine → merge →
config) is substrate-agnostic: feed it traces recorded on a real
machine and it generates real noise configurations.  This module parses
the kernel's actual trace format, e.g.::

    <idle>-0     [005] d.h.  255.045740: irq_noise: local_timer:236 start 255.045740274 duration 310 ns
    kworker/13:1-187 [013] d....  256.188747: thread_noise: kworker/13:1:187 start 256.188747948 duration 3760 ns

Supported event lines are ``irq_noise`` / ``softirq_noise`` /
``thread_noise`` / ``nmi_noise`` (NMIs map to the IRQ class); everything
else (comments, ``osnoise:`` sample lines, scheduler events from other
tracers) is skipped.  Timestamps are rebased so the first event starts
at zero, matching the injector's barrier-relative clock.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, TextIO, Union

from repro.core.events import EventType
from repro.core.trace import Trace

__all__ = ["parse_osnoise_ftrace", "load_osnoise_ftrace"]

#: `  task-pid  [CPU] flags  timestamp: <event>_noise: <source> start <ts> duration <n> ns`
_EVENT_RE = re.compile(
    r"""
    \[(?P<cpu>\d+)\]\s+            # bracketed CPU id
    \S+\s+                         # irq-context flags (d.h. etc.)
    [\d.]+:\s+                     # record timestamp
    (?P<kind>irq|softirq|thread|nmi)_noise:\s+
    (?P<source>\S+)\s+
    start\s+(?P<start>[\d.]+)\s+
    duration\s+(?P<duration>\d+)\s*ns
    """,
    re.VERBOSE,
)

_KIND_TO_ETYPE = {
    "irq": EventType.IRQ,
    "nmi": EventType.IRQ,
    "softirq": EventType.SOFTIRQ,
    "thread": EventType.THREAD,
}


def parse_osnoise_ftrace(
    lines: Iterable[str],
    exec_time: Optional[float] = None,
    rebase: bool = True,
) -> Trace:
    """Parse ftrace ``osnoise`` event lines into a :class:`Trace`.

    Parameters
    ----------
    lines:
        The trace file's lines (header/comment/unrelated lines are
        skipped silently).
    exec_time:
        The workload's execution time in seconds.  When omitted, the
        span from the first event start to the last event end is used —
        fine for profiling, but pass the real value when the trace
        feeds worst-case selection.
    rebase:
        Shift start times so the earliest event is at t=0 (ftrace
        stamps are relative to boot).
    """
    records: list[tuple[int, int, str, float, float]] = []
    for line in lines:
        if line.lstrip().startswith("#"):
            continue
        m = _EVENT_RE.search(line)
        if m is None:
            continue
        etype = _KIND_TO_ETYPE[m.group("kind")]
        source = m.group("source")
        # thread_noise sources carry a trailing ":pid"; fold it away so
        # the profile aggregates per task name like the paper's Fig. 3.
        if etype is EventType.THREAD and ":" in source:
            source = source.rsplit(":", 1)[0]
        records.append(
            (
                int(m.group("cpu")),
                int(etype),
                source,
                float(m.group("start")),
                int(m.group("duration")) * 1e-9,
            )
        )
    if not records:
        raise ValueError("no osnoise events found in input")
    base = min(r[3] for r in records) if rebase else 0.0
    if rebase:
        records = [(c, e, s, st - base, d) for c, e, s, st, d in records]
    if exec_time is None:
        exec_time = max(st + d for _, _, _, st, d in records)
        exec_time = max(exec_time, 1e-9)
    return Trace.from_records(records, exec_time, meta={"origin": "osnoise-ftrace"})


def load_osnoise_ftrace(
    path_or_file: Union[str, TextIO],
    exec_time: Optional[float] = None,
) -> Trace:
    """File-path convenience wrapper for :func:`parse_osnoise_ftrace`."""
    if hasattr(path_or_file, "read"):
        return parse_osnoise_ftrace(path_or_file, exec_time)
    with open(path_or_file) as fh:
        return parse_osnoise_ftrace(fh, exec_time)
