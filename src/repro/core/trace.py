"""Columnar OSnoise-style traces.

A :class:`Trace` is the record of one workload execution under tracing:
every noise event observed on every logical CPU (the tracer labels
*all* non-workload activity as noise — it cannot tell inherent
background hum from the interesting anomalies, which is exactly why the
pipeline needs the averaging/refinement stages), plus the run's total
execution time.

Traces are stored columnar (numpy arrays plus an interned source-name
table) because a single desktop run produces tens of thousands of
timer-tick records; the profile and refinement stages are vectorised
over these columns.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.events import EventType

__all__ = ["Trace", "TraceSet"]


class Trace:
    """One run's noise events plus its execution time.

    Events are kept sorted by ``(start, cpu)``.  Columns:

    * ``cpus`` — logical CPU of each event (int32);
    * ``etypes`` — :class:`EventType` codes (int8);
    * ``source_ids`` — index into :attr:`sources` (int32);
    * ``starts`` / ``durations`` — seconds (float64).
    """

    __slots__ = ("cpus", "etypes", "source_ids", "starts", "durations", "sources", "exec_time", "meta")

    def __init__(
        self,
        cpus: np.ndarray,
        etypes: np.ndarray,
        source_ids: np.ndarray,
        starts: np.ndarray,
        durations: np.ndarray,
        sources: Sequence[str],
        exec_time: float,
        meta: Optional[dict] = None,
    ):
        n = len(starts)
        for arr, label in ((cpus, "cpus"), (etypes, "etypes"), (source_ids, "source_ids"), (durations, "durations")):
            if len(arr) != n:
                raise ValueError(f"column length mismatch: {label} has {len(arr)}, starts has {n}")
        if exec_time <= 0:
            raise ValueError(f"exec_time must be positive: {exec_time!r}")
        if n and (durations < 0).any():
            raise ValueError("negative event duration")
        order = np.lexsort((np.asarray(cpus), np.asarray(starts)))
        self.cpus = np.ascontiguousarray(np.asarray(cpus, dtype=np.int32)[order])
        self.etypes = np.ascontiguousarray(np.asarray(etypes, dtype=np.int8)[order])
        self.source_ids = np.ascontiguousarray(np.asarray(source_ids, dtype=np.int32)[order])
        self.starts = np.ascontiguousarray(np.asarray(starts, dtype=np.float64)[order])
        self.durations = np.ascontiguousarray(np.asarray(durations, dtype=np.float64)[order])
        self.sources = list(sources)
        self.exec_time = float(exec_time)
        self.meta = dict(meta) if meta else {}

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[tuple[int, int, str, float, float]],
        exec_time: float,
        meta: Optional[dict] = None,
    ) -> "Trace":
        """Build from ``(cpu, etype_code, source, start, duration)`` rows."""
        cpus, etypes, sids, starts, durs = [], [], [], [], []
        intern: dict[str, int] = {}
        sources: list[str] = []
        for cpu, etype, source, start, duration in records:
            sid = intern.get(source)
            if sid is None:
                sid = intern[source] = len(sources)
                sources.append(source)
            cpus.append(cpu)
            etypes.append(int(etype))
            sids.append(sid)
            starts.append(start)
            durs.append(duration)
        return cls(
            np.array(cpus, dtype=np.int32),
            np.array(etypes, dtype=np.int8),
            np.array(sids, dtype=np.int32),
            np.array(starts, dtype=np.float64),
            np.array(durs, dtype=np.float64),
            sources,
            exec_time,
            meta,
        )

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Number of recorded noise events."""
        return len(self.starts)

    def iter_records(self) -> Iterator[tuple[int, EventType, str, float, float]]:
        """Yield ``(cpu, EventType, source, start, duration)`` rows."""
        for i in range(self.n_events):
            yield (
                int(self.cpus[i]),
                EventType(int(self.etypes[i])),
                self.sources[self.source_ids[i]],
                float(self.starts[i]),
                float(self.durations[i]),
            )

    def select(self, mask: np.ndarray) -> "Trace":
        """Sub-trace of events where ``mask`` is true (sources re-interned)."""
        kept_sids = self.source_ids[mask]
        uniq, inverse = np.unique(kept_sids, return_inverse=True)
        return Trace(
            self.cpus[mask],
            self.etypes[mask],
            inverse.astype(np.int32),
            self.starts[mask],
            self.durations[mask],
            [self.sources[i] for i in uniq],
            self.exec_time,
            self.meta,
        )

    def total_noise_time(self) -> float:
        """Sum of all event durations (CPU-seconds of noise)."""
        return float(self.durations.sum())

    def noise_time_per_cpu(self, n_cpus: Optional[int] = None) -> np.ndarray:
        """Per-CPU noise CPU-seconds."""
        n = n_cpus if n_cpus is not None else (int(self.cpus.max()) + 1 if self.n_events else 0)
        return np.bincount(self.cpus, weights=self.durations, minlength=n)

    def compress_time(self, factor: float, origin: Optional[float] = None) -> "Trace":
        """Stress transform: squeeze event start times toward ``origin``.

        Multiplies every event's offset from ``origin`` (default: the
        first event) by ``1/factor``, leaving durations untouched.  The
        result packs the same noise into a shorter window, forcing the
        overlaps that distinguish the naive and improved merge rules —
        used by the §5.2 ablation as a controlled densification of a
        recorded worst case.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor!r}")
        if self.n_events == 0:
            return self
        base = float(self.starts[0]) if origin is None else float(origin)
        new_starts = base + (self.starts - base) / factor
        return Trace(
            self.cpus,
            self.etypes,
            self.source_ids,
            new_starts,
            self.durations,
            self.sources,
            self.exec_time,
            {**self.meta, "time_compressed": factor},
        )

    def events_of_source(self, source: str) -> np.ndarray:
        """Boolean mask of events coming from ``source``."""
        try:
            sid = self.sources.index(source)
        except ValueError:
            return np.zeros(self.n_events, dtype=bool)
        return self.source_ids == sid

    # ------------------------------------------------------------------
    # OSnoise text format (paper Fig. 3)
    # ------------------------------------------------------------------
    def to_osnoise_text(self, limit: Optional[int] = None) -> str:
        """Render events in the paper's Fig.-3 layout."""
        lines = ["CPU  Event Type      Source            Start Time       Duration"]
        n = self.n_events if limit is None else min(limit, self.n_events)
        for i in range(n):
            etype = EventType(int(self.etypes[i]))
            dur_ns = self.durations[i] * 1e9
            lines.append(
                f"{int(self.cpus[i]):03d}  {etype.label:<14} {self.sources[self.source_ids[i]]:<17} "
                f"{self.starts[i]:.9f}   {dur_ns:.0f} ns"
            )
        return "\n".join(lines)

    @classmethod
    def parse_osnoise_text(cls, text: str, exec_time: float) -> "Trace":
        """Parse the Fig.-3 layout back into a trace (round-trips
        :meth:`to_osnoise_text` up to float formatting)."""
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("CPU"):
                continue
            parts = line.split()
            if len(parts) < 6 or parts[-1] != "ns":
                raise ValueError(f"malformed OSnoise line: {line!r}")
            cpu = int(parts[0])
            etype = EventType.from_label(parts[1])
            source = parts[2]
            start = float(parts[3])
            duration = float(parts[4]) * 1e-9
            records.append((cpu, int(etype), source, start, duration))
        return cls.from_records(records, exec_time)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "exec_time": self.exec_time,
            "sources": self.sources,
            "cpus": self.cpus.tolist(),
            "etypes": self.etypes.tolist(),
            "source_ids": self.source_ids.tolist(),
            "starts": self.starts.tolist(),
            "durations": self.durations.tolist(),
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(data["cpus"], dtype=np.int32),
            np.asarray(data["etypes"], dtype=np.int8),
            np.asarray(data["source_ids"], dtype=np.int32),
            np.asarray(data["starts"], dtype=np.float64),
            np.asarray(data["durations"], dtype=np.float64),
            data["sources"],
            data["exec_time"],
            data.get("meta"),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace events={self.n_events} exec_time={self.exec_time:.6f}s sources={len(self.sources)}>"


class TraceSet:
    """The traces of a whole collection campaign (stage 1 output)."""

    def __init__(self, traces: Sequence[Trace]):
        if not traces:
            raise ValueError("TraceSet needs at least one trace")
        self.traces = list(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def __getitem__(self, i: int) -> Trace:
        return self.traces[i]

    @property
    def exec_times(self) -> np.ndarray:
        """Execution times of all runs (seconds)."""
        return np.array([t.exec_time for t in self.traces])

    def worst_case(self) -> Trace:
        """The run with the longest execution time (paper §4.1)."""
        return self.traces[int(np.argmax(self.exec_times))]

    def worst_case_index(self) -> int:
        """Index of the worst-case run."""
        return int(np.argmax(self.exec_times))

    def mean_exec_time(self) -> float:
        """Average execution time across runs."""
        return float(self.exec_times.mean())
