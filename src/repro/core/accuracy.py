"""Replication-accuracy metric (paper §5.2, Table 7).

The injector is validated by comparing the average execution time of
noise-injected runs against the execution time of the anomalous run the
configuration was generated from:

.. math::  \\left| \\frac{Avg_{exec}}{Anomaly_{exec}} - 1 \\right|

Lower is better; the paper reports 8.57% average across ten configs and
treats ≤8% as good replication.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["replication_accuracy", "signed_replication_error"]


def signed_replication_error(avg_exec: float, anomaly_exec: float) -> float:
    """Signed relative error: negative means the replay ran *faster*
    than the recorded anomaly (Table 7's ``(-)`` entries)."""
    if avg_exec <= 0 or anomaly_exec <= 0:
        raise ValueError("execution times must be positive")
    return avg_exec / anomaly_exec - 1.0


def replication_accuracy(avg_exec: float, anomaly_exec: float) -> float:
    """Absolute replication accuracy (the paper's headline metric)."""
    return abs(signed_replication_error(avg_exec, anomaly_exec))


def replication_accuracy_from_times(
    injected_times: Sequence[float], anomaly_exec: float
) -> float:
    """Accuracy computed from a set of injected run times."""
    arr = np.asarray(injected_times, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one injected run")
    return replication_accuracy(float(arr.mean()), anomaly_exec)
