"""Overlap merging of refined noise events (paper §5.2's ablation).

An injector process replays events sequentially per CPU, so events that
overlap in time on one CPU must be merged.  The paper found its first
merging rule *compromised* an entire evaluation: merging interrupt- and
thread-class noise into one event "using a pessimistic assumption
regarding the assigned scheduling policy" turned large stretches of
ordinary thread noise into SCHED_FIFO monsters (25.74% replay error).

Two strategies are provided:

* :attr:`MergeStrategy.NAIVE` — the original rule: any overlapping
  events merge into their envelope, and the merged event takes the
  most aggressive policy present (FIFO wins).
* :attr:`MergeStrategy.IMPROVED` — the corrected rule: events merge
  only within the same scheduling class, and thread-class noise gets an
  elevated fair-share weight so the scheduler replays it assertively
  without real-time privileges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.events import (
    POLICY_FOR_EVENT,
    RT_PRIORITY_FOR_EVENT,
    EventType,
)

__all__ = ["MergeStrategy", "RawEvent", "merge_events", "IMPROVED_THREAD_WEIGHT"]

#: fair-share weight given to thread-class noise by the improved rule
#: (≈ nice -5 in CFS weight terms)
IMPROVED_THREAD_WEIGHT = 3.0


class MergeStrategy(enum.Enum):
    """Which overlap-merging rule to use during config generation."""

    NAIVE = "naive"
    IMPROVED = "improved"


@dataclass
class RawEvent:
    """A to-be-injected event before policy annotation."""

    start: float
    duration: float
    etype: EventType
    source: str

    @property
    def end(self) -> float:
        """Event end time (start + duration)."""
        return self.start + self.duration


def _merge_run(run: list[RawEvent], pessimistic_policy: bool) -> RawEvent:
    """Collapse a list of mutually-overlapping events into one."""
    start = min(e.start for e in run)
    if pessimistic_policy:
        # Envelope duration + most aggressive class present.
        end = max(e.end for e in run)
        duration = end - start
        etype = min((e.etype for e in run), key=int)  # IRQ < SOFTIRQ < THREAD
    else:
        # Same-class merge: busy time adds up, no envelope padding.
        duration = sum(e.duration for e in run)
        etype = run[0].etype
    sources = sorted({e.source for e in run})
    source = sources[0] if len(sources) == 1 else "+".join(sources)
    return RawEvent(start=start, duration=duration, etype=etype, source=source)


def _merge_sorted(events: list[RawEvent], pessimistic: bool) -> list[RawEvent]:
    """Merge overlapping neighbours in a start-sorted event list."""
    if not events:
        return []
    merged: list[RawEvent] = []
    run = [events[0]]
    run_end = events[0].end
    for e in events[1:]:
        if e.start < run_end:
            run.append(e)
            run_end = max(run_end, e.end)
        else:
            merged.append(_merge_run(run, pessimistic) if len(run) > 1 else run[0])
            run = [e]
            run_end = e.end
    merged.append(_merge_run(run, pessimistic) if len(run) > 1 else run[0])
    return merged


def merge_events(events: list[RawEvent], strategy: MergeStrategy) -> list[RawEvent]:
    """Merge one CPU's refined events according to ``strategy``.

    Input need not be sorted; output is sorted by start time.
    """
    events = sorted(events, key=lambda e: (e.start, e.duration))
    if strategy is MergeStrategy.NAIVE:
        return _merge_sorted(events, pessimistic=True)
    if strategy is MergeStrategy.IMPROVED:
        fifo_class = [e for e in events if e.etype is not EventType.THREAD]
        thread_class = [e for e in events if e.etype is EventType.THREAD]
        out = _merge_sorted(fifo_class, pessimistic=False) + _merge_sorted(
            thread_class, pessimistic=False
        )
        return sorted(out, key=lambda e: (e.start, e.duration))
    raise ValueError(f"unknown merge strategy: {strategy!r}")


def policy_for(etype: EventType, strategy: MergeStrategy) -> tuple[str, int, float]:
    """Scheduling annotation ``(policy, rt_priority, weight)`` for an event."""
    policy = POLICY_FOR_EVENT[etype]
    rt_priority = RT_PRIORITY_FOR_EVENT[etype]
    weight = 1.0
    if strategy is MergeStrategy.IMPROVED and etype is EventType.THREAD:
        weight = IMPROVED_THREAD_WEIGHT
    return policy, rt_priority, weight
