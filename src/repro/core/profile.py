"""Average-noise profile: per-source frequency and duration (§4.2).

The collected traces give two insights (paper §4.1): the average system
noise — "obtained by averaging the frequency and duration of recurring
tasks across all executions" — and the worst-case trace.  This module
computes the former, streaming so a thousand traces never need to be
resident at once.

Frequencies are normalised per second of traced execution (runs have
different lengths), matching the paper's use of "average frequency of
the task within the worst-case execution window".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.events import EventType
from repro.core.trace import Trace

__all__ = ["SourceStats", "NoiseProfile", "ProfileAccumulator", "build_profile"]


@dataclass(frozen=True)
class SourceStats:
    """Aggregate behaviour of one noise source across all runs."""

    source: str
    etype: EventType
    rate_hz: float          # occurrences per second of execution
    mean_duration: float    # seconds
    total_events: int

    def expected_count(self, window: float) -> int:
        """Occurrences expected within an execution ``window`` (§4.2)."""
        if window < 0:
            raise ValueError(f"negative window: {window!r}")
        return int(round(self.rate_hz * window))


class NoiseProfile(Mapping):
    """Mapping of source name → :class:`SourceStats`."""

    def __init__(self, stats: dict[str, SourceStats], n_runs: int, total_window: float):
        if n_runs <= 0 or total_window <= 0:
            raise ValueError("profile needs at least one traced run")
        self._stats = dict(stats)
        self.n_runs = n_runs
        self.total_window = total_window

    def __getitem__(self, source: str) -> SourceStats:
        return self._stats[source]

    def __iter__(self):
        return iter(self._stats)

    def __len__(self) -> int:
        return len(self._stats)

    def total_noise_rate(self) -> float:
        """Aggregate events/second over all sources."""
        return sum(s.rate_hz for s in self._stats.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NoiseProfile sources={len(self)} runs={self.n_runs}>"


class ProfileAccumulator:
    """Streaming builder for :class:`NoiseProfile`.

    Feed traces one at a time with :meth:`add`; each is reduced to
    per-source counts immediately, so memory stays O(#sources).
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._durations: dict[str, float] = {}
        self._etypes: dict[str, dict[int, int]] = {}
        self.n_runs = 0
        self.total_window = 0.0

    def add(self, trace: Trace) -> None:
        """Fold one run's trace into the profile."""
        self.n_runs += 1
        self.total_window += trace.exec_time
        if trace.n_events == 0:
            return
        n_sources = len(trace.sources)
        counts = np.bincount(trace.source_ids, minlength=n_sources)
        sums = np.bincount(trace.source_ids, weights=trace.durations, minlength=n_sources)
        # Dominant event type per source (sources rarely mix types).
        for sid, name in enumerate(trace.sources):
            c = int(counts[sid])
            if c == 0:
                continue
            self._counts[name] = self._counts.get(name, 0) + c
            self._durations[name] = self._durations.get(name, 0.0) + float(sums[sid])
            etype_hist = self._etypes.setdefault(name, {})
            mask = trace.source_ids == sid
            for code, n in zip(*np.unique(trace.etypes[mask], return_counts=True)):
                etype_hist[int(code)] = etype_hist.get(int(code), 0) + int(n)

    def build(self) -> NoiseProfile:
        """Finish accumulation and return the profile."""
        stats: dict[str, SourceStats] = {}
        for name, count in self._counts.items():
            hist = self._etypes[name]
            etype = EventType(max(hist, key=lambda k: (hist[k], -k)))
            stats[name] = SourceStats(
                source=name,
                etype=etype,
                rate_hz=count / self.total_window,
                mean_duration=self._durations[name] / count,
                total_events=count,
            )
        return NoiseProfile(stats, self.n_runs, self.total_window)


def build_profile(traces: Iterable[Trace]) -> NoiseProfile:
    """Convenience wrapper: profile from an in-memory trace collection."""
    acc = ProfileAccumulator()
    for t in traces:
        acc.add(t)
    return acc.build()
