"""Delta refinement of the worst-case trace (paper §4.2, Fig. 4).

Replaying the worst-case trace verbatim would double-count noise: the
inherent background hum is still present at replay time.  The paper's
fix: for each noise source, reduce the instances whose durations are
closest to the source's average by that average duration, as many times
as the source is *expected* to occur in the worst-case window.  What
remains is the residual "delta" — the part of the worst case that the
live system will not reproduce on its own.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import NoiseProfile
from repro.core.trace import Trace

__all__ = ["refine_worst_case"]


def refine_worst_case(
    worst: Trace,
    profile: NoiseProfile,
    min_residual: float = 1e-6,
) -> Trace:
    """Subtract the average noise contribution from a worst-case trace.

    Parameters
    ----------
    worst:
        The trace of the longest-running collection execution.
    profile:
        Average per-source behaviour over all collection runs.
    min_residual:
        Events whose residual duration falls below this are dropped
        entirely (an injector cannot usefully replay sub-microsecond
        busy loops).

    Returns a new :class:`~repro.core.trace.Trace` holding only the
    delta noise, with ``meta["refined"] = True``.
    """
    if min_residual < 0:
        raise ValueError(f"negative min_residual: {min_residual!r}")
    durations = worst.durations.copy()
    keep = np.ones(worst.n_events, dtype=bool)
    window = worst.exec_time

    for sid, name in enumerate(worst.sources):
        stats = profile.get(name)
        if stats is None:
            continue  # source never seen elsewhere: inject in full
        expected = stats.expected_count(window)
        if expected <= 0:
            continue
        idx = np.flatnonzero(worst.source_ids == sid)
        if len(idx) == 0:
            continue
        # Reduce the `expected` instances closest to the mean duration.
        # (One pass is equivalent to the paper's repeated
        # closest-instance reduction because each instance is reduced
        # at most once per expected occurrence.)
        closeness = np.abs(durations[idx] - stats.mean_duration)
        order = np.argsort(closeness, kind="stable")
        chosen = idx[order[:expected]]
        durations[chosen] -= stats.mean_duration
        dropped = chosen[durations[chosen] <= min_residual]
        keep[dropped] = False

    keep &= durations > min_residual
    refined = Trace(
        worst.cpus[keep],
        worst.etypes[keep],
        worst.source_ids[keep],
        worst.starts[keep],
        durations[keep],
        worst.sources,
        worst.exec_time,
        {**worst.meta, "refined": True},
    )
    # Re-intern sources so dropped ones do not linger.
    if refined.n_events:
        uniq, inverse = np.unique(refined.source_ids, return_inverse=True)
        refined = Trace(
            refined.cpus,
            refined.etypes,
            inverse.astype(np.int32),
            refined.starts,
            refined.durations,
            [worst.sources[i] for i in uniq],
            worst.exec_time,
            refined.meta,
        )
    return refined
