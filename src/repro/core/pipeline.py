"""End-to-end noise-injection pipeline (paper §4).

Wires the three stages together:

1. :func:`~repro.core.collection.collect_traces` — trace N runs;
2. :func:`~repro.core.config.generate_config` — refine the worst case
   and build the per-CPU configuration;
3. :func:`~repro.harness.experiment.run_experiment` with a
   :class:`~repro.noise.base.NoiseStack` replaying it (optionally
   composed with further registered sources via ``extra_noise``).

A configuration generated from one workload configuration can be (and
in the paper's Tables 3–5 *is*) replayed against other configurations:
use :meth:`NoiseInjectionPipeline.build_config` once, then
:meth:`NoiseInjectionPipeline.inject` with any spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro import telemetry as _telemetry
from repro.core.accuracy import replication_accuracy
from repro.core.collection import CollectionResult, collect_traces
from repro.core.config import NoiseConfig, generate_config
from repro.core.merge import MergeStrategy
from repro.harness.experiment import ExperimentSpec, ResultSet, run_experiment
from repro.noise.base import NoiseSource, NoiseStack

if TYPE_CHECKING:  # pragma: no cover
    from typing import Sequence

    from repro.harness.executor import Executor
    from repro.harness.faults import FaultPolicy

__all__ = ["PipelineResult", "NoiseInjectionPipeline"]


@dataclass
class PipelineResult:
    """Outcome of a full collect → configure → inject cycle."""

    collection: CollectionResult
    config: NoiseConfig
    injected: ResultSet

    @property
    def baseline_mean(self) -> float:
        """Mean execution time of the (traced) anomaly-free baseline
        runs (collection may have run an accelerated anomaly hunt)."""
        return self.collection.clean_mean_exec_time

    @property
    def injected_mean(self) -> float:
        """Mean execution time under injection."""
        return self.injected.mean

    @property
    def degradation_pct(self) -> float:
        """Paper's Δ%: injected mean versus baseline mean."""
        return (self.injected_mean / self.baseline_mean - 1.0) * 100.0

    @property
    def accuracy(self) -> float:
        """Replication accuracy versus the recorded anomaly (Table 7)."""
        return replication_accuracy(self.injected_mean, self.collection.worst_exec_time)

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        c = self.collection
        return (
            f"{c.spec.label()}: baseline {self.baseline_mean:.4f}s "
            f"(worst case {c.worst_exec_time:.4f}s, "
            f"+{c.worst_case_degradation() * 100:.1f}%), "
            f"injected {self.injected_mean:.4f}s "
            f"({self.degradation_pct:+.1f}% vs baseline, "
            f"replication accuracy {self.accuracy * 100:.2f}%), "
            f"config: {self.config.n_events} events on {self.config.n_cpus} CPUs, "
            f"{self.config.total_busy_time() * 1e3:.1f}ms busy"
        )


class NoiseInjectionPipeline:
    """Reusable pipeline bound to one collection configuration."""

    def __init__(
        self,
        spec: ExperimentSpec,
        merge: MergeStrategy = MergeStrategy.IMPROVED,
        collect_reps: Optional[int] = None,
        inject_reps: Optional[int] = None,
        collect_anomaly_prob: Optional[float] = 0.15,
        executor: Optional["Executor"] = None,
        extra_noise: "Sequence[NoiseSource]" = (),
        fault_policy: Optional["FaultPolicy"] = None,
    ):
        """``collect_anomaly_prob`` accelerates the worst-case hunt
        during collection only (the paper brute-forced rare events over
        1000 runs; scaled-down collections compress that search), while
        baselines and injected runs keep the spec's natural noise.
        Pass ``None`` to collect at the spec's own rate.

        ``extra_noise`` composes additional registered noise sources
        (I/O interference, memory hogs, synthetic background, ...) on
        top of the generated trace-replay config during the injection
        stage — the bottleneck-localisation workflow of composing
        heterogeneous noise around a replayed worst case.

        ``executor`` selects the execution backend for both the
        collection and injection stages (default: ``REPRO_JOBS``);
        results are bit-identical across backends.

        ``fault_policy`` contains per-rep failures in both stages
        (:class:`~repro.harness.faults.FaultPolicy`): timeouts, retries
        with deterministic backoff, and ``skip`` partial results."""
        self.spec = spec
        self.merge = merge
        self.collect_reps = collect_reps
        self.inject_reps = inject_reps
        self.collect_anomaly_prob = collect_anomaly_prob
        self.executor = executor
        self.fault_policy = fault_policy
        self.extra_noise: tuple[NoiseSource, ...] = tuple(extra_noise)
        self.collection: Optional[CollectionResult] = None
        self.config: Optional[NoiseConfig] = None

    @classmethod
    def from_spec(cls, spec: ExperimentSpec, **kwargs) -> "NoiseInjectionPipeline":
        """Alias constructor matching the README quickstart."""
        return cls(spec, **kwargs)

    # ------------------------------------------------------------------
    def build_config(self) -> NoiseConfig:
        """Stages 1–2: collect traces and generate the configuration."""
        cspec = self.spec
        accelerated = self.collect_anomaly_prob is not None
        if accelerated:
            cspec = cspec.with_(anomaly_prob=self.collect_anomaly_prob)
        with _telemetry.span("collect", spec=cspec.label()):
            self.collection = collect_traces(
                cspec,
                reps=self.collect_reps,
                profile_excludes_anomalies=accelerated,
                executor=self.executor,
                policy=self.fault_policy,
            )
        with _telemetry.span("configure", spec=self.spec.label(), merge=self.merge.value):
            self.config = generate_config(
                self.collection.worst_trace,
                self.collection.profile,
                merge=self.merge,
                meta={"collected_from": self.spec.label()},
            )
        return self.config

    def inject(
        self,
        spec: Optional[ExperimentSpec] = None,
        config: Optional[NoiseConfig] = None,
    ) -> ResultSet:
        """Stage 3: replay a configuration against a workload spec.

        Defaults to this pipeline's own spec and config; pass another
        spec to evaluate a different mitigation strategy or programming
        model under the same noise (the cross-configuration studies of
        Tables 3–5).
        """
        spec = spec if spec is not None else self.spec
        config = config if config is not None else self.config
        if config is None:
            raise RuntimeError("build_config() must run before inject()")
        if self.inject_reps is not None:
            spec = spec.with_(reps=self.inject_reps)
        # Different seed stream than collection, so injection runs see
        # fresh inherent noise (the paper's uncontrollable residual).
        spec = spec.with_(seed=spec.seed + 1_000_003)
        stack = NoiseStack([*(NoiseStack.coerce(config) or ()), *self.extra_noise])
        with _telemetry.span("inject", spec=spec.label()):
            return run_experiment(
                spec, noise=stack, executor=self.executor, policy=self.fault_policy
            )

    def run(self) -> PipelineResult:
        """Full cycle against the pipeline's own spec."""
        with _telemetry.span("pipeline", spec=self.spec.label()):
            self.build_config()
            injected = self.inject()
        assert self.collection is not None and self.config is not None
        return PipelineResult(collection=self.collection, config=self.config, injected=injected)
