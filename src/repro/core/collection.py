"""Stage 1: system trace collection (paper §4.1).

Runs the workload many times with the OSnoise-style tracer enabled,
streaming each run's trace into the average-noise profile and keeping
only the worst-case trace resident (a thousand desktop traces would not
fit in memory — neither here nor on the paper's machines, which is why
the real tool also processes trace files one at a time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.profile import NoiseProfile, ProfileAccumulator
from repro.core.trace import Trace
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.sim.machine import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.executor import Executor
    from repro.harness.faults import FaultPolicy

__all__ = ["CollectionResult", "collect_traces"]


@dataclass
class CollectionResult:
    """Everything stage 2 needs, distilled from N traced runs."""

    spec: ExperimentSpec
    profile: NoiseProfile
    worst_trace: Trace
    exec_times: np.ndarray
    anomalies: list[Optional[str]]

    @property
    def worst_exec_time(self) -> float:
        """Execution time of the worst-case run (the anomaly to replay)."""
        return self.worst_trace.exec_time

    @property
    def mean_exec_time(self) -> float:
        """Average execution time over the collection runs."""
        return float(self.exec_times.mean())

    @property
    def clean_mean_exec_time(self) -> float:
        """Average over runs without a natural anomaly — the honest
        baseline when collection ran an accelerated anomaly lottery."""
        clean = [t for t, a in zip(self.exec_times, self.anomalies) if not a]
        if not clean:
            return self.mean_exec_time
        return float(np.mean(clean))

    def worst_case_degradation(self) -> float:
        """Fractional slowdown of the worst case versus the mean."""
        return self.worst_exec_time / self.mean_exec_time - 1.0


def collect_traces(
    spec: ExperimentSpec,
    reps: Optional[int] = None,
    min_degradation: float = 0.10,
    max_batches: int = 5,
    profile_excludes_anomalies: bool = False,
    executor: Optional["Executor"] = None,
    policy: Optional["FaultPolicy"] = None,
) -> CollectionResult:
    """Run the collection campaign for one workload configuration.

    Tracing is forced on regardless of ``spec.tracing``; repetitions
    default to the spec's baseline count (paper: 1000).

    The paper selected worst-case traces "because they present
    significant outliers"; with fewer runs than the paper's 1000 a
    batch may simply not contain one, so collection keeps adding
    batches (up to ``max_batches``) until the worst case degrades the
    mean by at least ``min_degradation`` — set it to 0 to disable the
    hunt and take whatever the first batch produced.

    ``executor`` selects the execution backend (default: ``REPRO_JOBS``).
    Under a parallel backend the trace consumer receives each batch's
    runs in order once their chunks complete; the streamed profile and
    worst-case selection are order-insensitive either way.

    ``policy`` contains per-rep failures during collection
    (:class:`~repro.harness.faults.FaultPolicy`); skipped reps simply
    contribute nothing to the profile or the worst-case hunt.

    ``profile_excludes_anomalies`` keeps anomalous runs out of the
    average-noise profile.  Use it when collecting under an
    *accelerated* anomaly lottery: at natural rates (the paper's
    setting) anomalies are so rare they barely touch the average, but
    an accelerated hunt would otherwise fold the anomaly itself into
    the "inherent noise" that refinement subtracts.
    """
    spec = spec.with_(tracing=True, reps=reps if reps is not None else spec.reps)
    acc_all = ProfileAccumulator()
    acc_clean = ProfileAccumulator()
    state: dict = {"worst": None}

    def consume(i: int, result: RunResult) -> None:
        trace = result.trace
        assert trace is not None, "tracing was forced on"
        acc_all.add(trace)
        if not result.anomaly:
            acc_clean.add(trace)
        worst = state["worst"]
        if worst is None or trace.exec_time > worst.exec_time:
            trace.meta.update(run=i, anomaly=result.anomaly)
            state["worst"] = trace

    all_times: list[np.ndarray] = []
    all_anomalies: list[Optional[str]] = []
    for batch in range(max_batches):
        batch_spec = spec.with_(seed=spec.seed + batch * 7919)
        rs = run_experiment(batch_spec, on_run=consume, executor=executor, policy=policy)
        if rs.failures:
            # Skipped reps carry NaN — drop them (and their anomaly
            # slots) so the worst-case hunt and profile stay finite.
            keep = ~np.isnan(rs.times)
            all_times.append(rs.times[keep])
            all_anomalies.extend(a for a, k in zip(rs.anomalies, keep) if k)
        else:
            all_times.append(rs.times)
            all_anomalies.extend(rs.anomalies)
        times = np.concatenate(all_times)
        worst = state["worst"]
        if worst is not None and worst.exec_time / times.mean() - 1.0 >= min_degradation:
            break
    use_clean = profile_excludes_anomalies and acc_clean.n_runs > 0
    return CollectionResult(
        spec=spec,
        profile=(acc_clean if use_clean else acc_all).build(),
        worst_trace=state["worst"],
        exec_times=np.concatenate(all_times),
        anomalies=all_anomalies,
    )
