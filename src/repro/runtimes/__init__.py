"""Programming-model runtimes: OpenMP-like and SYCL-like execution.

Both runtimes drive a :class:`repro.workloads.base.Workload` (a stream
of :class:`~repro.runtimes.base.Region` descriptors) on a simulated
:class:`~repro.sim.machine.Machine` using a persistent thread team.
They differ exactly where the paper says the models differ:

* :class:`~repro.runtimes.openmp.OpenMPRuntime` — fork–join regions
  with static/dynamic/guided loop schedules and an end-of-region
  barrier; static partitioning makes the slowest thread gate every
  region, the root of OpenMP's noise sensitivity.
* :class:`~repro.runtimes.sycl.SYCLRuntime` — an in-order queue with
  per-kernel submission overhead and fine-grained work-stealing
  execution; slower in the mean, but a preempted worker's chunks are
  simply stolen, which is where SYCL's resilience comes from.
"""

from repro.runtimes.base import Placement, Region, TeamRuntime
from repro.runtimes.openmp import OpenMPRuntime
from repro.runtimes.sycl import SYCLRuntime

__all__ = ["Placement", "Region", "TeamRuntime", "OpenMPRuntime", "SYCLRuntime", "get_runtime"]


def get_runtime(model: str, **kwargs):
    """Instantiate a runtime by its short name (``omp`` or ``sycl``)."""
    model = model.lower()
    if model in ("omp", "openmp"):
        return OpenMPRuntime(**kwargs)
    if model in ("sycl", "dpcpp"):
        return SYCLRuntime(**kwargs)
    raise KeyError(f"unknown programming model {model!r} (expected 'omp' or 'sycl')")
