"""SYCL-like runtime model (DPC++ CPU device, in-order queue).

Key behaviours reproduced:

* every kernel submission costs host-side time (command-group capture,
  dependency analysis, enqueue) — this is why SYCL's raw times trail
  OpenMP, dramatically so for kernel-happy MiniFE;
* the CPU device executes an ND-range by fine-grained work stealing
  over the runtime's thread pool: when noise preempts a worker, its
  remaining chunks are stolen by the others, so a noise event costs
  roughly ``duration / n_threads`` instead of ``duration`` — the
  mechanism behind SYCL's resilience in Tables 3–6;
* kernels run the HeCBench SYCL implementations, whose per-kernel
  efficiency relative to the OpenMP code is a workload property
  (``Region.sycl_efficiency``).
"""

from __future__ import annotations

from repro.runtimes.base import Region, TeamRuntime

__all__ = ["SYCLRuntime"]


class SYCLRuntime(TeamRuntime):
    """DPC++-flavoured queue/kernel execution model.

    Parameters
    ----------
    submit_cost:
        Host-side latency per kernel submission (seconds).
    oversubscription:
        Work-stealing chunks per thread per kernel; higher values mean
        finer stealing granularity (smaller straggler tail) at more
        per-chunk overhead.
    """

    name = "sycl"

    # The DPC++ runtime shows noticeably more run-to-run spread than
    # libgomp (queue construction, TBB arena state, lazy JIT) — this is
    # what keeps SYCL's baseline s.d. comparable to OpenMP's in Table 2
    # even though its kernels absorb scheduler noise better.
    runtime_jitter_sd = 0.009

    def __init__(self, submit_cost: float = 35e-6, oversubscription: int = 24):
        super().__init__()
        if submit_cost < 0:
            raise ValueError("submit_cost must be non-negative")
        if oversubscription < 1:
            raise ValueError("oversubscription must be >= 1")
        self.submit_cost = submit_cost
        self.oversubscription = oversubscription

    # ------------------------------------------------------------------
    def _exec_parallel(self, region: Region) -> None:
        # In-order queue: the host (master thread) pays the submission
        # cost as serial work, then the kernel drains as a stolen pool.
        master = self.team[0]
        self._submit_region = region
        master.on_complete = self._submitted
        self.machine.scheduler.assign_work(master, self.submit_cost)
        self.machine.scheduler.refresh(master)

    def _submitted(self, task) -> None:
        task.on_complete = None
        region = self._submit_region
        n = len(self.team)
        work = self.scale_work(region.total_work, region)
        chunk = work / (n * self.oversubscription) if work > 0 else 0.0
        n_chunks = n * self.oversubscription
        self._exec_pool(region, work, n_chunks, tail=chunk)

    # ------------------------------------------------------------------
    def scale_work(self, work: float, region: Region) -> float:
        return work * self._jitter / region.sycl_efficiency

    def startup_cost(self, n_threads: int) -> float:
        # Queue + device construction; amortised here over one run the
        # way the benchmarks' timed sections see it.
        return 300e-6

    def barrier_cost(self, n_threads: int) -> float:
        # Kernel completion notification back to the host.
        return 3e-6 + 0.1e-6 * n_threads

    def chunk_overhead(self) -> float:
        # Stealing a range slice costs more than libgomp's fetch-add.
        return 0.4e-6
