"""OpenMP-like runtime model (libgomp-style fork–join).

Key behaviours reproduced:

* ``schedule(static)`` — each thread gets a fixed contiguous share and
  the end-of-region barrier waits for the slowest one.  A noise event
  that preempts one thread therefore delays the *whole region* by the
  full preemption, which is why the paper's OpenMP rows degrade most
  under injection.
* ``schedule(dynamic, c)`` / ``schedule(guided, c)`` — threads draw
  chunks from a shared pool (modelled as work-stealing drain plus a
  per-chunk acquisition cost and a straggler tail of one chunk).
* Busy-wait barriers (``OMP_WAIT_POLICY=active``): team threads keep
  their CPUs between regions, so the noise injector cannot find idle
  CPUs among workload cores — only housekeeping cores absorb noise.
* Thread pinning (``OMP_PROC_BIND=true``) versus roaming comes from
  the :class:`~repro.runtimes.base.Placement`, not the runtime.
"""

from __future__ import annotations

from repro.runtimes.base import Region, TeamRuntime, split_static

__all__ = ["OpenMPRuntime"]


class OpenMPRuntime(TeamRuntime):
    """GCC libgomp-flavoured fork–join execution model.

    Parameters
    ----------
    default_chunk_fraction:
        Default dynamic-chunk size as a fraction of a thread's even
        share (libgomp's ``dynamic`` default chunk is 1 iteration;
        workload models override via ``Region.chunk_work``).
    """

    name = "omp"

    def __init__(self, default_chunk_fraction: float = 1.0 / 16.0):
        super().__init__()
        if default_chunk_fraction <= 0:
            raise ValueError("default_chunk_fraction must be positive")
        self.default_chunk_fraction = default_chunk_fraction

    # ------------------------------------------------------------------
    def _exec_parallel(self, region: Region) -> None:
        n = len(self.team)
        work = self.scale_work(region.total_work, region)
        if region.schedule == "static":
            if region.chunk_work > 0.0:
                # Chunked static interleaves iterations round-robin,
                # which flattens a smooth imbalance profile: the finer
                # the chunks, the closer to perfectly balanced.
                per_thread = work / n
                flatten = min(1.0, region.chunk_work / per_thread) if per_thread > 0 else 1.0
                eff_imb = region.imbalance * flatten
            else:
                eff_imb = region.imbalance
            self._exec_static_partition(region, split_static(work, n, eff_imb))
        else:
            chunk = region.chunk_work
            if chunk <= 0.0:
                chunk = (work / n) * self.default_chunk_fraction
            if region.schedule == "dynamic":
                n_chunks = self.chunks_for(work, chunk)
                tail = chunk
            else:  # guided: geometrically shrinking chunks
                # Roughly n_threads * ln(total / (chunk * n)) grabs.
                import math

                ratio = max(2.0, work / max(chunk * n, 1e-12))
                n_chunks = max(n, int(n * math.log(ratio)))
                tail = chunk * 0.5
            self._exec_pool(region, work, n_chunks, tail)

    # ------------------------------------------------------------------
    def startup_cost(self, n_threads: int) -> float:
        # Thread-team creation on first parallel region.
        return 20e-6 + 5e-6 * n_threads

    def barrier_cost(self, n_threads: int) -> float:
        # Tree barrier among spinning threads.
        return 1.5e-6 + 0.15e-6 * n_threads

    def chunk_overhead(self) -> float:
        # Atomic fetch-add on the loop counter.
        return 0.15e-6
