"""Shared runtime machinery: regions, placements, and the thread team.

A workload is a stream of :class:`Region` descriptors (parallel loops,
kernels, serial sections).  A runtime interprets those regions on a
simulated machine with a persistent team of threads, and signals
:meth:`repro.sim.machine.Machine.workload_done` when the stream ends.

The execution style per region — static partitioning with an
end-of-region barrier versus shared-pool work stealing — is the single
biggest determinant of noise resilience in the paper, so it is the main
thing subclasses override.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.sim.machine import Machine
from repro.sim.task import Task, WorkPool

__all__ = ["Region", "Placement", "TeamRuntime"]


@dataclass(frozen=True)
class Region:
    """One phase of a workload.

    Parameters
    ----------
    total_work:
        CPU-seconds of work across all threads at nominal core speed
        (the workload model already divided by the platform's
        per-core throughput).
    mem_demand:
        DRAM bandwidth (GB/s) each participating thread would pull at
        full speed; 0 for compute-bound phases.
    schedule:
        OpenMP loop schedule hint (``static`` / ``dynamic`` /
        ``guided``); the SYCL runtime ignores it (always steals).
    chunk_work:
        CPU-seconds per chunk for chunked schedules; 0 means the
        runtime's default granularity.
    imbalance:
        Fractional spread of per-thread shares under pure static
        partitioning (0 = perfectly balanced loop).
    serial:
        Master-only section (``total_work`` executed by thread 0).
    reduction:
        Adds a small serial combine on the master after the parallel
        part (Babelstream *dot*, CG dot products).
    sycl_efficiency:
        Relative throughput of the SYCL implementation of this phase
        versus the OpenMP one (HeCBench kernels are not identical
        code); the SYCL runtime divides work by this.
    """

    name: str
    total_work: float
    mem_demand: float = 0.0
    schedule: str = "static"
    chunk_work: float = 0.0
    imbalance: float = 0.0
    serial: bool = False
    reduction: bool = False
    sycl_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.total_work < 0:
            raise ValueError(f"negative region work: {self.total_work!r}")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if not 0.0 <= self.imbalance < 1.0:
            raise ValueError(f"imbalance must be in [0, 1): {self.imbalance!r}")
        if not 0.0 < self.sycl_efficiency <= 1.5:
            raise ValueError(f"implausible sycl_efficiency: {self.sycl_efficiency!r}")


@dataclass(frozen=True)
class Placement:
    """Where and how the workload's threads run (mitigation output).

    ``cpus`` is the affinity mask (the workload may use fewer threads
    than CPUs under housekeeping); with ``pinned`` each thread is fixed
    to ``cpus[i]``, otherwise threads roam within the mask.
    """

    cpus: tuple[int, ...]
    n_threads: int
    pinned: bool
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if self.n_threads > len(self.cpus):
            raise ValueError(
                f"{self.n_threads} threads cannot be placed on {len(self.cpus)} cpus"
            )
        if len(set(self.cpus)) != len(self.cpus):
            raise ValueError("duplicate cpus in placement")


def split_static(total: float, n: int, imbalance: float) -> list[float]:
    """Static partition of ``total`` work into ``n`` shares.

    Imbalance is a deterministic linear ramp: thread shares deviate up
    to ``±imbalance`` around the mean while summing to ``total``
    exactly (up to float error), mirroring a triangular iteration-cost
    profile split contiguously.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    base = total / n
    if n == 1 or imbalance == 0.0:
        return [base] * n
    shares = [base * (1.0 + imbalance * (2.0 * i / (n - 1) - 1.0)) for i in range(n)]
    return shares


class TeamRuntime(abc.ABC):
    """Base class running a region stream with a persistent team."""

    #: short model name ("omp" / "sycl")
    name: str = "base"

    #: run-to-run multiplicative spread of the runtime's own efficiency
    #: (thread-pool state, allocator behaviour, JIT warm-up); lognormal
    #: sigma sampled once per launch
    runtime_jitter_sd: float = 0.002

    def __init__(self) -> None:
        self.machine: Optional[Machine] = None
        self.team: list[Task] = []
        self._regions: Optional[Iterator[Region]] = None
        self._pending = 0
        self._current: Optional[Region] = None
        self._jitter = 1.0

    # ------------------------------------------------------------------
    # launch
    # ------------------------------------------------------------------
    def launch(self, machine: Machine, regions: Iterator[Region], placement: Placement) -> None:
        """Start executing at the machine's current time (t=0 usually)."""
        if self.machine is not None:
            raise RuntimeError("runtime instances are single-use")
        self.machine = machine
        self._regions = iter(regions)
        if self.runtime_jitter_sd > 0:
            self._jitter = float(machine.rng.lognormal(0.0, self.runtime_jitter_sd))
        self._spawn_team(placement)
        # Model runtime startup (thread-team creation / queue init).
        machine.engine.schedule_after(self.startup_cost(placement.n_threads), self._advance)

    def _spawn_team(self, placement: Placement) -> None:
        machine = self.machine
        assert machine is not None
        mask = frozenset(placement.cpus)
        for i in range(placement.n_threads):
            t = Task(
                f"{self.name}-worker-{i}",
                affinity=frozenset({placement.cpus[i]}) if placement.pinned else mask,
                pinned=placement.pinned,
                persistent=True,
            )
            self.team.append(t)
            cpu = machine.scheduler.submit(
                t,
                cpu=placement.cpus[i] if placement.pinned else None,
                hint=placement.cpus[i % len(placement.cpus)],
            )
            machine.note_workload_cpu(cpu)

    # ------------------------------------------------------------------
    # region state machine
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        assert self.machine is not None and self._regions is not None
        region = next(self._regions, None)
        if region is None:
            self.machine.workload_done()
            return
        self._current = region
        if region.serial:
            self._exec_serial(region)
        else:
            self._exec_parallel(region)

    def _exec_serial(self, region: Region) -> None:
        master = self.team[0]
        work = self.scale_work(region.total_work, region)
        if work <= 0.0:
            self._advance()
            return
        master.on_complete = self._serial_done
        self.machine.scheduler.assign_work(master, work, mem_demand=region.mem_demand)
        self.machine.scheduler.refresh(master)

    def _serial_done(self, task: Task) -> None:
        task.on_complete = None
        self._advance()

    def _after_region(self) -> None:
        region = self._current
        assert region is not None
        if region.reduction:
            # Serial combine of per-thread partials on the master.
            master = self.team[0]
            master.on_complete = self._serial_done
            self.machine.scheduler.assign_work(master, self.reduction_cost(len(self.team)))
            self.machine.scheduler.refresh(master)
        else:
            self._advance()

    # ------------------------------------------------------------------
    # shared execution helpers
    # ------------------------------------------------------------------
    def _exec_static_partition(self, region: Region, shares: list[float]) -> None:
        """Give each thread a fixed share; barrier when all finish."""
        scheduler = self.machine.scheduler
        self._pending = 0
        for t, w in zip(self.team, shares):
            if w <= 0.0:
                continue
            self._pending += 1
            t.on_complete = self._static_thread_done
            scheduler.assign_work(t, w, mem_demand=region.mem_demand)
        if self._pending == 0:
            self.machine.engine.schedule_after(self.barrier_cost(len(self.team)), self._after_region)
            return
        scheduler.refresh_many(self.team)

    def _static_thread_done(self, task: Task) -> None:
        task.on_complete = None
        self._pending -= 1
        if self._pending == 0:
            self.machine.engine.schedule_after(
                self.barrier_cost(len(self.team)), self._after_region
            )

    def _exec_pool(self, region: Region, work: float, n_chunks: int, tail: float) -> None:
        """Drain ``work`` through a shared pool (stealing semantics)."""
        scheduler = self.machine.scheduler
        eff = work + n_chunks * self.chunk_overhead()
        pool = WorkPool(region.name, eff, on_drained=self._pool_drained)
        for t in self.team:
            scheduler.join_pool(t, pool, mem_demand=region.mem_demand)
        self._pool_tail = tail
        self._pool_mem = region.mem_demand
        scheduler.refresh_many(self.team)
        scheduler.register_pool(pool)

    def _pool_drained(self, pool: WorkPool) -> None:
        scheduler = self.machine.scheduler
        # A preempted worker's in-flight chunk cannot be stolen: the
        # region's join must wait for that worker to run again and
        # finish it.  This bounds how much noise work-stealing hides —
        # without it SYCL would look implausibly immune to FIFO noise.
        blocked = [t for t in pool.members if t.rate == 0.0]
        scheduler.detach_pool(pool)
        if blocked and self._pool_tail > 0.0:
            self._pending = 0
            for t in blocked:
                self._pending += 1
                t.on_complete = self._straggler_done
                scheduler.assign_work(t, self._pool_tail * 0.5, mem_demand=self._pool_mem)
            scheduler.refresh_many(blocked)
            return
        # Otherwise only the ordinary last-chunk tail remains: while one
        # worker finishes the final chunk the other n-1 idle (no tail at
        # all for a single worker).
        n = max(1, len(self.team))
        delay = self._pool_tail * (n - 1) / n + self.barrier_cost(n)
        self.machine.engine.schedule_after(delay, self._after_region)

    def _straggler_done(self, task: Task) -> None:
        task.on_complete = None
        self._pending -= 1
        if self._pending == 0:
            self.machine.engine.schedule_after(
                self.barrier_cost(len(self.team)), self._after_region
            )

    # ------------------------------------------------------------------
    # model knobs (subclass overrides)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _exec_parallel(self, region: Region) -> None:
        """Execute a non-serial region."""

    def scale_work(self, work: float, region: Region) -> float:
        """Model-specific work scaling (SYCL divides by efficiency)."""
        return work * self._jitter

    def startup_cost(self, n_threads: int) -> float:
        """One-time runtime initialisation latency."""
        return 50e-6

    def barrier_cost(self, n_threads: int) -> float:
        """End-of-region synchronisation latency."""
        return 2e-6 + 0.2e-6 * n_threads

    def reduction_cost(self, n_threads: int) -> float:
        """Serial combine cost after a reduction region."""
        return 1e-6 + 0.5e-6 * n_threads

    def chunk_overhead(self) -> float:
        """Cost of acquiring one chunk from the shared pool."""
        return 0.3e-6

    @staticmethod
    def chunks_for(work: float, chunk_work: float) -> int:
        """Number of chunks of ``chunk_work`` needed to cover ``work``."""
        if chunk_work <= 0:
            return 1
        return max(1, math.ceil(work / chunk_work))
