"""Per-source noise breakdowns of a single trace."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import EventType
from repro.core.trace import Trace

__all__ = ["SourceBreakdown", "source_breakdown", "top_sources"]


@dataclass(frozen=True)
class SourceBreakdown:
    """Aggregate contribution of one source within one trace."""

    source: str
    etype: EventType
    count: int
    total_time: float
    mean_duration: float
    max_duration: float
    share_of_noise: float    # fraction of the trace's total noise time
    cpu_spread: int          # number of distinct CPUs the source hit

    def __str__(self) -> str:
        return (
            f"{self.source:<20} {self.etype.label:<14} n={self.count:<6} "
            f"total={self.total_time * 1e3:8.3f}ms "
            f"mean={self.mean_duration * 1e6:8.2f}us "
            f"share={self.share_of_noise * 100:5.1f}% cpus={self.cpu_spread}"
        )


def source_breakdown(trace: Trace) -> list[SourceBreakdown]:
    """Per-source aggregates, sorted by total noise time (descending)."""
    out: list[SourceBreakdown] = []
    if trace.n_events == 0:
        return out
    total_noise = trace.total_noise_time()
    n_sources = len(trace.sources)
    counts = np.bincount(trace.source_ids, minlength=n_sources)
    sums = np.bincount(trace.source_ids, weights=trace.durations, minlength=n_sources)
    for sid, name in enumerate(trace.sources):
        if counts[sid] == 0:
            continue
        mask = trace.source_ids == sid
        durs = trace.durations[mask]
        etype = EventType(int(np.bincount(trace.etypes[mask]).argmax()))
        out.append(
            SourceBreakdown(
                source=name,
                etype=etype,
                count=int(counts[sid]),
                total_time=float(sums[sid]),
                mean_duration=float(durs.mean()),
                max_duration=float(durs.max()),
                share_of_noise=float(sums[sid] / total_noise) if total_noise > 0 else 0.0,
                cpu_spread=int(len(np.unique(trace.cpus[mask]))),
            )
        )
    out.sort(key=lambda b: (-b.total_time, b.source))
    return out


def top_sources(trace: Trace, n: int = 5) -> list[SourceBreakdown]:
    """The ``n`` heaviest noise sources of a trace."""
    if n <= 0:
        raise ValueError("n must be positive")
    return source_breakdown(trace)[:n]
