"""Profile-to-profile comparison.

Answers "how does this system's noise differ from that one's?" — e.g.
runlevel 3 versus the default desktop, or one platform versus another —
by diffing two :class:`~repro.core.profile.NoiseProfile` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import NoiseProfile

__all__ = ["ProfileDelta", "profile_delta"]


@dataclass(frozen=True)
class ProfileDelta:
    """Change of one source between two profiles (b relative to a)."""

    source: str
    rate_a: float
    rate_b: float
    mean_duration_a: float
    mean_duration_b: float

    @property
    def rate_change(self) -> float:
        """Relative rate change (+1.0 = doubled); inf if new."""
        if self.rate_a == 0:
            return float("inf") if self.rate_b > 0 else 0.0
        return self.rate_b / self.rate_a - 1.0

    @property
    def load_a(self) -> float:
        """CPU-seconds of this source per second of execution (a)."""
        return self.rate_a * self.mean_duration_a

    @property
    def load_b(self) -> float:
        """CPU-seconds of this source per second of execution (b)."""
        return self.rate_b * self.mean_duration_b


def profile_delta(a: NoiseProfile, b: NoiseProfile) -> list[ProfileDelta]:
    """Per-source comparison, sorted by the absolute load change.

    Sources present in only one profile appear with zero stats on the
    other side (how the runlevel-3 study shows GUI sources vanishing).
    """
    deltas = []
    for source in sorted(set(a) | set(b)):
        sa = a.get(source)
        sb = b.get(source)
        deltas.append(
            ProfileDelta(
                source=source,
                rate_a=sa.rate_hz if sa else 0.0,
                rate_b=sb.rate_hz if sb else 0.0,
                mean_duration_a=sa.mean_duration if sa else 0.0,
                mean_duration_b=sb.mean_duration if sb else 0.0,
            )
        )
    deltas.sort(key=lambda d: -abs(d.load_b - d.load_a))
    return deltas
