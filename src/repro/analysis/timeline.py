"""Temporal structure of a trace: binned timelines and burst windows."""

from __future__ import annotations

import numpy as np

from repro.core.trace import Trace

__all__ = ["noise_timeline", "busiest_window"]


def noise_timeline(trace: Trace, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Noise CPU-time binned over the execution window.

    Returns ``(edges, noise_time)`` where ``edges`` has ``bins + 1``
    boundaries over ``[0, exec_time]`` and ``noise_time[i]`` is the
    CPU-seconds of noise starting in bin ``i``.  The worst-case traces
    of the paper show up as an obvious hump.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    edges = np.linspace(0.0, trace.exec_time, bins + 1)
    if trace.n_events == 0:
        return edges, np.zeros(bins)
    idx = np.clip(np.searchsorted(edges, trace.starts, side="right") - 1, 0, bins - 1)
    noise = np.bincount(idx, weights=trace.durations, minlength=bins)
    return edges, noise


def busiest_window(trace: Trace, width: float) -> tuple[float, float]:
    """The ``width``-second window with the most noise CPU-time.

    Returns ``(start, noise_time)``.  Used to sanity-check that a
    refined configuration concentrates where the anomaly actually
    happened.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if trace.n_events == 0:
        return 0.0, 0.0
    starts = trace.starts
    durs = trace.durations
    best_start, best_noise = 0.0, -1.0
    # candidate windows anchored at each event start
    cum = np.concatenate([[0.0], np.cumsum(durs)])
    for i in range(len(starts)):
        lo = starts[i]
        hi = lo + width
        j = np.searchsorted(starts, hi, side="left")
        noise = float(cum[j] - cum[i])
        if noise > best_noise:
            best_noise = noise
            best_start = float(lo)
    return best_start, best_noise
