"""Trace analytics: understand what the tracer captured.

Post-processing utilities over :class:`~repro.core.trace.Trace` —
per-source breakdowns, timeline binning, gap statistics, and
profile-vs-profile comparison — the exploratory layer an engineer uses
between the paper's collection and configuration stages.
"""

from repro.analysis.breakdown import SourceBreakdown, source_breakdown, top_sources
from repro.analysis.timeline import noise_timeline, busiest_window
from repro.analysis.compare import profile_delta, ProfileDelta

__all__ = [
    "SourceBreakdown",
    "source_breakdown",
    "top_sources",
    "noise_timeline",
    "busiest_window",
    "profile_delta",
    "ProfileDelta",
]
