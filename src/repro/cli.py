"""Command-line interface: ``repro-noise`` / ``python -m repro``.

Subcommands mirror the paper's workflow:

* ``trace``     — stage 1: collect traces, report the worst case, save it;
* ``configure`` — stage 2: build a noise config JSON from a saved trace
  (or run collection implicitly);
* ``inject``    — stage 3: replay a config against a workload spec;
* ``baseline``  — run a baseline experiment and print statistics;
* ``pipeline``  — all three stages end to end;
* ``table``     — regenerate a paper table (1–7) or ablation;
* ``figure``    — regenerate a paper figure (1–2);
* ``campaign``  — run whole artefact campaigns with a checkpoint
  journal and ``--resume``;
* ``service``   — the campaign service: ``start`` a lease-based worker
  (or a supervised fleet with ``--workers N --supervise``), ``submit``
  cells or whole sweeps to its durable queue (``--shard`` splits big
  cells into chunk sub-jobs), ``status`` / ``watch`` progress (worker
  liveness included), ``drain`` the queue and exit, ``prune`` old
  finished job rows, ``dlq`` to inspect/revive quarantined poison
  jobs, ``fsck`` to cross-check queue↔store invariants and re-queue
  lost work, ``monitor`` to serve the read-only HTTP observability
  endpoint (``/metrics`` Prometheus, ``/status`` JSON, ``/healthz``),
  ``top`` for a live worker/queue dashboard
  (see docs/campaign_service.md);
* ``platforms`` — list platform presets;
* ``noise``     — list registered noise sources and their parameters;
* ``telemetry`` — summarize or re-export a telemetry log collected with
  ``--telemetry DIR`` / ``REPRO_TELEMETRY``, or ``stitch`` per-worker
  logs with the service queue's lifecycle events into one campaign
  trace (see docs/observability.md).

``inject`` and ``pipeline`` accept repeatable ``--noise KIND[:k=v,...]``
flags composing any registered sources (I/O bursts, memory hogs,
HPAS-style anomalies, synthetic background) with — or instead of — the
trace-replay config, all in one run.

Experiment-running subcommands accept ``--timeout`` / ``--retries`` /
``--on-failure`` fault-containment flags (see docs/robustness.md);
results recovered through retries stay bit-identical to undisturbed
runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _add_spec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--platform", default="intel-9700kf", help="platform preset name")
    p.add_argument("--workload", default="nbody", help="nbody | babelstream | minife | schedbench")
    p.add_argument("--model", default="omp", help="programming model: omp | sycl")
    p.add_argument("--strategy", default="Rm", help="Rm | RmHK | RmHK2 | TP | TPHK | TPHK2")
    p.add_argument("--no-smt", action="store_true", help="one thread per physical core")
    p.add_argument("--reps", type=int, default=0, help="repetitions (0 = environment default)")
    p.add_argument("--seed", type=int, default=2025, help="campaign seed")
    p.add_argument("--runlevel3", action="store_true", help="disable GUI noise sources")
    p.add_argument(
        "--anomaly-prob",
        type=float,
        default=None,
        help="override the per-run anomaly probability (hunt accelerator)",
    )


def _jobs_arg(value: str) -> int:
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one worker per CPU)")
    return n


def _chunk_size_arg(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def _adaptive_ci_arg(value: str) -> float:
    x = float(value)
    if not x > 0.0:
        raise argparse.ArgumentTypeError("must be > 0 (a relative half-width, e.g. 0.02)")
    return x


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="worker processes for repetitions (default: $REPRO_JOBS or 1; "
        "0 = one per CPU; results are bit-identical at any worker count)",
    )
    p.add_argument(
        "--chunk-size",
        type=_chunk_size_arg,
        default=None,
        metavar="N",
        help="reps per dispatched chunk (default: $REPRO_CHUNK_SIZE or "
        "automatic ~4 chunks per worker; any size yields identical results)",
    )
    p.add_argument(
        "--adaptive-ci",
        type=_adaptive_ci_arg,
        default=None,
        metavar="REL",
        help="stop each cell early once the bootstrap CI half-width of the "
        "mean is below REL x |mean| (e.g. 0.02 = ±2%%); deterministic at any "
        "worker count, capped at the fixed rep budget, cached under a "
        "distinct key (see docs/faq.md)",
    )
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="collect spans/counters during the run and export them to DIR "
        "(events.jsonl, trace.json, counters.prom); equivalent to "
        "REPRO_TELEMETRY=DIR; results are bit-identical either way "
        "(see docs/observability.md)",
    )


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("fault tolerance")
    g.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-repetition wall-time budget (default: none)",
    )
    g.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed repetition; retried reps are "
        "bit-identical to clean runs (implies --on-failure retry)",
    )
    g.add_argument(
        "--on-failure",
        choices=["raise", "skip", "retry"],
        default=None,
        help="terminal action once retries are exhausted: raise (fail "
        "fast, default), retry (then raise), or skip (record the "
        "failure, continue with partial results)",
    )


def _policy_from(args) -> Optional["FaultPolicy"]:
    """Build a FaultPolicy from CLI flags (None when none were given)."""
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    on_failure = getattr(args, "on_failure", None)
    if timeout is None and retries is None and on_failure is None:
        return None
    from repro.harness.faults import FaultPolicy

    if on_failure is None:
        on_failure = "retry" if retries is not None else "raise"
    kwargs = {"timeout": timeout, "on_failure": on_failure}
    if retries is not None:
        kwargs["max_retries"] = retries
    try:
        return FaultPolicy(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"repro-noise: {exc}")


def _add_noise_args(p: argparse.ArgumentParser, verb: str) -> None:
    p.add_argument(
        "--noise",
        action="append",
        default=[],
        metavar="KIND[:key=val,...]",
        help=f"additional noise source to {verb} (repeatable; "
        "see `repro-noise noise` for kinds and parameters; "
        "CPU lists use `+`, e.g. irq_cpus=0+1)",
    )


def _noise_sources_from(args) -> list:
    from repro.noise import parse_noise_spec

    sources = []
    for text in getattr(args, "noise", []):
        try:
            sources.append(parse_noise_spec(text))
        except ValueError as exc:
            raise SystemExit(f"repro-noise: --noise {text!r}: {exc}")
    return sources


def _executor_from(args):
    from repro.harness.executor import get_executor

    try:
        return get_executor(
            getattr(args, "jobs", None), chunk_size=getattr(args, "chunk_size", None)
        )
    except ValueError as exc:
        raise SystemExit(f"repro-noise: {exc}")


def _adaptive_from(args):
    """Build an AdaptivePolicy from --adaptive-ci (None when absent)."""
    target = getattr(args, "adaptive_ci", None)
    if target is None:
        return None
    from repro.harness.adaptive import AdaptivePolicy

    try:
        return AdaptivePolicy(target_rel_hw=target)
    except ValueError as exc:
        raise SystemExit(f"repro-noise: {exc}")


def _spec_from(args) -> "ExperimentSpec":
    from repro.harness.experiment import ExperimentSpec

    return ExperimentSpec(
        platform=args.platform,
        workload=args.workload,
        model=args.model,
        strategy=args.strategy,
        use_smt=not args.no_smt,
        reps=args.reps,
        seed=args.seed,
        runlevel3=args.runlevel3,
        anomaly_prob=args.anomaly_prob,
        adaptive=_adaptive_from(args),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-noise argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description="Reproducible performance evaluation under trace-replay noise injection",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("platforms", help="list platform presets")

    p = sub.add_parser("baseline", help="run a baseline experiment")
    _add_spec_args(p)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument("--no-tracing", action="store_true", help="disable the OSnoise tracer")

    p = sub.add_parser("trace", help="stage 1: collect traces, save the worst case")
    _add_spec_args(p)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument("--out", default="worst_case.json", help="path for the worst-case trace JSON")

    p = sub.add_parser("configure", help="stage 2: generate a noise config")
    _add_spec_args(p)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument("--merge", choices=["improved", "naive"], default="improved")
    p.add_argument("--out", default="noise_config.json", help="path for the config JSON")

    p = sub.add_parser("inject", help="stage 3: replay noise against a workload")
    _add_spec_args(p)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument(
        "--config",
        default=None,
        help="noise config JSON from `configure` (optional when --noise is given)",
    )
    _add_noise_args(p, "compose into the injected stack")

    p = sub.add_parser("pipeline", help="collect, configure, and inject end to end")
    _add_spec_args(p)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument("--merge", choices=["improved", "naive"], default="improved")
    _add_noise_args(p, "compose with the replayed worst case")

    p = sub.add_parser("noise", help="list registered noise sources")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", choices=["1", "2", "3", "4", "5", "6", "7", "ablation", "runlevel3"])
    p.add_argument("--seed", type=int, default=2025)
    _add_exec_args(p)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", choices=["1", "2", "3", "4", "5", "6"])
    p.add_argument("--seed", type=int, default=2025)
    _add_exec_args(p)

    p = sub.add_parser(
        "campaign", help="run artefact campaigns with checkpoint/resume"
    )
    p.add_argument(
        "target",
        choices=[
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "ablation", "runlevel3", "figure1", "figure2", "all",
        ],
        help="which artefact campaign to run",
    )
    p.add_argument("--seed", type=int, default=2025)
    _add_exec_args(p)
    _add_fault_args(p)
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint journal of completed cells (written as the "
        "campaign progresses; enables a later --resume)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume an interrupted campaign from its journal: completed "
        "cells are skipped, only the missing ones run (results stay "
        "bit-identical to an uninterrupted campaign)",
    )

    p = sub.add_parser(
        "service",
        help="campaign service: durable queue, lease-based workers, shared store",
    )
    svc = p.add_subparsers(dest="action", required=True)

    def _add_service_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--queue",
            default=None,
            metavar="PATH",
            help="queue database (default: $REPRO_SERVICE_QUEUE or "
            ".repro_service/queue.sqlite)",
        )
        sp.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="shared result store directory (default: $REPRO_CACHE_DIR "
            "or .repro_cache — the same keyspace in-process runs use)",
        )

    sp = svc.add_parser(
        "start", help="run a worker: lease jobs, execute, publish to the store"
    )
    _add_service_args(sp)
    _add_exec_args(sp)
    _add_fault_args(sp)
    sp.add_argument(
        "--drain", action="store_true", help="exit once the queue is empty"
    )
    sp.add_argument(
        "--max-jobs", type=int, default=None, metavar="N", help="exit after N jobs"
    )
    sp.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease duration (heartbeat renews at a third of it; a killed "
        "worker's jobs are re-leased after this long)",
    )
    sp.add_argument(
        "--worker-id", default=None, help="worker name (default: worker-<pid>)"
    )
    sp.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --supervise: size of the supervised worker fleet",
    )
    sp.add_argument(
        "--supervise",
        action="store_true",
        help="run a supervisor instead of a worker: spawn N worker "
        "processes, restart crashes with seeded backoff (crash loops are "
        "parked), release dead workers' leases immediately, drain "
        "gracefully on SIGTERM (second signal = fail-fast)",
    )
    sp.add_argument(
        "--supervisor-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed of the supervisor's restart-backoff schedule",
    )
    sp.add_argument(
        "--monitor",
        type=int,
        default=None,
        metavar="PORT",
        help="with --supervise: serve the read-only monitoring endpoint "
        "(/metrics, /status, /healthz) on this localhost port for the "
        "fleet's lifetime (0 picks an ephemeral port)",
    )

    sp = svc.add_parser("submit", help="queue one cell, or a sweep grid")
    _add_service_args(sp)
    _add_spec_args(sp)
    _add_noise_args(sp, "inject for every submitted cell")
    sp.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="FIELD=V1+V2+...",
        help="sweep axis (repeatable); with any --sweep the whole cartesian "
        "grid is queued up front and a sweep id is printed",
    )
    sp.add_argument(
        "--priority", type=int, default=0, help="scheduler priority (higher first)"
    )
    sp.add_argument("--title", default=None, help="sweep title used when rendering")
    sp.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="REPS",
        help="shard threshold: cells with more reps are split into chunk "
        "sub-jobs of at most REPS reps each, so several workers run one "
        "cell concurrently (default: $REPRO_SHARD_REPS, 0 disables; "
        "results are bit-identical either way)",
    )

    sp = svc.add_parser("status", help="queue counts, sweeps, and store stats")
    _add_service_args(sp)
    sp.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full status document as JSON instead of text",
    )
    sp.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep printing: refresh on job completions (fifo wakeups) or "
        "at most every SECONDS, until interrupted",
    )

    sp = svc.add_parser("watch", help="wait until submitted work completes")
    _add_service_args(sp)
    sp.add_argument(
        "--sweep-id",
        default=None,
        help="wait for (and then render) one sweep instead of the whole queue",
    )
    sp.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS", help="give up after this long"
    )
    sp.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print a progress line at most every SECONDS while waiting "
        "(default: wait silently)",
    )

    sp = svc.add_parser(
        "monitor",
        help="serve the read-only observability endpoint: /metrics "
        "(Prometheus), /status and /jobs/<key> (JSON), /healthz",
    )
    _add_service_args(sp)
    sp.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1 — the monitor is loopback-"
        "only by design)",
    )
    sp.add_argument(
        "--port",
        type=int,
        default=9177,
        help="bind port (default: 9177; 0 picks an ephemeral port)",
    )

    sp = svc.add_parser(
        "top",
        help="live dashboard: workers, leases, reps/sec, queue depth, "
        "DLQ size, campaign progress and ETA",
    )
    _add_service_args(sp)
    sp.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh cadence (completions wake it early via the notify "
        "fifo; default 2s)",
    )
    sp.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no screen clearing)",
    )

    sp = svc.add_parser(
        "drain", help="run an inline worker until the queue is empty, then exit"
    )
    _add_service_args(sp)
    _add_exec_args(sp)
    _add_fault_args(sp)
    sp.add_argument(
        "--keep-finished",
        action="store_true",
        help="skip the automatic prune of finished job rows older than "
        "the retention window after draining",
    )

    sp = svc.add_parser(
        "prune",
        help="delete done/failed job rows older than the retention window "
        "(results are unaffected: they live in the store)",
    )
    _add_service_args(sp)
    sp.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="retention window (default: $REPRO_PRUNE_S or 7 days; 0 "
        "prunes every finished row)",
    )

    sp = svc.add_parser(
        "dlq",
        help="dead-letter queue: jobs quarantined after killing workers "
        "(list, show forensics, retry with a fresh budget, purge)",
    )
    _add_service_args(sp)
    sp.add_argument(
        "dlq_action",
        choices=["list", "show", "retry", "purge"],
        metavar="ACTION",
        help="list | show | retry | purge",
    )
    sp.add_argument(
        "key",
        nargs="?",
        default=None,
        help="job key (required for show/retry; purge without a key "
        "drops every quarantined job)",
    )

    sp = svc.add_parser(
        "fsck",
        help="cross-check queue<->store invariants (lost results, corrupt "
        "entries, unmergeable sharded cells, dead workers' leases)",
    )
    _add_service_args(sp)
    sp.add_argument(
        "--repair",
        action="store_true",
        help="re-queue lost work, quarantine corrupt entries, release "
        "dead workers' leases, delete orphan chunk files",
    )

    p = sub.add_parser("analyze", help="analyse a saved trace JSON")
    p.add_argument("trace", help="trace JSON from `repro-noise trace`")
    p.add_argument("--top", type=int, default=10, help="sources to show")
    p.add_argument("--bins", type=int, default=20, help="timeline bins")

    p = sub.add_parser(
        "telemetry", help="summarize, re-export, or stitch collected telemetry"
    )
    p.add_argument(
        "action",
        choices=["summarize", "export", "stitch"],
        help="summarize: print a where-did-the-time-go span/counter "
        "breakdown; export: convert the event log to another format; "
        "stitch: join per-worker telemetry with the service queue's "
        "lifecycle events into one cross-process Perfetto trace",
    )
    p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="telemetry directory from --telemetry/REPRO_TELEMETRY (or the "
        "events.jsonl file itself); stitch accepts several, one per worker",
    )
    p.add_argument(
        "--queue",
        default=None,
        metavar="PATH",
        help="for `stitch`: the service queue database holding the "
        "lifecycle events (default: $REPRO_SERVICE_QUEUE or "
        ".repro_service/queue.sqlite)",
    )
    p.add_argument(
        "--format",
        choices=["chrome", "prom", "jsonl"],
        default="chrome",
        dest="fmt",
        help="export format: chrome trace-event JSON (Perfetto-loadable, "
        "default), Prometheus text, or normalized JSONL",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output file for `export` (default: trace.json / counters.prom "
        "/ events.jsonl in the working directory) or `stitch` "
        "(default: stitched.json)",
    )

    return parser


def _cmd_platforms(args) -> int:
    from repro.sim.platform import available_platforms, get_platform

    for name in available_platforms():
        p = get_platform(name)
        topo = p.topology
        reserved = f", {len(topo.reserved_cpus)} reserved OS cores" if topo.reserved_cpus else ""
        print(
            f"{name:16s} {topo.n_physical} cores x {topo.smt} SMT = "
            f"{topo.n_logical} logical CPUs, {p.bandwidth_gbs:.0f} GB/s{reserved}"
        )
    return 0


def _cmd_baseline(args) -> int:
    from repro.harness.experiment import run_experiment

    spec = _spec_from(args).with_(tracing=not args.no_tracing)
    rs = run_experiment(spec, executor=_executor_from(args), policy=_policy_from(args))
    print(f"{spec.label()}: {rs.summary}")
    print(f"natural anomalies observed: {rs.anomaly_count()}/{len(rs.times)} runs")
    if rs.failures:
        print(f"contained failures: {rs.failure_count()}/{len(rs.times)} reps skipped")
    return 0


def _cmd_trace(args) -> int:
    from repro.core.collection import collect_traces

    coll = collect_traces(
        _spec_from(args), executor=_executor_from(args), policy=_policy_from(args)
    )
    worst = coll.worst_trace
    print(
        f"collected {len(coll.exec_times)} runs, mean {coll.mean_exec_time:.4f}s, "
        f"worst case {coll.worst_exec_time:.4f}s "
        f"(+{coll.worst_case_degradation() * 100:.1f}%, anomaly: {worst.meta.get('anomaly')})"
    )
    with open(args.out, "w") as fh:
        fh.write(worst.to_json())
    print(f"worst-case trace ({worst.n_events} events) written to {args.out}")
    return 0


def _cmd_configure(args) -> int:
    from repro.core.collection import collect_traces
    from repro.core.config import generate_config
    from repro.core.merge import MergeStrategy

    coll = collect_traces(
        _spec_from(args), executor=_executor_from(args), policy=_policy_from(args)
    )
    config = generate_config(
        coll.worst_trace,
        coll.profile,
        merge=MergeStrategy(args.merge),
        meta={"collected_from": _spec_from(args).label()},
    )
    config.save(args.out)
    print(
        f"config written to {args.out}: {config.n_events} events on "
        f"{config.n_cpus} CPUs, {config.total_busy_time() * 1e3:.1f}ms busy"
    )
    return 0


def _cmd_inject(args) -> int:
    from repro.harness.experiment import run_experiment
    from repro.noise import NoiseStack, TraceReplaySource

    sources = _noise_sources_from(args)
    config = None
    if args.config is not None:
        from repro.core.config import NoiseConfig

        config = NoiseConfig.load(args.config)
        sources.insert(0, TraceReplaySource(config))
    if not sources:
        raise SystemExit("repro-noise: inject needs --config and/or at least one --noise")
    stack = NoiseStack(sources)
    spec = _spec_from(args)
    executor = _executor_from(args)
    policy = _policy_from(args)
    baseline = run_experiment(spec, executor=executor, policy=policy)
    injected = run_experiment(
        spec.with_(seed=spec.seed + 1_000_003),
        noise=stack,
        executor=executor,
        policy=policy,
    )
    delta = (injected.mean / baseline.mean - 1.0) * 100.0
    print(f"noise stack: {stack.describe()}")
    print(f"baseline: {baseline.summary}")
    print(f"injected: {injected.summary}")
    print(f"degradation: {delta:+.1f}%")
    anomaly = config.meta.get("worst_case_exec_time") if config is not None else None
    if anomaly:
        from repro.core.accuracy import replication_accuracy

        print(f"replication accuracy: {replication_accuracy(injected.mean, anomaly) * 100:.2f}%")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.core.merge import MergeStrategy
    from repro.core.pipeline import NoiseInjectionPipeline

    pipe = NoiseInjectionPipeline(
        _spec_from(args),
        merge=MergeStrategy(args.merge),
        executor=_executor_from(args),
        extra_noise=_noise_sources_from(args),
        fault_policy=_policy_from(args),
    )
    result = pipe.run()
    print(result.summary())
    return 0


def _cmd_noise(args) -> int:
    from repro.noise import available_sources, get_source_type

    print("registered noise sources (compose with repeatable --noise flags):")
    for kind in available_sources():
        cls = get_source_type(kind)
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"\n  {kind}")
        print(f"      {doc}")
        params = cls.cli_params()
        if params:
            print(f"      params: {', '.join(sorted(params))}")
        else:
            print("      params: (none)")
    print("\nsyntax: --noise KIND[:key=val,key=val,...]   (CPU lists use `+`: irq_cpus=0+1)")
    return 0


def _cmd_table(args) -> int:
    from repro.harness import campaigns

    settings = campaigns.default_settings(
        seed=args.seed,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        adaptive=_adaptive_from(args),
    )
    dispatch = {
        "1": campaigns.table1,
        "2": campaigns.table2,
        "3": campaigns.table3,
        "4": campaigns.table4,
        "5": campaigns.table5,
        "6": campaigns.table6,
        "7": campaigns.table7,
        "ablation": campaigns.merge_ablation,
        "runlevel3": campaigns.runlevel3_study,
    }
    result = dispatch[args.number](settings)
    print(result.render())
    return 0


def _cmd_figure(args) -> int:
    from repro.harness import campaigns

    settings = campaigns.default_settings(
        seed=args.seed,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        adaptive=_adaptive_from(args),
    )
    if args.number == "1":
        print(campaigns.figure1(settings).render())
    elif args.number == "2":
        print(campaigns.figure2(settings).render())
    else:
        _demo_figure(int(args.number), args.seed)
    return 0


def _demo_figure(number: int, seed: int) -> None:
    """Figures 3–6 are structural illustrations; render live examples."""
    from repro.core.collection import collect_traces
    from repro.core.config import generate_config
    from repro.core.refine import refine_worst_case
    from repro.harness.experiment import ExperimentSpec, run_experiment

    spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", seed=seed, reps=10)
    coll = collect_traces(spec, reps=10, min_degradation=0.0, max_batches=1)
    if number == 3:
        print("Figure 3: sample OSnoise trace records")
        print(coll.worst_trace.to_osnoise_text(limit=12))
        return
    if number == 4:
        refined = refine_worst_case(coll.worst_trace, coll.profile)
        print("Figure 4: delta refinement of the worst-case trace")
        print(f"  worst-case events : {coll.worst_trace.n_events}")
        print(f"  refined (delta)   : {refined.n_events}")
        print(
            f"  noise time        : {coll.worst_trace.total_noise_time() * 1e3:.2f}ms -> "
            f"{refined.total_noise_time() * 1e3:.2f}ms"
        )
        return
    config = generate_config(coll.worst_trace, coll.profile)
    if number == 5:
        print("Figure 5: noise configuration structure")
        print(config.to_json(indent=2)[:2000])
        return
    if number == 6:
        print("Figure 6: injector processing overview")
        injected = run_experiment(spec.with_(seed=seed + 1_000_003, reps=5), noise=config)
        print(
            f"  spawned {config.n_cpus} injector processes, "
            f"{config.n_events} events, {config.total_busy_time() * 1e3:.1f}ms busy"
        )
        print(f"  baseline mean {coll.mean_exec_time:.4f}s -> injected mean {injected.mean:.4f}s")


def _cmd_campaign(args) -> int:
    from pathlib import Path

    from repro.harness import campaigns
    from repro.harness.cache import ResultCache
    from repro.harness.faults import CampaignJournal

    journal_path = args.resume if args.resume is not None else args.journal
    cache = ResultCache()
    journal = None
    if journal_path is not None:
        journal = CampaignJournal(Path(journal_path))
        if args.resume is not None:
            present, missing = journal.verify_against_cache(cache)
            print(
                f"resuming from {journal.path}: {len(journal.completed)} cells "
                f"journaled ({present} cached, {missing} re-run)"
            )
    settings = campaigns.default_settings(
        seed=args.seed,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache=cache,
        fault_policy=_policy_from(args),
        journal=journal,
        adaptive=_adaptive_from(args),
    )
    targets = {
        "table1": campaigns.table1,
        "table2": campaigns.table2,
        "table3": campaigns.table3,
        "table4": campaigns.table4,
        "table5": campaigns.table5,
        "table6": campaigns.table6,
        "table7": campaigns.table7,
        "ablation": campaigns.merge_ablation,
        "runlevel3": campaigns.runlevel3_study,
        "figure1": campaigns.figure1,
        "figure2": campaigns.figure2,
    }
    names = list(targets) if args.target == "all" else [args.target]
    for name in names:
        print(targets[name](settings).render())
        print()
    stats = settings.cache.stats()
    print(
        f"cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['corrupt']} salvaged, {stats['partial']} partial"
    )
    ex_stats = settings.executor.stats()
    if ex_stats:
        print(f"executor: {ex_stats}")
    if journal is not None:
        print(f"journal: {len(journal.completed)} completed cells -> {journal.path}")
    return 0


def _service_parts(args):
    """Queue + store + client from the common ``--queue/--store`` flags."""
    import os
    from pathlib import Path

    from repro.service import JobQueue, ServiceClient, SharedResultStore

    queue_path = args.queue or os.environ.get(
        "REPRO_SERVICE_QUEUE", ".repro_service/queue.sqlite"
    )
    queue = JobQueue(Path(queue_path))
    store = SharedResultStore(Path(args.store) if args.store else None)
    return queue, store, ServiceClient(queue, store)


def _sweep_axis(text: str) -> tuple[str, list]:
    """Parse ``field=v1+v2+...`` with per-value type coercion."""
    field, _, raw = text.partition("=")
    if not _ or not raw:
        raise SystemExit(f"repro-noise: --sweep {text!r}: expected FIELD=V1+V2+...")

    def coerce(v: str):
        low = v.lower()
        if low in ("true", "false"):
            return low == "true"
        for kind in (int, float):
            try:
                return kind(v)
            except ValueError:
                continue
        return v

    return field.strip(), [coerce(v) for v in raw.split("+")]


def _cmd_service_dlq(args, queue) -> int:
    action = args.dlq_action
    if action == "list":
        entries = queue.dlq_list()
        if not entries:
            print("dlq: empty")
            return 0
        for job in entries:
            failure = job.failure or {}
            deaths = failure.get("deaths", [])
            print(
                f"{job.key}  {job.label}  reason={failure.get('reason', '?')}"
                f"  deaths={len(deaths)}  attempts={job.attempts}"
            )
        return 0

    if action in ("show", "retry") and args.key is None:
        raise SystemExit(f"repro-noise: service dlq {action} requires a job key")

    if action == "show":
        job = queue.job(args.key)
        if job is None:
            raise SystemExit(f"repro-noise: unknown job {args.key!r}")
        failure = job.failure or {}
        record = failure.get("record", {})
        print(f"key:      {job.key}")
        print(f"label:    {job.label}")
        print(f"status:   {job.status}")
        print(f"reason:   {failure.get('reason', '-')}")
        print(f"error:    {record.get('error', '-')}: {record.get('message', job.error or '-')}")
        print(f"attempts: {job.attempts}/{job.max_attempts}")
        if failure.get("chunk"):
            start, stop = failure["chunk"]
            print(f"chunk:    reps [{start}:{stop}]")
        for death in failure.get("deaths", []) or job.deaths:
            pid = death.get("pid")
            print(
                f"death:    worker {death.get('worker')}"
                + (f" (pid {pid})" if pid is not None else "")
                + f" attempt {death.get('attempt')}: {death.get('detail')}"
            )
        spec = failure.get("spec") or job.spec
        if spec:
            print("spec:     " + json.dumps(spec, sort_keys=True))
        print(f"revive:   repro-noise service dlq retry {job.key}")
        return 0

    if action == "retry":
        if queue.dlq_retry(args.key):
            print(f"re-queued {args.key} with a fresh attempt budget")
            return 0
        raise SystemExit(
            f"repro-noise: {args.key!r} is not quarantined or failed"
        )

    # purge
    purged = queue.dlq_purge(args.key)
    print(f"purged {purged} quarantined job(s)")
    return 0


def _cmd_service(args) -> int:
    queue, store, client = _service_parts(args)

    if args.action == "start" and getattr(args, "supervise", False):
        from repro.service import Supervisor

        supervisor = Supervisor(
            queue,
            store_root=store.root,
            workers=max(1, getattr(args, "workers", 1)),
            seed=getattr(args, "supervisor_seed", 0),
            drain=getattr(args, "drain", False),
            lease_s=getattr(args, "lease", None),
            monitor_port=getattr(args, "monitor", None),
        )
        supervisor.install_signal_handlers()
        print(
            f"supervisor {supervisor.id_prefix}: {len(supervisor.slots)} worker(s) "
            f"over {queue.path} -> {store.root}"
            + (
                f", monitor on 127.0.0.1:{supervisor.monitor_port}"
                if supervisor.monitor_port is not None
                else ""
            )
        )
        deaths = supervisor.run()
        print(f"supervisor {supervisor.id_prefix}: {supervisor.stats()}")
        return 0 if deaths == 0 else 1

    if args.action in ("start", "drain"):
        from repro.harness.chaos import mark_service_worker
        from repro.service import Worker

        worker = Worker(
            queue,
            store,
            worker_id=getattr(args, "worker_id", None),
            executor=_executor_from(args),
            policy=_policy_from(args),
            lease_s=getattr(args, "lease", None) or 60.0,
        )
        # This process is a real service worker: the kill-worker chaos
        # profile may take it down, and SIGTERM means drain gracefully.
        mark_service_worker()
        worker.install_signal_handlers()
        drain = args.action == "drain" or getattr(args, "drain", False)
        print(
            f"{worker.worker_id}: leasing from {queue.path} "
            f"-> {store.root}" + (" (drain)" if drain else "")
        )
        try:
            done = worker.run(drain=drain, max_jobs=getattr(args, "max_jobs", None))
        except KeyboardInterrupt:
            done = -1
            print(f"{worker.worker_id}: interrupted")
        print(f"{worker.worker_id}: {worker.stats()}")
        if (
            args.action == "drain"
            and done >= 0
            and not getattr(args, "keep_finished", False)
        ):
            pruned = queue.prune()
            if pruned:
                print(f"pruned {pruned} finished job row(s) past retention")
        return 0 if done >= 0 else 130

    if args.action == "dlq":
        return _cmd_service_dlq(args, queue)

    if args.action == "fsck":
        from repro.service import fsck

        report = fsck(queue, store, repair=args.repair)
        print(report.summary())
        return 0 if report.clean or report.repaired else 1

    if args.action == "monitor":
        import time as _time

        from repro.service import MonitorServer

        server = MonitorServer(queue, store, host=args.host, port=args.port)
        server.start()
        print(f"monitor: serving {server.url} (read-only; Ctrl-C to stop)")
        print(f"  metrics: {server.url}/metrics")
        print(f"  status:  {server.url}/status")
        print(f"  health:  {server.url}/healthz")
        try:
            while True:
                _time.sleep(3600.0)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        print("monitor: stopped")
        return 0

    if args.action == "top":
        from repro.service import render_top

        if args.once:
            print(render_top(queue, store))
            return 0
        try:
            while True:
                frame = render_top(queue, store)
                # Clear + home redraw; completions wake the refresh
                # early through the notify fifo, the interval is only
                # the fallback cadence.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
                with queue.notify_complete.subscribe(
                    probe=queue.data_version
                ) as subscription:
                    subscription.wait(timeout=max(0.1, args.interval))
        except KeyboardInterrupt:
            print()
            return 0

    if args.action == "submit":
        spec = _spec_from(args)
        sources = _noise_sources_from(args)
        noise = None
        if sources:
            from repro.noise import NoiseStack

            noise = NoiseStack(sources)
        axes = dict(_sweep_axis(text) for text in args.sweep)
        if axes:
            sweep_id = client.submit_sweep(
                spec,
                noise=noise,
                priority=args.priority,
                title=args.title,
                shard=args.shard,
                **axes,
            )
            record = queue.sweep(sweep_id)
            stats = client.stats()
            sharded = f", {stats['sharded']} sharded" if stats["sharded"] else ""
            print(
                f"sweep {sweep_id}: {len(record['keys'])} cells queued "
                f"({stats['deduplicated']} already known{sharded})"
            )
            print(f"collect with: repro-noise service watch --sweep-id {sweep_id}")
        else:
            key = client.submit(spec, noise=noise, priority=args.priority, shard=args.shard)
            job = queue.job(key)
            if job is not None and job.status == "sharded":
                n = len(queue.children(key))
                print(f"queued {spec.label()} as {key} ({n} chunk sub-jobs)")
            else:
                print(f"queued {spec.label()} as {key}")
        return 0

    if args.action == "status":

        def _print_status() -> None:
            status = client.status()
            if getattr(args, "as_json", False):
                print(json.dumps(status, indent=2, sort_keys=True))
                return
            jobs = status["jobs"]
            print(
                f"queue {queue.path}: "
                + ", ".join(
                    f"{jobs[k]} {k}"
                    for k in (
                        "queued", "leased", "sharded", "done", "failed", "quarantined",
                    )
                )
            )
            for sw in status["sweeps"]:
                title = f" ({sw['title']})" if sw["title"] else ""
                sharded = f", {sw['sharded']} sharded" if sw.get("sharded") else ""
                quarantined = (
                    f", {sw['quarantined']} quarantined" if sw.get("quarantined") else ""
                )
                print(
                    f"  sweep {sw['id']}{title}: {sw['done']}/{sw['cells']} done, "
                    f"{sw['leased']} leased{sharded}, {sw['failed']} failed"
                    f"{quarantined}"
                )
            for info in status["workers"]:
                # 'lost' is derived from heartbeat age: a crashed worker
                # shows up here immediately, not when its lease expires.
                lease = f" on {info['current_key'][:16]}" if info.get("current_key") else ""
                print(
                    f"  worker {info['id']} (pid {info['pid']}): {info['state']}"
                    f"{lease}, heartbeat {info['heartbeat_age_s']}s ago, "
                    f"{info['jobs_done']} jobs done"
                )
            for entry in status["dlq"]:
                print(f"  dlq {entry['key']} ({entry['label']}): {entry['error']}")
            st = status["store"]
            print(
                f"store {store.root}: {st['hits']} hits, {st['misses']} misses, "
                f"{st['shared_hits']} shared hits, {st['lock_waits']} lock waits, "
                f"{st['chunk_merges']} chunk merges, "
                f"{st['integrity_quarantined']} integrity quarantines"
            )

        interval = getattr(args, "interval", None)
        if interval is None:
            _print_status()
            return 0
        # Refresh loop: completion wakeups (notify fifo) re-print early,
        # the interval is only the fallback cadence.
        try:
            while True:
                _print_status()
                with queue.notify_complete.subscribe(
                    probe=queue.data_version
                ) as subscription:
                    subscription.wait(timeout=max(0.1, interval))
        except KeyboardInterrupt:
            return 0

    if args.action == "prune":
        pruned = queue.prune(args.older_than)
        print(f"pruned {pruned} finished job row(s) from {queue.path}")
        return 0

    # watch
    keys = None
    if args.sweep_id is not None:
        record = queue.sweep(args.sweep_id)
        if record is None:
            raise SystemExit(f"repro-noise: unknown sweep id {args.sweep_id!r}")
        keys = record["keys"]
    progress = None
    if getattr(args, "interval", None) is not None:

        def progress(counts: dict) -> None:
            pending = counts["queued"] + counts["leased"] + counts["sharded"]
            print(
                f"watch: {counts['done']} done, {pending} pending, "
                f"{counts['failed']} failed, {counts['quarantined']} quarantined"
            )

    try:
        client.wait(
            keys,
            timeout=args.timeout,
            progress=progress,
            progress_interval=getattr(args, "interval", None) or 2.0,
        )
    except TimeoutError as exc:
        raise SystemExit(f"repro-noise: {exc}")
    if args.sweep_id is not None:
        result = client.collect_sweep(args.sweep_id)
        title = queue.sweep(args.sweep_id)["title"] or "sweep"
        print(result.render(title=title))
    else:
        counts = queue.counts()
        print(f"queue drained: {counts['done']} done, {counts['failed']} failed")
    return 0 if queue.counts()["failed"] == 0 else 1


def _cmd_analyze(args) -> int:
    from repro.analysis import busiest_window, noise_timeline, top_sources
    from repro.core.trace import Trace

    with open(args.trace) as fh:
        trace = Trace.from_json(fh.read())
    print(
        f"trace: {trace.n_events} events, {len(trace.sources)} sources, "
        f"exec {trace.exec_time:.4f}s, noise {trace.total_noise_time() * 1e3:.2f}ms"
    )
    print(f"\ntop {args.top} sources by noise time:")
    for row in top_sources(trace, args.top):
        print(f"  {row}")
    edges, noise = noise_timeline(trace, bins=args.bins)
    peak = noise.max() if len(noise) else 0.0
    print(f"\nnoise timeline ({args.bins} bins over the run):")
    for i, value in enumerate(noise):
        bar = "#" * int(round(value / peak * 40)) if peak > 0 else ""
        print(f"  {edges[i]:7.3f}s  {value * 1e3:8.3f}ms |{bar}")
    start, amount = busiest_window(trace, width=trace.exec_time / 10.0)
    print(
        f"\nbusiest {trace.exec_time / 10.0:.3f}s window starts at "
        f"{start:.3f}s with {amount * 1e3:.2f}ms of noise"
    )
    return 0


def _cmd_telemetry(args) -> int:
    import os
    from pathlib import Path

    from repro import telemetry

    if args.action == "stitch":
        from repro.service import JobQueue, stitch_trace

        queue_path = Path(
            args.queue
            or os.environ.get("REPRO_SERVICE_QUEUE", ".repro_service/queue.sqlite")
        )
        if not queue_path.exists():
            raise SystemExit(
                f"repro-noise: no service queue at {queue_path} (pass --queue, "
                "or set REPRO_SERVICE_QUEUE)"
            )
        queue = JobQueue(queue_path)
        trace = stitch_trace(queue, telemetry_paths=args.paths)
        out = Path(args.out) if args.out is not None else Path("stitched.json")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(trace))
        phases = [
            e for e in trace["traceEvents"] if (e.get("args") or {}).get("phase")
        ]
        print(
            f"telemetry: stitched {len(trace['traceEvents'])} trace events "
            f"({len(phases)} lifecycle phases, {len(args.paths)} worker "
            f"log(s)) to {out}"
        )
        return 0

    if len(args.paths) != 1:
        raise SystemExit(
            f"repro-noise: telemetry {args.action} takes exactly one PATH"
        )
    path = Path(args.paths[0])
    if path.is_dir():
        path = path / "events.jsonl"
    if not path.exists():
        raise SystemExit(
            f"repro-noise: no telemetry log at {path} (run a command with "
            "--telemetry DIR, or point at an events.jsonl)"
        )
    events, counters = telemetry.load_events_jsonl(path)
    if args.action == "summarize":
        print(f"telemetry log: {path} ({len(events)} spans)")
        print(telemetry.summarize_text(events, counters))
        return 0
    defaults = {"chrome": "trace.json", "prom": "counters.prom", "jsonl": "events.jsonl"}
    out = Path(args.out) if args.out is not None else Path(defaults[args.fmt])
    if args.fmt == "chrome":
        telemetry.write_chrome_trace(out, events)
    elif args.fmt == "prom":
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(telemetry.prometheus_text(counters))
    else:
        telemetry.write_events_jsonl(out, events, counters)
    print(f"telemetry: wrote {args.fmt} export ({len(events)} spans) to {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        import os

        from repro import telemetry

        # The environment carries the directive so pool workers under a
        # spawn start method re-read it on import; fork workers inherit
        # the module flag directly.
        os.environ["REPRO_TELEMETRY"] = str(telemetry_dir)
        telemetry.refresh_from_env()
    dispatch = {
        "platforms": _cmd_platforms,
        "baseline": _cmd_baseline,
        "trace": _cmd_trace,
        "configure": _cmd_configure,
        "inject": _cmd_inject,
        "pipeline": _cmd_pipeline,
        "noise": _cmd_noise,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "campaign": _cmd_campaign,
        "service": _cmd_service,
        "analyze": _cmd_analyze,
        "telemetry": _cmd_telemetry,
    }
    try:
        return dispatch[args.command](args)
    finally:
        if telemetry_dir is not None:
            from repro import telemetry

            paths = telemetry.export_all()
            print(
                "telemetry: exported "
                + ", ".join(str(paths[k]) for k in ("events", "chrome", "prometheus"))
            )


if __name__ == "__main__":
    sys.exit(main())
