"""Mitigation strategies evaluated by the paper (§5's column labels)."""

from repro.mitigation.strategies import (
    STRATEGY_NAMES,
    MitigationStrategy,
    get_strategy,
)

__all__ = ["MitigationStrategy", "get_strategy", "STRATEGY_NAMES"]
