"""Mitigation strategies: thread placement and housekeeping cores.

The paper's configuration labels (§5):

* ``Rm`` — roam: threads schedule freely over the allowed CPUs;
* ``TP`` — thread pinning: thread *i* fixed to CPU *i*;
* ``HK`` / ``HK2`` — housekeeping: 12.5% / 25% of the CPUs are left to
  background system tasks and excluded from the workload;
* ``RmHK``/``RmHK2``/``TPHK``/``TPHK2`` — the combinations.

SMT toggling is orthogonal (the AMD rows marked "SMT" in Tables 3–5):
``use_smt=False`` runs one thread per physical core, leaving the
sibling hardware threads to absorb OS activity (León et al.'s
SMT-reservation idea).

A strategy turns a :class:`~repro.sim.platform.PlatformSpec` into a
:class:`~repro.runtimes.base.Placement`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtimes.base import Placement
from repro.sim.platform import PlatformSpec

__all__ = ["MitigationStrategy", "get_strategy", "STRATEGY_NAMES"]


@dataclass(frozen=True)
class MitigationStrategy:
    """One of the paper's six placement/housekeeping configurations."""

    name: str
    pinned: bool
    hk_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.hk_fraction < 0.5:
            raise ValueError(f"hk_fraction out of range: {self.hk_fraction!r}")

    # ------------------------------------------------------------------
    def placement(self, platform: PlatformSpec, use_smt: bool = True) -> Placement:
        """Compute the workload's CPU mask and thread count.

        Housekeeping CPUs are taken from the top of the CPU range
        (whole physical cores on SMT machines, so a reserved core's
        sibling is not left inside the workload mask).
        """
        topo = platform.topology
        if use_smt or topo.smt == 1:
            base = [c for c in platform.user_cpus()]
        else:
            user = set(platform.user_cpus())
            base = [c for c in topo.primary_cpus() if c in user]
        n_hk = int(round(self.hk_fraction * len(base)))
        if self.hk_fraction > 0.0:
            n_hk = max(1, n_hk)
        if n_hk >= len(base):
            raise ValueError(
                f"housekeeping would consume all CPUs ({n_hk} of {len(base)})"
            )
        if n_hk and topo.smt == 2 and use_smt:
            # Remove whole physical cores: highest cores, both siblings.
            n_cores = max(1, n_hk // 2)
            drop: set[int] = set()
            for core in range(topo.n_physical - 1, -1, -1):
                if len(drop) >= 2 * n_cores:
                    break
                drop.add(core)
                sib = topo.sibling(core)
                if sib is not None:
                    drop.add(sib)
            cpus = tuple(c for c in base if c not in drop)
        else:
            cpus = tuple(base[: len(base) - n_hk]) if n_hk else tuple(base)
        return Placement(
            cpus=cpus,
            n_threads=len(cpus),
            pinned=self.pinned,
            label=self.name + ("" if use_smt else "-noSMT"),
        )

    def housekeeping_cpus(self, platform: PlatformSpec, use_smt: bool = True) -> tuple[int, ...]:
        """CPUs left for background tasks under this strategy."""
        mask = set(self.placement(platform, use_smt).cpus)
        return tuple(c for c in platform.user_cpus() if c not in mask)


_STRATEGIES = {
    "Rm": MitigationStrategy("Rm", pinned=False, hk_fraction=0.0),
    "RmHK": MitigationStrategy("RmHK", pinned=False, hk_fraction=0.125),
    "RmHK2": MitigationStrategy("RmHK2", pinned=False, hk_fraction=0.25),
    "TP": MitigationStrategy("TP", pinned=True, hk_fraction=0.0),
    "TPHK": MitigationStrategy("TPHK", pinned=True, hk_fraction=0.125),
    "TPHK2": MitigationStrategy("TPHK2", pinned=True, hk_fraction=0.25),
}

#: column order used throughout the paper's tables
STRATEGY_NAMES = ("Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2")


def get_strategy(name: str) -> MitigationStrategy:
    """Look up a strategy by its paper label (case-sensitive)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {', '.join(STRATEGY_NAMES)}"
        ) from None
