"""Shared memory-bandwidth model.

A platform exposes a single DRAM bandwidth pool (per-socket; all three
paper machines are single-socket).  Tasks declare the bandwidth they
*would* consume at full speed (``Task.mem_demand``); when aggregate
demand exceeds the pool, every memory-bound task is slowed by the same
factor.

This first-order model is what makes Babelstream behave correctly:

* with all cores active the kernels are bandwidth-saturated, so giving
  up cores to housekeeping costs almost nothing (paper §6, rec. 2);
* noise that blocks one thread frees bandwidth the others soak up,
  dampening the region-level impact relative to compute-bound N-body.
"""

from __future__ import annotations

__all__ = ["MemorySystem"]


class MemorySystem:
    """A saturating bandwidth pool.

    Parameters
    ----------
    bandwidth:
        Sustained bandwidth in GB/s.  ``float("inf")`` disables the
        model (pure compute platform).
    """

    def __init__(self, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth!r}")
        self.bandwidth = float(bandwidth)

    def scale_for(self, total_demand: float) -> float:
        """Slow-down factor applied to memory-bound tasks.

        Returns 1.0 when demand fits; ``bandwidth / demand`` otherwise.
        """
        if total_demand < 0:
            raise ValueError(f"negative demand: {total_demand!r}")
        if total_demand <= self.bandwidth:
            return 1.0
        return self.bandwidth / total_demand

    def saturated(self, total_demand: float) -> bool:
        """True when ``total_demand`` exceeds the pool."""
        return total_demand > self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemorySystem bw={self.bandwidth} GB/s>"
