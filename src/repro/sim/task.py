"""Task and work-pool models.

A :class:`Task` is anything the scheduler can place on a logical CPU:
a workload thread, an injected noise process, a kworker, or an
interrupt-like kernel activity.  Tasks progress through *work*,
expressed in seconds of CPU time at nominal (factor 1.0) speed, and
integrate progress lazily between scheduler events.

A :class:`WorkPool` models dynamically-scheduled parallel work — an
OpenMP ``dynamic``/``guided`` loop or a SYCL kernel ND-range executed by
a work-stealing thread pool.  Member tasks drain a shared amount of
work at the sum of their individual rates; this is what gives
dynamically-scheduled runtimes their resilience to noise (a preempted
worker's chunks are simply picked up by the others).
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

__all__ = ["SchedPolicy", "TaskKind", "Task", "WorkPool"]

_task_ids = itertools.count(1)


class SchedPolicy(enum.Enum):
    """Scheduling classes modelled after Linux.

    ``FIFO`` strictly preempts ``OTHER`` on the same CPU — the property
    the paper's injector relies on to replay interrupt-class noise with
    exact timing.
    """

    OTHER = "SCHED_OTHER"
    FIFO = "SCHED_FIFO"


class TaskKind(enum.Enum):
    """What a task represents; the tracer records only noise kinds."""

    WORKLOAD = "workload"
    THREAD_NOISE = "thread_noise"
    IRQ_NOISE = "irq_noise"
    SOFTIRQ_NOISE = "softirq_noise"


class Task:
    """A schedulable entity.

    Parameters
    ----------
    name:
        Human-readable identity; for noise tasks this is the *source*
        string recorded in traces (e.g. ``kworker/3:1``).
    policy, rt_priority:
        Scheduling class and (for FIFO) real-time priority, higher wins.
    weight:
        Fair-share weight among OTHER tasks on one CPU (CFS nice level
        analogue).  The improved injector raises this for thread-noise.
    affinity:
        Allowed logical CPUs, or ``None`` for "anywhere".
    pinned:
        If true the task never migrates after placement (models strict
        thread pinning; affinity alone still allows load balancing).
    work:
        Seconds of CPU time to consume, or ``None`` for a spinning /
        pool-member task that never self-completes.
    mem_demand:
        Memory bandwidth (GB/s) the task would consume at full speed;
        used by :class:`repro.sim.memory.MemorySystem`.
    """

    __slots__ = (
        "tid",
        "name",
        "policy",
        "rt_priority",
        "weight",
        "affinity",
        "pinned",
        "kind",
        "work_remaining",
        "spin",
        "mem_demand",
        "pool",
        "on_complete",
        "cpu",
        "rate",
        "cpu_share",
        "_new_share",
        "_share_epoch",
        "speed_penalty",
        "_last_update",
        "_completion_event",
        "_run_started",
        "total_cpu_time",
        "alive",
        "persistent",
    )

    def __init__(
        self,
        name: str,
        *,
        policy: SchedPolicy = SchedPolicy.OTHER,
        rt_priority: int = 0,
        weight: float = 1.0,
        affinity: Optional[frozenset[int]] = None,
        pinned: bool = False,
        kind: TaskKind = TaskKind.WORKLOAD,
        work: Optional[float] = None,
        mem_demand: float = 0.0,
        pool: Optional["WorkPool"] = None,
        on_complete: Optional[Callable[["Task"], None]] = None,
        persistent: bool = False,
    ):
        if work is not None and work < 0:
            raise ValueError(f"negative work: {work!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight!r}")
        if policy is SchedPolicy.FIFO and not 1 <= rt_priority <= 99:
            raise ValueError("FIFO tasks need rt_priority in [1, 99]")
        self.tid = next(_task_ids)
        self.name = name
        self.policy = policy
        self.rt_priority = rt_priority
        self.weight = float(weight)
        self.affinity = frozenset(affinity) if affinity is not None else None
        self.pinned = bool(pinned)
        self.kind = kind
        self.work_remaining = work
        #: spinning tasks are runnable but consume no accountable work
        self.spin = work is None and pool is None
        self.mem_demand = float(mem_demand)
        self.pool = pool
        self.on_complete = on_complete
        #: current logical CPU, or None while sleeping/unplaced
        self.cpu: Optional[int] = None
        #: current effective progress rate (set by the scheduler)
        self.rate: float = 0.0
        #: raw CPU-time share before memory throttling (scheduler-set)
        self.cpu_share: float = 0.0
        #: scratch share staged by the scheduler's rate recompute; only
        #: valid while ``_share_epoch`` matches the scheduler's epoch
        self._new_share: float = 0.0
        self._share_epoch: int = 0
        #: locality factor after a migration (cold caches / remote
        #: memory); resets when the task picks up new work
        self.speed_penalty: float = 1.0
        self._last_update: float = 0.0
        self._completion_event = None
        self._run_started: Optional[float] = None
        #: accumulated CPU time actually consumed (for tracing/accounting)
        self.total_cpu_time: float = 0.0
        self.alive = True
        #: persistent tasks (team threads) return to spinning on
        #: completion instead of leaving the CPU
        self.persistent = bool(persistent)

    # ------------------------------------------------------------------
    def is_noise(self) -> bool:
        """True if the tracer should record this task's on-CPU intervals."""
        return self.kind is not TaskKind.WORKLOAD

    def advance(self, now: float) -> None:
        """Integrate progress up to ``now`` at the current rate."""
        dt = now - self._last_update
        if dt < 0:
            return
        if dt and self.rate > 0.0:
            consumed = self.rate * dt
            self.total_cpu_time += consumed
            if self.pool is not None:
                self.pool.consume(consumed)
            elif self.work_remaining is not None:
                self.work_remaining -= consumed
                if self.work_remaining < 0.0:
                    self.work_remaining = 0.0
        self._last_update = now

    def time_to_completion(self) -> Optional[float]:
        """Seconds until this task completes at the current rate.

        ``None`` when it will never self-complete (spinning, pool member,
        zero rate).
        """
        if self.pool is not None or self.work_remaining is None:
            return None
        if self.rate <= 0.0:
            return None
        return self.work_remaining / self.rate

    def assign_work(self, work: float, mem_demand: float = 0.0) -> None:
        """Give a spinning thread a new piece of work (one region)."""
        if work < 0:
            raise ValueError(f"negative work: {work!r}")
        self.work_remaining = work
        self.mem_demand = float(mem_demand)
        self.spin = False
        self.pool = None
        # New work touches fresh data: the migration-cold state no
        # longer matters.
        self.speed_penalty = 1.0

    def join_pool(self, pool: "WorkPool", mem_demand: float = 0.0) -> None:
        """Attach this thread to a shared work pool for one region."""
        self.work_remaining = None
        self.mem_demand = float(mem_demand)
        self.spin = False
        self.pool = pool
        self.speed_penalty = 1.0
        pool.members.append(self)

    def to_spin(self) -> None:
        """Return to barrier-spin state (busy on its CPU, no work)."""
        self.work_remaining = None
        self.mem_demand = 0.0
        self.pool = None
        self.spin = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.name!r} tid={self.tid} {self.policy.value}"
            f" cpu={self.cpu} rate={self.rate:.3f}>"
        )


class WorkPool:
    """A shared pool of parallel work drained by member tasks.

    The pool completes when ``work_remaining`` reaches zero; the
    scheduler then notifies via ``on_drained``.  ``tail`` models the
    straggler effect of finite chunk granularity: after the pool drains,
    region completion still waits for the last chunk in flight, which is
    accounted for by the runtime when it sizes the pool.
    """

    __slots__ = ("name", "work_remaining", "members", "on_drained", "_completion_event")

    def __init__(self, name: str, work: float, on_drained: Optional[Callable[["WorkPool"], None]] = None):
        if work < 0:
            raise ValueError(f"negative pool work: {work!r}")
        self.name = name
        self.work_remaining = float(work)
        self.members: list[Task] = []
        self.on_drained = on_drained
        self._completion_event = None

    def consume(self, amount: float) -> None:
        """Drain ``amount`` seconds of work from the pool."""
        self.work_remaining -= amount
        if self.work_remaining < 0.0:
            self.work_remaining = 0.0

    def total_rate(self) -> float:
        """Combined progress rate of all members."""
        return sum(t.rate for t in self.members)

    def time_to_drain(self) -> Optional[float]:
        """Seconds until the pool empties at current rates, or ``None``."""
        rate = self.total_rate()
        if rate <= 0.0:
            return None
        return self.work_remaining / rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkPool {self.name!r} remaining={self.work_remaining:.6f} members={len(self.members)}>"
