"""Background OS-activity model (the "real system" being traced).

The paper's injector exists because natural OS noise is unpredictable:
a stable hum of timer ticks, softirqs and kworkers, punctuated by rare
heavy events (package indexing, journal flushes, GUI work) that create
the worst-case outliers worth replaying.  This module produces exactly
that structure:

* **micro noise** — per-CPU timer ticks and their softirq cascade.
  These are far too frequent to simulate as individual scheduler events,
  so their throughput cost is aggregated into a per-CPU *steal
  fraction* while individual trace records are synthesized (vectorised)
  for the tracer, keeping OSnoise-style traces realistic;
* **macro noise** — kworkers, daemons, device IRQs, GUI activity as
  real scheduler tasks with Poisson arrivals;
* **anomalies** — rare bursts of heavy activity (the worst-case events
  the paper hunts for over 1000 runs).

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
given environment + seed reproduces the identical noise timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.task import SchedPolicy, Task, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

__all__ = [
    "MicroNoiseSpec",
    "NoiseSourceSpec",
    "AnomalyType",
    "AnomalySpec",
    "NoiseEnvironment",
    "NoiseModel",
    "desktop_noise",
    "hpc_noise",
    "runlevel3",
]

_POLICY_FOR_KIND = {
    TaskKind.THREAD_NOISE: SchedPolicy.OTHER,
    TaskKind.IRQ_NOISE: SchedPolicy.FIFO,
    TaskKind.SOFTIRQ_NOISE: SchedPolicy.FIFO,
}

_RT_PRIO_FOR_KIND = {
    TaskKind.THREAD_NOISE: 0,
    TaskKind.IRQ_NOISE: 90,
    TaskKind.SOFTIRQ_NOISE: 50,
}


@dataclass(frozen=True)
class MicroNoiseSpec:
    """Timer-tick / softirq cascade parameters (aggregated micro noise)."""

    tick_mean: float = 4e-6          # mean local_timer handler duration (s)
    tick_sigma: float = 0.35         # lognormal sigma of tick durations
    softirq_prob: float = 0.4        # fraction of ticks followed by a softirq
    softirq_mean: float = 3e-6       # mean softirq duration (s)
    softirq_sigma: float = 0.5
    run_factor_sd: float = 0.06      # run-to-run multiplier spread
    cpu_factor_sd: float = 0.03      # per-CPU multiplier spread
    # Thermal / frequency / cache-state wander: mean fractional speed
    # loss per run and its run-to-run spread (applied as extra steal).
    speed_wander_mean: float = 0.005
    speed_wander_sd: float = 0.004

    def steal_fraction(self, tick_hz: int, factor: float = 1.0) -> float:
        """Capacity fraction consumed by ticks + softirqs."""
        per_tick = self.tick_mean + self.softirq_prob * self.softirq_mean
        return min(0.25, per_tick * tick_hz * factor)


@dataclass(frozen=True)
class NoiseSourceSpec:
    """A recurring macro noise source with Poisson arrivals.

    ``per_cpu=True`` creates one pinned stream per logical CPU (e.g.
    ``kworker/{cpu}:1``); otherwise a single unbound stream whose tasks
    the scheduler places freely (or onto reserved OS cores).
    """

    name: str
    kind: TaskKind
    rate: float                      # events/s (per CPU if per_cpu)
    duration_median: float           # seconds
    duration_sigma: float = 0.8     # lognormal sigma
    per_cpu: bool = False
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"negative rate: {self.rate!r}")
        if self.duration_median <= 0:
            raise ValueError(f"duration_median must be positive: {self.duration_median!r}")


@dataclass(frozen=True)
class AnomalyType:
    """A heavy burst of activity, the stuff of worst-case traces."""

    name: str
    total_busy: tuple[float, float]       # total CPU seconds stolen (lo, hi)
    n_segments: tuple[int, int]           # burst is split into this many events
    fifo_fraction: float = 0.15           # share of segments replayed as IRQ-class
    window_fraction: tuple[float, float] = (0.3, 0.9)  # burst span / run length


@dataclass(frozen=True)
class AnomalySpec:
    """Per-run anomaly lottery.

    ``scale_with_cores`` grows the burst's total busy time with the
    machine size (background jobs like indexing parallelise): the
    reference ``total_busy`` ranges are for an 8-CPU machine.
    """

    prob: float = 0.0
    candidates: tuple[AnomalyType, ...] = ()
    scale_with_cores: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be a probability: {self.prob!r}")
        if self.prob > 0 and not self.candidates:
            raise ValueError("anomaly prob > 0 requires candidates")


@dataclass(frozen=True)
class NoiseEnvironment:
    """Complete noise description for a platform."""

    micro: MicroNoiseSpec = field(default_factory=MicroNoiseSpec)
    sources: tuple[NoiseSourceSpec, ...] = ()
    anomalies: AnomalySpec = field(default_factory=AnomalySpec)
    gui: bool = False
    #: CPUs where unbound OS activity is confined (A64FX:reserved)
    os_affinity: tuple[int, ...] = ()

    def intensity_scaled(self, factor: float) -> "NoiseEnvironment":
        """Environment with all macro rates multiplied by ``factor``."""
        return replace(
            self,
            sources=tuple(replace(s, rate=s.rate * factor) for s in self.sources),
        )


# ----------------------------------------------------------------------
# preset environments
# ----------------------------------------------------------------------
_GUI_SOURCES = (
    NoiseSourceSpec("Xorg", TaskKind.THREAD_NOISE, rate=35.0, duration_median=60e-6, duration_sigma=0.9),
    NoiseSourceSpec("gnome-shell", TaskKind.THREAD_NOISE, rate=25.0, duration_median=90e-6, duration_sigma=1.0),
)

_DESKTOP_ANOMALIES = AnomalySpec(
    # Heavy events are *rare* (the paper needed 1000-run campaigns to
    # catch them); campaigns that hunt worst cases at scaled-down rep
    # counts pass an accelerated probability explicitly.
    prob=0.005,
    candidates=(
        # total_busy is calibrated for an 8-CPU machine (scaled up with
        # core count): heavy events occupy a large share of the machine
        # for a sizeable window, producing the paper-sized worst cases
        # (+25..100% over the mean on desktop platforms).
        AnomalyType("updatedb.mlocate", total_busy=(0.25, 0.80), n_segments=(20, 60), fifo_fraction=0.10),
        AnomalyType("snapd", total_busy=(0.15, 0.50), n_segments=(10, 40), fifo_fraction=0.20),
        AnomalyType("kswapd0", total_busy=(0.12, 0.40), n_segments=(15, 50), fifo_fraction=0.35),
        AnomalyType("systemd-journald", total_busy=(0.10, 0.30), n_segments=(8, 30), fifo_fraction=0.15),
    ),
)


def desktop_noise(gui: bool = True, anomaly_prob: Optional[float] = None) -> NoiseEnvironment:
    """Ubuntu 24.04 desktop: GUI, daemons, occasional heavy bursts."""
    sources = [
        NoiseSourceSpec("kworker/{cpu}:1", TaskKind.THREAD_NOISE, rate=4.0,
                        duration_median=40e-6, duration_sigma=1.0, per_cpu=True),
        NoiseSourceSpec("kworker/u129:5", TaskKind.THREAD_NOISE, rate=12.0,
                        duration_median=80e-6, duration_sigma=1.1),
        NoiseSourceSpec("rcu_preempt", TaskKind.THREAD_NOISE, rate=6.0,
                        duration_median=15e-6, duration_sigma=0.6),
        NoiseSourceSpec("systemd-journal", TaskKind.THREAD_NOISE, rate=2.0,
                        duration_median=120e-6, duration_sigma=1.0),
        NoiseSourceSpec("irqbalance", TaskKind.THREAD_NOISE, rate=0.5,
                        duration_median=200e-6, duration_sigma=0.8),
        NoiseSourceSpec("nvme0q1:130", TaskKind.IRQ_NOISE, rate=8.0,
                        duration_median=6e-6, duration_sigma=0.5),
        NoiseSourceSpec("enp4s0:125", TaskKind.IRQ_NOISE, rate=15.0,
                        duration_median=4e-6, duration_sigma=0.5),
    ]
    if gui:
        sources.extend(_GUI_SOURCES)
    anomalies = _DESKTOP_ANOMALIES
    if anomaly_prob is not None:
        anomalies = replace(anomalies, prob=anomaly_prob)
    return NoiseEnvironment(
        micro=MicroNoiseSpec(),
        sources=tuple(sources),
        anomalies=anomalies,
        gui=gui,
    )


def hpc_noise(reserved_cpus: tuple[int, ...] = ()) -> NoiseEnvironment:
    """Quiet HPC compute node (A64FX); optionally with OS cores."""
    sources = (
        NoiseSourceSpec("kworker/{cpu}:1", TaskKind.THREAD_NOISE, rate=1.5,
                        duration_median=30e-6, duration_sigma=0.9, per_cpu=True),
        NoiseSourceSpec("kworker/u99:2", TaskKind.THREAD_NOISE, rate=5.0,
                        duration_median=60e-6, duration_sigma=1.0),
        NoiseSourceSpec("rcu_sched", TaskKind.THREAD_NOISE, rate=4.0,
                        duration_median=12e-6, duration_sigma=0.6),
        NoiseSourceSpec("slurmd", TaskKind.THREAD_NOISE, rate=0.8,
                        duration_median=300e-6, duration_sigma=1.0),
        NoiseSourceSpec("mlx5_comp:210", TaskKind.IRQ_NOISE, rate=6.0,
                        duration_median=5e-6, duration_sigma=0.5),
    )
    anomalies = AnomalySpec(
        prob=0.008,
        candidates=(
            AnomalyType("lustre-flush", total_busy=(0.04, 0.15), n_segments=(10, 40), fifo_fraction=0.25),
            AnomalyType("munged", total_busy=(0.02, 0.08), n_segments=(6, 20), fifo_fraction=0.1),
        ),
    )
    return NoiseEnvironment(
        micro=MicroNoiseSpec(tick_mean=3e-6, softirq_prob=0.3),
        sources=sources,
        anomalies=anomalies,
        gui=False,
        os_affinity=tuple(reserved_cpus),
    )


def runlevel3(env: NoiseEnvironment) -> NoiseEnvironment:
    """The paper's runlevel-3 check: same system, GUI disabled."""
    gui_names = {s.name for s in _GUI_SOURCES}
    return replace(
        env,
        gui=False,
        sources=tuple(s for s in env.sources if s.name not in gui_names),
    )


# ----------------------------------------------------------------------
# runtime driver
# ----------------------------------------------------------------------
class NoiseModel:
    """Drives a :class:`NoiseEnvironment` on a live machine for one run."""

    def __init__(self, machine: "Machine", env: NoiseEnvironment, rng: np.random.Generator):
        self.machine = machine
        self.env = env
        self.rng = rng
        self.anomaly: Optional[AnomalyType] = None
        self._run_factor = 1.0
        self._cpu_factors: Optional[np.ndarray] = None
        self._handles: list = []
        self._started = False
        # Per-fire allocation trims: arrival streams construct one Task
        # per event, so everything reusable (formatted names, affinity
        # frozensets) is resolved once instead of per arrival.
        n_cpu = machine.topology.n_logical
        self._cpu_affinity = [frozenset((c,)) for c in range(n_cpu)]
        self._os_affinity = frozenset(env.os_affinity) if env.os_affinity else None
        self._name_cache: dict[tuple[str, Optional[int]], str] = {}
        self._log_median = {s: np.log(s.duration_median) for s in env.sources}

    # -------------------------------------------------- lifecycle
    def start(self, expected_duration: float) -> None:
        """Sample this run's noise realisation and arm the sources."""
        if self._started:
            raise RuntimeError("NoiseModel.start called twice")
        self._started = True
        n_cpu = self.machine.topology.n_logical
        micro = self.env.micro
        self._run_factor = max(0.2, 1.0 + self.rng.normal(0.0, micro.run_factor_sd))
        self._cpu_factors = np.maximum(
            0.2, 1.0 + self.rng.normal(0.0, micro.cpu_factor_sd, size=n_cpu)
        )
        wander = max(0.0, micro.speed_wander_mean + self.rng.normal(0.0, micro.speed_wander_sd))
        # One batched recompute for all CPUs: at t=0 the machine is
        # still empty (workload launch follows noise start), so the
        # per-CPU update passes would each be no-ops anyway.
        steals = {}
        for cpu in range(n_cpu):
            frac = micro.steal_fraction(
                self.machine.platform.tick_hz,
                self._run_factor * float(self._cpu_factors[cpu]),
            )
            steals[cpu] = min(0.5, frac + wander + self.machine.extra_steal(cpu))
        self.machine.scheduler.set_steal_many(steals)
        for spec in self.env.sources:
            if spec.per_cpu:
                for cpu in range(n_cpu):
                    self._arm_source(spec, cpu)
            else:
                self._arm_source(spec, None)
        if self.env.anomalies.prob > 0 and self.rng.random() < self.env.anomalies.prob:
            idx = int(self.rng.integers(len(self.env.anomalies.candidates)))
            self.anomaly = self.env.anomalies.candidates[idx]
            self._schedule_anomaly(self.anomaly, expected_duration)

    def stop(self) -> None:
        """Cancel pending arrivals (machine teardown)."""
        for h in self._handles:
            h.cancel()
        self._handles.clear()

    # -------------------------------------------------- macro sources
    def _arm_source(self, spec: NoiseSourceSpec, cpu: Optional[int]) -> None:
        if spec.rate <= 0:
            return
        delay = float(self.rng.exponential(1.0 / spec.rate))
        h = self.machine.engine.schedule_after(delay, self._fire_source, spec, cpu)
        self._handles.append(h)

    def _fire_source(self, spec: NoiseSourceSpec, cpu: Optional[int]) -> None:
        duration = float(
            self.rng.lognormal(self._log_median[spec], spec.duration_sigma)
        )
        key = (spec.name, cpu)
        name = self._name_cache.get(key)
        if name is None:
            name = spec.name.format(cpu=cpu) if cpu is not None else spec.name
            self._name_cache[key] = name
        if cpu is not None:
            affinity = self._cpu_affinity[cpu]
        else:
            affinity = self._os_affinity
        task = Task(
            name,
            policy=_POLICY_FOR_KIND[spec.kind],
            rt_priority=_RT_PRIO_FOR_KIND[spec.kind],
            weight=spec.weight,
            affinity=affinity,
            kind=spec.kind,
            work=duration,
        )
        self.machine.scheduler.submit(task, hint=cpu)
        self._arm_source(spec, cpu)

    # -------------------------------------------------- anomalies
    def _schedule_anomaly(self, anomaly: AnomalyType, expected_duration: float) -> None:
        rng = self.rng
        total = float(rng.uniform(*anomaly.total_busy))
        n_seg = int(rng.integers(anomaly.n_segments[0], anomaly.n_segments[1] + 1))
        if self.env.anomalies.scale_with_cores:
            scale = self.machine.topology.n_logical / 8.0
            total *= scale
            # More segments too, so individual bursts stay ms-scale but
            # run concurrently across the bigger machine.
            n_seg = max(n_seg, int(round(n_seg * scale)))
        wfrac = float(rng.uniform(*anomaly.window_fraction))
        window = wfrac * expected_duration
        start0 = float(rng.uniform(0.02, max(0.03, 0.95 - wfrac))) * expected_duration
        # Split the burst into segments with Dirichlet-ish proportions.
        parts = rng.exponential(1.0, size=n_seg)
        parts = parts / parts.sum() * total
        offsets = np.sort(rng.uniform(0.0, window, size=n_seg))
        for dur, off in zip(parts, offsets):
            is_fifo = rng.random() < anomaly.fifo_fraction
            kind = TaskKind.IRQ_NOISE if is_fifo else TaskKind.THREAD_NOISE
            h = self.machine.engine.schedule_after(
                start0 + float(off), self._fire_anomaly_segment, anomaly.name, kind, float(dur)
            )
            self._handles.append(h)

    def _fire_anomaly_segment(self, name: str, kind: TaskKind, duration: float) -> None:
        affinity = self._os_affinity
        task = Task(
            name,
            policy=_POLICY_FOR_KIND[kind],
            rt_priority=_RT_PRIO_FOR_KIND[kind],
            affinity=affinity,
            kind=kind,
            work=duration,
        )
        self.machine.scheduler.submit(task)

    # -------------------------------------------------- micro synthesis
    def synthesize_micro_records(self, duration: float, busy_cpus: tuple[int, ...]):
        """Vectorised tick/softirq trace records for the whole run.

        Returns four parallel numpy arrays ``(cpus, kinds, starts,
        durations)`` where ``kinds`` is 0 for irq (local_timer) and 1
        for softirq; the tracer turns these into records.  Idle CPUs
        tick at a tenth of the rate (dyntick idle).
        """
        micro = self.env.micro
        tick_hz = self.machine.platform.tick_hz
        all_cpus = range(self.machine.topology.n_logical)
        busy = set(busy_cpus)
        cpu_list, kind_list, start_list, dur_list = [], [], [], []
        assert self._cpu_factors is not None, "start() must run first"
        for cpu in all_cpus:
            hz = tick_hz if cpu in busy else max(1, tick_hz // 10)
            n = int(duration * hz)
            if n <= 0:
                continue
            period = 1.0 / hz
            starts = (np.arange(n) + self.rng.uniform(0.0, 1.0)) * period
            starts = starts[starts < duration]
            n = len(starts)
            if n == 0:
                continue
            factor = self._run_factor * float(self._cpu_factors[cpu])
            durs = self.rng.lognormal(
                np.log(micro.tick_mean * factor), micro.tick_sigma, size=n
            )
            cpu_list.append(np.full(n, cpu, dtype=np.int32))
            kind_list.append(np.zeros(n, dtype=np.int8))
            start_list.append(starts)
            dur_list.append(durs)
            mask = self.rng.random(n) < micro.softirq_prob
            m = int(mask.sum())
            if m:
                sdurs = self.rng.lognormal(
                    np.log(micro.softirq_mean * factor), micro.softirq_sigma, size=m
                )
                cpu_list.append(np.full(m, cpu, dtype=np.int32))
                kind_list.append(np.ones(m, dtype=np.int8))
                start_list.append(starts[mask] + durs[mask])
                dur_list.append(sdurs)
        if not cpu_list:
            empty = np.array([])
            return empty.astype(np.int32), empty.astype(np.int8), empty, empty
        return (
            np.concatenate(cpu_list),
            np.concatenate(kind_list),
            np.concatenate(start_list),
            np.concatenate(dur_list),
        )
