"""Simulation substrate: a discrete-event multicore machine model.

This package provides everything the paper's evaluation ran on top of:
logical CPUs with SMT, a Linux-like two-class scheduler (``SCHED_FIFO``
preempting ``SCHED_OTHER``), a shared memory-bandwidth model, stochastic
OS background noise, and an OSnoise-style tracer.

The public entry point is :class:`repro.sim.machine.Machine`, normally
constructed from a :class:`repro.sim.platform.PlatformSpec` preset.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.cpu import Topology
from repro.sim.task import Task, WorkPool, SchedPolicy
from repro.sim.scheduler import Scheduler
from repro.sim.memory import MemorySystem
from repro.sim.platform import PlatformSpec, get_platform, available_platforms
from repro.sim.noise import NoiseModel, NoiseSourceSpec
from repro.sim.tracer import OSNoiseTracer, TraceRecord
from repro.sim.machine import Machine

__all__ = [
    "Engine",
    "EventHandle",
    "Topology",
    "Task",
    "WorkPool",
    "SchedPolicy",
    "Scheduler",
    "MemorySystem",
    "PlatformSpec",
    "get_platform",
    "available_platforms",
    "NoiseModel",
    "NoiseSourceSpec",
    "OSNoiseTracer",
    "TraceRecord",
    "Machine",
]
