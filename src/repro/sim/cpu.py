"""CPU topology: logical CPUs, physical cores, SMT siblings.

Mirrors the three machines in the paper:

* Intel i7-9700KF — 8 physical cores, no SMT (8 logical CPUs);
* AMD Ryzen 9950X3D — 16 physical cores, 2-way SMT (32 logical CPUs);
* Fujitsu A64FX — 48 cores in 4 core-memory groups, optionally with two
  extra *assistant* cores firmware-reserved for the OS.

Logical CPU numbering follows Linux convention on these machines:
logical CPU ``i`` for ``i < n_physical`` is the first hardware thread of
physical core ``i``; logical CPU ``n_physical + i`` is its SMT sibling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """Immutable description of a machine's CPU layout.

    Parameters
    ----------
    n_physical:
        Number of physical cores.
    smt:
        Hardware threads per physical core (1 or 2).
    reserved_cpus:
        Logical CPUs firmware-reserved for the OS (hidden from user
        workloads, used by system noise) — models A64FX:reserved.
    numa_nodes:
        Number of NUMA domains; physical cores are split contiguously.
    """

    n_physical: int
    smt: int = 1
    reserved_cpus: frozenset[int] = field(default_factory=frozenset)
    numa_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_physical <= 0:
            raise ValueError("n_physical must be positive")
        if self.smt not in (1, 2):
            raise ValueError("smt must be 1 or 2")
        if self.numa_nodes <= 0 or self.n_physical % self.numa_nodes:
            raise ValueError("numa_nodes must evenly divide n_physical")
        bad = [c for c in self.reserved_cpus if not 0 <= c < self.n_logical]
        if bad:
            raise ValueError(f"reserved cpus out of range: {bad}")

    # ------------------------------------------------------------------
    @property
    def n_logical(self) -> int:
        """Total number of logical CPUs."""
        return self.n_physical * self.smt

    def all_cpus(self) -> tuple[int, ...]:
        """All logical CPU ids, including reserved ones."""
        return tuple(range(self.n_logical))

    def user_cpus(self) -> tuple[int, ...]:
        """Logical CPUs visible to user workloads (reserved excluded)."""
        return tuple(c for c in range(self.n_logical) if c not in self.reserved_cpus)

    def physical_core(self, cpu: int) -> int:
        """Physical core id hosting logical CPU ``cpu``."""
        self._check(cpu)
        return cpu % self.n_physical

    def sibling(self, cpu: int) -> Optional[int]:
        """The SMT sibling of ``cpu``, or ``None`` when SMT is off."""
        self._check(cpu)
        if self.smt == 1:
            return None
        return cpu + self.n_physical if cpu < self.n_physical else cpu - self.n_physical

    def primary_cpus(self) -> tuple[int, ...]:
        """One logical CPU per physical core (the first hardware thread)."""
        return tuple(range(self.n_physical))

    def numa_node(self, cpu: int) -> int:
        """NUMA node of logical CPU ``cpu``."""
        per_node = self.n_physical // self.numa_nodes
        return self.physical_core(cpu) // per_node

    def cpus_of_node(self, node: int) -> tuple[int, ...]:
        """All logical CPUs in NUMA node ``node``."""
        if not 0 <= node < self.numa_nodes:
            raise ValueError(f"numa node out of range: {node}")
        per_node = self.n_physical // self.numa_nodes
        cores = range(node * per_node, (node + 1) * per_node)
        cpus = list(cores)
        if self.smt == 2:
            cpus += [c + self.n_physical for c in cores]
        return tuple(cpus)

    def _check(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_logical:
            raise ValueError(f"logical cpu out of range: {cpu}")
