"""Discrete-event simulation engine with a virtual clock.

The engine is deliberately minimal: a binary heap of timestamped
callbacks with stable FIFO ordering for ties and O(1) lazy
cancellation.  All higher-level semantics (CPU rates, scheduling,
noise) live in other modules and interact with the engine only through
:meth:`Engine.schedule` / :meth:`Engine.cancel`.

Determinism contract
--------------------
Two runs that schedule the same callbacks at the same times in the same
order execute identically: ties are broken by a monotonically increasing
sequence number, never by object identity or hash order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Cancellation is *lazy*: the heap entry stays in place and is skipped
    when popped.  This keeps cancellation O(1), which matters because
    the scheduler reschedules task-completion events on every rate
    change.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when due."""
        self.cancelled = True
        # Drop references eagerly so cancelled handles do not keep big
        # object graphs (tasks, pools) alive inside the heap.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Virtual-time event loop.

    Parameters
    ----------
    time_epsilon:
        Events scheduled within ``time_epsilon`` seconds in the past are
        clamped to *now* rather than rejected; this absorbs floating
        point round-off from rate integration.
    """

    def __init__(self, time_epsilon: float = 1e-12):
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._time_epsilon = float(time_epsilon)
        #: number of callbacks actually executed (cancelled ones excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a handle that may be cancelled until the callback runs.
        """
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            if self.now - time > self._time_epsilon + 1e-9 * abs(self.now):
                raise SimulationError(
                    f"cannot schedule event at t={time!r} before now={self.now!r}"
                )
            time = self.now
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule(self.now + delay, fn, *args)

    @staticmethod
    def cancel(handle: Optional[EventHandle]) -> None:
        """Cancel a pending event; ``None`` and already-run handles are no-ops."""
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current callback."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would be strictly later
            than ``until`` and advance the clock to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded (runaway event loops are bugs, not workloads).

        Returns the virtual time at exit.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            heap = self._heap
            while heap and not self._stopped:
                handle = heap[0]
                if handle.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and handle.time > until:
                    break
                heapq.heappop(heap)
                if handle.time > self.now:
                    self.now = handle.time
                fn, args = handle.fn, handle.args
                # Free the handle's references before invoking, so a
                # callback rescheduling itself does not chain handles.
                handle.fn = None  # type: ignore[assignment]
                handle.args = ()
                fn(*args)
                executed += 1
                self.events_executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and self.now < until and not self._stopped:
                self.now = until
            return self.now
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for h in self._heap if not h.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if queue is empty."""
        for h in self._heap:
            if not h.cancelled:
                break
        else:
            return None
        # The heap head may be cancelled; scan lazily without mutating.
        live = [h for h in self._heap if not h.cancelled]
        return min(live).time if live else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.9f} pending={len(self._heap)}>"
