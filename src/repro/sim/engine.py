"""Discrete-event simulation engine with a virtual clock.

The engine is deliberately minimal: a binary heap of timestamped
callbacks with stable FIFO ordering for ties and O(1) lazy
cancellation.  All higher-level semantics (CPU rates, scheduling,
noise) live in other modules and interact with the engine only through
:meth:`Engine.schedule` / :meth:`Engine.cancel`.

Determinism contract
--------------------
Two runs that schedule the same callbacks at the same times in the same
order execute identically: ties are broken by a monotonically increasing
sequence number, never by object identity or hash order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Cancellation is *lazy*: the heap entry stays in place and is skipped
    when popped.  This keeps cancellation O(1), which matters because
    the scheduler reschedules task-completion events on every rate
    change.  The owning engine is notified so it can keep an exact
    count of dead entries (O(1) ``pending_count`` and bounded heap
    growth) without scanning.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when due."""
        if self.cancelled:
            return
        self.cancelled = True
        # The engine nulls our back-reference once we leave the heap,
        # so a late cancel (after the callback ran) cannot skew the
        # dead-entry count.
        if self._engine is not None:
            self._engine._n_cancelled += 1
            self._engine = None
        # Drop references eagerly so cancelled handles do not keep big
        # object graphs (tasks, pools) alive inside the heap.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Virtual-time event loop.

    Parameters
    ----------
    time_epsilon:
        Events scheduled within ``time_epsilon`` seconds in the past are
        clamped to *now* rather than rejected; this absorbs floating
        point round-off from rate integration.
    """

    def __init__(self, time_epsilon: float = 1e-12):
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._time_epsilon = float(time_epsilon)
        #: dead (cancelled but not yet popped) entries in the heap
        self._n_cancelled = 0
        #: number of callbacks actually executed (cancelled ones excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a handle that may be cancelled until the callback runs.
        """
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        if time < self.now:
            if self.now - time > self._time_epsilon + 1e-9 * abs(self.now):
                raise SimulationError(
                    f"cannot schedule event at t={time!r} before now={self.now!r}"
                )
            time = self.now
        handle = EventHandle(time, next(self._seq), fn, args, engine=self)
        heapq.heappush(self._heap, handle)
        # Heavy cancellation (rate-change rescheduling) would otherwise
        # grow the heap without bound: once dead entries dominate,
        # compact in place.  In place, because the run loop holds a
        # reference to this exact list.
        if self._n_cancelled > 64 and self._n_cancelled * 2 > len(self._heap):
            self._heap[:] = [h for h in self._heap if not h.cancelled]
            heapq.heapify(self._heap)
            self._n_cancelled = 0
        return handle

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule(self.now + delay, fn, *args)

    @staticmethod
    def cancel(handle: Optional[EventHandle]) -> None:
        """Cancel a pending event; ``None`` and already-run handles are no-ops."""
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current callback."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would be strictly later
            than ``until`` and advance the clock to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded (runaway event loops are bugs, not workloads).

        Returns the virtual time at exit.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            heap = self._heap
            while heap and not self._stopped:
                handle = heap[0]
                if handle.cancelled:
                    heapq.heappop(heap)
                    self._n_cancelled -= 1
                    continue
                if until is not None and handle.time > until:
                    break
                heapq.heappop(heap)
                if handle.time > self.now:
                    self.now = handle.time
                fn, args = handle.fn, handle.args
                # Free the handle's references before invoking, so a
                # callback rescheduling itself does not chain handles;
                # detach the engine so a late cancel is a pure no-op.
                handle.fn = None  # type: ignore[assignment]
                handle.args = ()
                handle._engine = None
                fn(*args)
                executed += 1
                self.events_executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and self.now < until and not self._stopped:
                self.now = until
            return self.now
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        the engine tracks dead heap entries exactly."""
        return len(self._heap) - self._n_cancelled

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if queue is empty.

        Single lazy pass: cancelled heads are popped (and never
        revisited) until a live event surfaces — the same discipline
        the run loop uses, so repeated introspection cannot re-scan or
        retain dead entries.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._n_cancelled -= 1
        return heap[0].time if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.9f} pending={len(self._heap)}>"
