"""Discrete-event simulation engine with a virtual clock.

The engine is deliberately minimal: a binary heap of timestamped
callbacks with stable FIFO ordering for ties and O(1) lazy
cancellation.  All higher-level semantics (CPU rates, scheduling,
noise) live in other modules and interact with the engine only through
:meth:`Engine.schedule` / :meth:`Engine.cancel`.

Determinism contract
--------------------
Two runs that schedule the same callbacks at the same times in the same
order execute identically: ties are broken by a monotonically increasing
sequence number, never by object identity or hash order.

Performance notes
-----------------
Heap entries are ``(time, seq, handle)`` tuples, so every sift
comparison is a C-level tuple compare (``seq`` is unique — the handle
itself is never compared).  The scheduler cancels and reschedules
completion events on every rate change, which at paper scale means
millions of comparisons per run; keeping them out of Python-level
``__lt__`` is one of the largest single wins on the simulator hot path.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Cancellation is *lazy*: the heap entry stays in place and is skipped
    when popped.  This keeps cancellation O(1), which matters because
    the scheduler reschedules task-completion events on every rate
    change.  The owning engine is notified so it can keep an exact
    count of dead entries (O(1) ``pending_count`` and bounded heap
    growth) without scanning.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when due."""
        if self.cancelled:
            return
        self.cancelled = True
        # The engine nulls our back-reference once we leave the heap,
        # so a late cancel (after the callback ran) cannot skew the
        # dead-entry count.
        if self._engine is not None:
            self._engine._n_cancelled += 1
            self._engine = None
        # Drop references eagerly so cancelled handles do not keep big
        # object graphs (tasks, pools) alive inside the heap.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        # Heap entries are tuples, so this is only reached by explicit
        # handle comparisons (tests, debugging) — never on the hot path.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Virtual-time event loop.

    Parameters
    ----------
    time_epsilon:
        Events scheduled within ``time_epsilon`` seconds in the past are
        clamped to *now* rather than rejected; this absorbs floating
        point round-off from rate integration.
    """

    def __init__(self, time_epsilon: float = 1e-12):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._time_epsilon = float(time_epsilon)
        #: dead (cancelled but not yet popped) entries in the heap
        self._n_cancelled = 0
        #: heap size below which compaction is suppressed; doubled after
        #: every compaction so repeated reschedule bursts hovering near
        #: the dead-entry threshold cannot thrash O(n) rebuilds
        self._compact_floor = 128
        #: number of in-place heap compactions performed (observability
        #: for the thrash regression test and perf triage)
        self.compactions: int = 0
        #: number of callbacks actually executed (cancelled ones excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a handle that may be cancelled until the callback runs.
        """
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time!r}")
        now = self.now
        if time < now:
            if now - time > self._time_epsilon + 1e-9 * abs(now):
                raise SimulationError(
                    f"cannot schedule event at t={time!r} before now={self.now!r}"
                )
            time = now
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, engine=self)
        heappush(self._heap, (time, seq, handle))
        # Heavy cancellation (rate-change rescheduling) would otherwise
        # grow the heap without bound: once dead entries dominate,
        # compact in place.  In place, because the run loop holds a
        # reference to this exact list.  The floor provides hysteresis:
        # after a rebuild the heap must double before the next one, so
        # churn sitting just past the dead-entry threshold stays
        # amortized O(1) per schedule instead of O(n).
        if self._n_cancelled > 64 and self._n_cancelled * 2 > len(self._heap) >= self._compact_floor:
            self._heap[:] = [e for e in self._heap if not e[2].cancelled]
            heapq.heapify(self._heap)
            self._n_cancelled = 0
            self.compactions += 1
            self._compact_floor = 2 * len(self._heap) + 128
        return handle

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule(self.now + delay, fn, *args)

    @staticmethod
    def cancel(handle: Optional[EventHandle]) -> None:
        """Cancel a pending event; ``None`` and already-run handles are no-ops."""
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current callback."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would be strictly later
            than ``until`` and advance the clock to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded (runaway event loops are bugs, not workloads).

        Returns the virtual time at exit.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            heap = self._heap
            while heap and not self._stopped:
                t, _, handle = heap[0]
                if handle.cancelled:
                    heappop(heap)
                    self._n_cancelled -= 1
                    continue
                if until is not None and t > until:
                    break
                heappop(heap)
                if t > self.now:
                    self.now = t
                fn, args = handle.fn, handle.args
                # Free the handle's references before invoking, so a
                # callback rescheduling itself does not chain handles;
                # detach the engine so a late cancel is a pure no-op.
                handle.fn = None  # type: ignore[assignment]
                handle.args = ()
                handle._engine = None
                fn(*args)
                executed += 1
                if max_events is not None and executed > max_events:
                    self.events_executed += executed
                    executed = 0
                    raise SimulationError(f"exceeded max_events={max_events}")
                # Drain the rest of this timestamp group without
                # re-checking `until` or advancing the clock — the
                # scheduler's deferred rescales and barrier releases
                # cluster many events on one instant.  Pop order is
                # still (time, seq), so semantics are unchanged.
                while heap and heap[0][0] == t and not self._stopped:
                    _, _, handle = heappop(heap)
                    if handle.cancelled:
                        self._n_cancelled -= 1
                        continue
                    fn, args = handle.fn, handle.args
                    handle.fn = None  # type: ignore[assignment]
                    handle.args = ()
                    handle._engine = None
                    fn(*args)
                    executed += 1
                    if max_events is not None and executed > max_events:
                        self.events_executed += executed
                        executed = 0
                        raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and self.now < until and not self._stopped:
                self.now = until
            return self.now
        finally:
            self.events_executed += executed
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        the engine tracks dead heap entries exactly."""
        return len(self._heap) - self._n_cancelled

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if queue is empty.

        Single lazy pass: cancelled heads are popped (and never
        revisited) until a live event surfaces — the same discipline
        the run loop uses, so repeated introspection cannot re-scan or
        retain dead entries.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.9f} pending={len(self._heap)}>"
