"""OSnoise-style tracer.

Records every interval of non-workload CPU occupancy, labelled with the
source task, exactly like the kernel's ``osnoise`` tracer (paper Fig. 3
and §4.1).  Two feeds:

* **macro events** arrive one at a time from the scheduler's
  ``on_noise_interval`` hook (kworkers, daemons, device IRQs, injected
  noise — the tracer cannot tell injected noise apart, which is what
  lets the pipeline validate its own replay);
* **micro events** (timer ticks and their softirqs) are synthesized in
  bulk by the noise model at run end, consistent with the steal
  fraction that was actually applied during simulation.

Tracing overhead: each recorded event costs ``per_event_overhead``
seconds of CPU.  Because micro events dominate event counts, the
overhead is applied as an additional per-CPU steal fraction — this is
what Table 1 measures (and finds to be <1%).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.core.events import EventType
from repro.core.trace import Trace
from repro.sim.noise import MicroNoiseSpec, NoiseModel
from repro.sim.task import Task, TaskKind

__all__ = ["OSNoiseTracer", "TraceRecord"]

_KIND_TO_ETYPE = {
    TaskKind.IRQ_NOISE: EventType.IRQ,
    TaskKind.SOFTIRQ_NOISE: EventType.SOFTIRQ,
    TaskKind.THREAD_NOISE: EventType.THREAD,
}

_SOFTIRQ_SOURCES = ("RCU:9", "SCHED:7", "TIMER:1", "NET_RX:3")
_SOFTIRQ_PROBS = (0.35, 0.35, 0.2, 0.1)
_TIMER_SOURCE = "local_timer:236"


class TraceRecord(NamedTuple):
    """One macro noise interval as captured live."""

    cpu: int
    etype: EventType
    source: str
    start: float
    duration: float


class OSNoiseTracer:
    """Per-run noise recorder with an overhead model.

    Parameters
    ----------
    enabled:
        When false the tracer records nothing and costs nothing
        (Table 1's "Tracing Off" arm).
    per_event_overhead:
        CPU seconds consumed per recorded event — ring-buffer write plus
        the osnoise context-switch accounting hooks; the default lands
        in the paper's sub-1% Table-1 range for compute-bound work.
    """

    def __init__(self, enabled: bool = True, per_event_overhead: float = 12e-6):
        if per_event_overhead < 0:
            raise ValueError("per_event_overhead must be non-negative")
        self.enabled = enabled
        self.per_event_overhead = per_event_overhead
        self._records: list[TraceRecord] = []

    # ------------------------------------------------------------------
    def on_noise_interval(self, task: Task, cpu: int, start: float, cpu_time: float) -> None:
        """Scheduler hook: a noise task left CPU ``cpu``."""
        if not self.enabled:
            return
        etype = _KIND_TO_ETYPE.get(task.kind)
        if etype is None:
            return
        self._records.append(TraceRecord(cpu, etype, task.name, start, cpu_time))

    def overhead_steal(self, tick_hz: int, micro: MicroNoiseSpec) -> float:
        """Extra per-CPU steal fraction caused by tracing.

        Estimated from the dominant record rate: one tick record plus a
        probabilistic softirq record per tick.
        """
        if not self.enabled:
            return 0.0
        events_per_sec = tick_hz * (1.0 + micro.softirq_prob)
        return events_per_sec * self.per_event_overhead

    @property
    def macro_record_count(self) -> int:
        """Number of macro events captured so far."""
        return len(self._records)

    # ------------------------------------------------------------------
    def finalize(
        self,
        duration: float,
        busy_cpus: tuple[int, ...],
        noise_model: Optional[NoiseModel],
        rng: np.random.Generator,
        meta: Optional[dict] = None,
    ) -> Optional[Trace]:
        """Assemble the run's :class:`~repro.core.trace.Trace`.

        Combines live macro records with synthesized micro records.
        Returns ``None`` when tracing was disabled.
        """
        if not self.enabled:
            return None
        intern: dict[str, int] = {}
        sources: list[str] = []

        def sid(name: str) -> int:
            i = intern.get(name)
            if i is None:
                i = intern[name] = len(sources)
                sources.append(name)
            return i

        cpus = [r.cpu for r in self._records]
        etypes = [int(r.etype) for r in self._records]
        sids = [sid(r.source) for r in self._records]
        starts = [r.start for r in self._records]
        durs = [r.duration for r in self._records]

        if noise_model is not None:
            m_cpus, m_kinds, m_starts, m_durs = noise_model.synthesize_micro_records(
                duration, busy_cpus
            )
            if len(m_cpus):
                timer_id = sid(_TIMER_SOURCE)
                softirq_ids = np.array([sid(s) for s in _SOFTIRQ_SOURCES], dtype=np.int32)
                pick = rng.choice(len(_SOFTIRQ_SOURCES), size=len(m_cpus), p=_SOFTIRQ_PROBS)
                m_sids = np.where(m_kinds == 0, timer_id, softirq_ids[pick])
                m_etypes = np.where(
                    m_kinds == 0, int(EventType.IRQ), int(EventType.SOFTIRQ)
                ).astype(np.int8)
                cpus = np.concatenate([np.asarray(cpus, dtype=np.int32), m_cpus])
                etypes = np.concatenate([np.asarray(etypes, dtype=np.int8), m_etypes])
                sids = np.concatenate([np.asarray(sids, dtype=np.int32), m_sids.astype(np.int32)])
                starts = np.concatenate([np.asarray(starts, dtype=np.float64), m_starts])
                durs = np.concatenate([np.asarray(durs, dtype=np.float64), m_durs])

        return Trace(
            np.asarray(cpus, dtype=np.int32),
            np.asarray(etypes, dtype=np.int8),
            np.asarray(sids, dtype=np.int32),
            np.asarray(starts, dtype=np.float64),
            np.asarray(durs, dtype=np.float64),
            sources,
            exec_time=duration,
            meta=meta,
        )
