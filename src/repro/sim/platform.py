"""Platform presets mirroring the paper's three machines.

Numbers are order-of-magnitude calibrations, not datasheet claims: the
reproduction targets the *shape* of the paper's results (which strategy
wins, by roughly what factor), so what matters is the ratio between
compute throughput and memory bandwidth, the SMT arrangement, and the
noise environment (desktop Ubuntu with a GUI vs. a quiet HPC node).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.cpu import Topology
from repro.sim.noise import NoiseEnvironment, desktop_noise, hpc_noise

__all__ = ["PlatformSpec", "get_platform", "available_platforms"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of a machine.

    Parameters
    ----------
    core_gflops:
        Per-core compute throughput; workload models divide their flop
        counts by this to obtain seconds of work.
    bandwidth_gbs:
        Sustained DRAM bandwidth for the whole socket.
    tick_hz:
        Kernel timer frequency (Ubuntu ships CONFIG_HZ=250).
    smt_factor:
        Per-sibling speed when both hardware threads of a core are busy.
    """

    name: str
    topology: Topology
    core_gflops: float
    bandwidth_gbs: float
    #: streaming bandwidth a single core can sustain (GB/s); per-thread
    #: memory demand of streaming kernels
    core_stream_gbs: float = 12.0
    tick_hz: int = 250
    smt_factor: float = 0.65
    noise: NoiseEnvironment = field(default_factory=desktop_noise)

    def user_cpus(self) -> tuple[int, ...]:
        """Logical CPUs available to user workloads."""
        return self.topology.user_cpus()

    def with_noise(self, noise: NoiseEnvironment) -> "PlatformSpec":
        """Copy of this platform with a different noise environment."""
        return replace(self, noise=noise)


def _intel_9700kf() -> PlatformSpec:
    # 8 cores, no SMT, fixed 4.7 GHz in the paper's setup.
    return PlatformSpec(
        name="intel-9700kf",
        topology=Topology(n_physical=8, smt=1),
        core_gflops=36.0,
        bandwidth_gbs=38.0,
        noise=desktop_noise(),
    )


def _amd_9950x3d() -> PlatformSpec:
    # 16 cores / 32 threads; boost behaviour left un-modelled (the paper
    # did not fix AMD clocks, one source of its platform differences).
    return PlatformSpec(
        name="amd-9950x3d",
        topology=Topology(n_physical=16, smt=2),
        core_gflops=26.0,
        bandwidth_gbs=78.0,
        noise=desktop_noise(),
    )


def _a64fx(reserved: bool) -> PlatformSpec:
    # 48 compute cores in 4 CMGs with HBM2.  The ':reserved' variant
    # models the BSC CTE-ARM firmware configuration: two assistant
    # cores (here: the two highest CPU ids of a 50-core part) hidden
    # from users and hosting OS activity.
    if reserved:
        topo = Topology(n_physical=50, smt=1, reserved_cpus=frozenset({48, 49}), numa_nodes=5)
        noise = hpc_noise(reserved_cpus=(48, 49))
        name = "a64fx-reserved"
    else:
        topo = Topology(n_physical=48, smt=1, numa_nodes=4)
        noise = hpc_noise(reserved_cpus=())
        name = "a64fx"
    return PlatformSpec(
        name=name,
        topology=topo,
        core_gflops=9.0,
        bandwidth_gbs=830.0,
        core_stream_gbs=35.0,
        tick_hz=100,
        noise=noise,
    )


def _hpc_2s64() -> PlatformSpec:
    # A generic dual-socket HPC node (2 x 32 cores, 2 NUMA domains):
    # not one of the paper's machines, but the class of system its
    # §5.1/§6 discussion extrapolates to — used by the NUMA extension
    # study to show thread pinning winning at scale.
    return PlatformSpec(
        name="hpc-2s64",
        topology=Topology(n_physical=64, smt=1, numa_nodes=2),
        core_gflops=20.0,
        bandwidth_gbs=350.0,
        core_stream_gbs=14.0,
        tick_hz=250,
        noise=hpc_noise(),
    )


_REGISTRY = {
    "intel-9700kf": _intel_9700kf,
    "amd-9950x3d": _amd_9950x3d,
    "a64fx": lambda: _a64fx(reserved=False),
    "a64fx-reserved": lambda: _a64fx(reserved=True),
    "hpc-2s64": _hpc_2s64,
}


def available_platforms() -> tuple[str, ...]:
    """Names accepted by :func:`get_platform`."""
    return tuple(sorted(_REGISTRY))


def get_platform(name: str, noise: Optional[NoiseEnvironment] = None) -> PlatformSpec:
    """Look up a platform preset by name.

    Parameters
    ----------
    noise:
        Optional replacement noise environment (e.g. a runlevel-3
        desktop without GUI noise).
    """
    try:
        spec = _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(available_platforms())}"
        ) from None
    if noise is not None:
        spec = spec.with_noise(noise)
    return spec
