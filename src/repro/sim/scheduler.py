"""Linux-like two-class CPU scheduler over the event engine.

Semantics modelled (each is load-bearing for the paper's findings):

* ``SCHED_FIFO`` strictly preempts ``SCHED_OTHER`` on the same CPU;
  among FIFO tasks the highest ``rt_priority`` runs.  This is how the
  injector guarantees exact replay timing of interrupt-class noise.
* ``SCHED_OTHER`` tasks on one CPU share it proportionally to their
  weights (a piecewise-constant-rate approximation of CFS).
* RT throttling: with the fail-safe enabled (Linux default), the FIFO
  class is capped at ``rt_throttle_share`` (95%) of a CPU and OTHER
  tasks retain the rest; the injector disables this to occupy 100%.
* Wake placement prefers an *idle* allowed CPU.  Injected noise has no
  affinity, so with housekeeping cores left free the noise lands there
  instead of preempting the workload — the mechanism behind the paper's
  HK/HK2 results.
* Non-pinned OTHER tasks starved by FIFO noise migrate away after a
  starvation delay plus a migration cost; pinned tasks must wait.  This
  is the Rm-vs-TP distinction under injection.
* SMT siblings share a physical core: when both are busy each runs at
  ``smt_factor`` speed.
* A per-CPU *steal fraction* models aggregated micro-noise (timer
  ticks, softirqs) without per-tick events.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.cpu import Topology
from repro.sim.engine import Engine
from repro.sim.memory import MemorySystem
from repro.sim.task import SchedPolicy, Task, WorkPool

__all__ = ["Scheduler", "SchedParams"]

_DONE_EPS = 1e-12


def _by_tid(t: "Task") -> int:
    return t.tid


class SchedParams:
    """Tunable scheduler constants (all in seconds unless noted)."""

    __slots__ = (
        "smt_factor",
        "migration_cost",
        "starvation_delay",
        "min_migration_interval",
        "rt_throttle_share",
        "context_switch_cost",
        "mem_rescale_tolerance",
        "mem_rescale_delay",
        "shared_migration_delay",
        "numa_migration_cost",
        "post_migration_speed",
        "numa_remote_speed",
    )

    def __init__(
        self,
        smt_factor: float = 0.65,
        migration_cost: float = 25e-6,
        numa_migration_cost: float = 300e-6,
        post_migration_speed: float = 0.97,
        numa_remote_speed: float = 0.62,
        starvation_delay: float = 200e-6,
        shared_migration_delay: float = 8e-3,
        min_migration_interval: float = 1e-3,
        rt_throttle_share: float = 0.95,
        context_switch_cost: float = 2e-6,
        mem_rescale_tolerance: float = 0.01,
        mem_rescale_delay: float = 20e-6,
    ):
        if not 0.5 <= smt_factor <= 1.0:
            raise ValueError("smt_factor must be in [0.5, 1.0]")
        if not 0.0 < rt_throttle_share <= 1.0:
            raise ValueError("rt_throttle_share must be in (0, 1]")
        self.smt_factor = smt_factor
        self.migration_cost = migration_cost
        # Crossing a NUMA boundary costs an order of magnitude more
        # (cache refill from remote memory, page locality loss) — the
        # effect the paper credits for thread pinning's advantage on
        # large multi-socket systems (§5.1, §6).
        self.numa_migration_cost = numa_migration_cost
        # Post-migration speed factors (until the task's current work
        # completes): a same-node hop costs a cache refill; a cross-node
        # hop leaves the working set in remote memory.
        self.post_migration_speed = post_migration_speed
        self.numa_remote_speed = numa_remote_speed
        self.starvation_delay = starvation_delay
        # An idle CPU is found within starvation_delay (wake/newidle
        # balancing); migrating onto a *busy* CPU only happens on the
        # slow periodic balance path.
        self.shared_migration_delay = shared_migration_delay
        self.min_migration_interval = min_migration_interval
        self.rt_throttle_share = rt_throttle_share
        self.context_switch_cost = context_switch_cost
        self.mem_rescale_tolerance = mem_rescale_tolerance
        self.mem_rescale_delay = mem_rescale_delay


class _CpuState:
    __slots__ = ("fifo", "other", "steal")

    def __init__(self) -> None:
        self.fifo: list[Task] = []   # sorted: highest rt_priority first, FIFO arrival within
        self.other: list[Task] = []  # arrival order; shares by weight
        self.steal: float = 0.0      # fraction of capacity lost to micro-noise

    def busy(self) -> bool:
        return bool(self.fifo or self.other)

    def tasks(self) -> list[Task]:
        return self.fifo + self.other


class Scheduler:
    """Places tasks on logical CPUs and integrates their progress."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        memory: Optional[MemorySystem] = None,
        params: Optional[SchedParams] = None,
        rt_throttle: bool = True,
        on_noise_interval: Optional[Callable[[Task, int, float, float], None]] = None,
    ):
        self.engine = engine
        self.topology = topology
        self.memory = memory if memory is not None else MemorySystem(bandwidth=float("inf"))
        self.params = params if params is not None else SchedParams()
        self.rt_throttle = rt_throttle
        #: callback(task, cpu, start, cpu_time) fired when a noise task leaves
        self.on_noise_interval = on_noise_interval
        n = topology.n_logical
        self._cpus = [_CpuState() for _ in range(n)]
        # Topology lookups are pure functions of the CPU id; resolving
        # them once keeps range checks out of every rate recompute.
        self._sibling: tuple[Optional[int], ...] = tuple(topology.sibling(c) for c in range(n))
        self._numa: tuple[int, ...] = tuple(topology.numa_node(c) for c in range(n))
        self._all_cpu_list = list(range(n))
        #: monotonically increasing rate-recompute generation; a task's
        #: ``_share_epoch`` marks whether its ``_new_share`` slot was
        #: written by the current `_update` (replacing a per-call dict)
        self._epoch = 0
        self._mem_running: dict[int, Task] = {}  # tid -> task with demand & share > 0
        self._mem_scale = 1.0
        self._mem_rescale_pending = False
        self._starvation_pending: set[int] = set()
        self._starved_since: dict[int, float] = {}
        self._last_migration: dict[int, float] = {}
        self._migration_origin: dict[int, int] = {}
        # Wake-placement LRU stamps: ties between equally-loaded CPUs go
        # to the least-recently-chosen one, spreading background noise
        # across the machine the way the kernel's wake balancing does.
        self._placed_stamp = [0] * topology.n_logical
        self._placed_seq = 0
        self._last_busy = [False] * topology.n_logical
        self.migrations = 0
        self.preemptions = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, task: Task, cpu: Optional[int] = None, hint: Optional[int] = None) -> int:
        """Make ``task`` runnable; returns the chosen logical CPU."""
        if task.cpu is not None:
            raise ValueError(f"task already placed: {task!r}")
        if not task.alive:
            raise ValueError(f"task is dead: {task!r}")
        if cpu is None:
            cpu = self._pick_cpu(task, hint)
        elif task.affinity is not None and cpu not in task.affinity:
            raise ValueError(f"cpu {cpu} not in affinity of {task!r}")
        state = self._cpus[cpu]
        task.cpu = cpu
        task._last_update = self.engine.now
        if task.policy is SchedPolicy.FIFO:
            self._insert_fifo(state.fifo, task)
            if state.other:
                self.preemptions += 1
        else:
            state.other.append(task)
        self._update({cpu})
        return cpu

    def remove(self, task: Task) -> None:
        """Take a runnable task off its CPU (sleep or exit)."""
        cpu = task.cpu
        if cpu is None:
            return
        task.advance(self.engine.now)
        self._emit_noise_interval(task)
        state = self._cpus[cpu]
        if task.policy is SchedPolicy.FIFO:
            state.fifo.remove(task)
        else:
            state.other.remove(task)
        task.cpu = None
        task.rate = 0.0
        # Off-CPU tasks stop pulling bandwidth; dropping them here (the
        # only sleep/exit path) keeps the rescale loop free of dead
        # entries without a straggler scan per update.
        self._mem_running.pop(task.tid, None)
        self._cancel_completion(task)
        self._update({cpu})

    def refresh(self, task: Task) -> None:
        """Re-evaluate a task after its work / memory demand changed."""
        if task.cpu is None:
            raise ValueError(f"task not placed: {task!r}")
        self._update({task.cpu})

    def assign_work(self, task: Task, work: float, mem_demand: float = 0.0) -> None:
        """Give a team thread new work, settling its clock first.

        Must be used instead of :meth:`Task.assign_work` for placed
        tasks: the task may have been spinning since its last
        integration, and advancing it after the new work is attached
        would wrongly consume the spin gap.  Follow with
        :meth:`refresh` / :meth:`refresh_many`.
        """
        task.advance(self.engine.now)
        task.assign_work(work, mem_demand)

    def join_pool(self, task: Task, pool: WorkPool, mem_demand: float = 0.0) -> None:
        """Pool-membership analogue of :meth:`assign_work`."""
        task.advance(self.engine.now)
        self._cancel_completion(task)
        task.join_pool(pool, mem_demand)

    def refresh_many(self, tasks: list[Task]) -> None:
        """Batch form of :meth:`refresh` — one rate recomputation for a
        whole team (used at parallel-region start)."""
        cpus = {t.cpu for t in tasks if t.cpu is not None}
        if cpus:
            self._update(cpus)

    def detach_pool(self, pool: WorkPool) -> None:
        """Drop all members from a drained pool back to spinning."""
        if pool._completion_event is not None:
            pool._completion_event.cancel()
            pool._completion_event = None
        members = list(pool.members)
        pool.members.clear()
        cpus = set()
        for t in members:
            t.to_spin()
            if t.cpu is not None:
                cpus.add(t.cpu)
        if cpus:
            self._update(cpus)

    def set_steal(self, cpu: int, fraction: float) -> None:
        """Set the micro-noise steal fraction of a CPU (0 ≤ f < 1)."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"steal fraction out of range: {fraction!r}")
        self._cpus[cpu].steal = fraction
        self._update({cpu})

    def set_steal_many(self, fractions: dict[int, float]) -> None:
        """Set steal fractions for several CPUs in one rate recompute.

        Equivalent to calling :meth:`set_steal` per CPU when the
        machine is still empty (each CPU's share depends only on its
        own steal), which is how the noise model initialises all CPUs
        at t=0 without n full update passes.
        """
        for cpu, fraction in fractions.items():
            if not 0.0 <= fraction < 1.0:
                raise ValueError(f"steal fraction out of range: {fraction!r}")
        for cpu, fraction in fractions.items():
            self._cpus[cpu].steal = fraction
        if fractions:
            self._update(set(fractions))

    def idle_cpus(self) -> list[int]:
        """Logical CPUs with no runnable task."""
        return [i for i, s in enumerate(self._cpus) if not s.busy()]

    def tasks_on(self, cpu: int) -> list[Task]:
        """All runnable tasks currently assigned to ``cpu``."""
        return self._cpus[cpu].tasks()

    def register_pool(self, pool: WorkPool) -> None:
        """Start tracking a pool's drain-completion event."""
        self._reschedule_pool(pool)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _allowed(self, task: Task) -> list[int]:
        if task.affinity is None:
            # Shared read-only list: callers only iterate.
            return self._all_cpu_list
        return sorted(task.affinity)

    def _pick_cpu(self, task: Task, hint: Optional[int]) -> int:
        allowed = self._allowed(task)
        if len(allowed) == 1:
            chosen = allowed[0]
        else:
            chosen = self._pick_cpu_multi(task, hint, allowed)
        self._placed_seq += 1
        self._placed_stamp[chosen] = self._placed_seq
        return chosen

    def _pick_cpu_multi(self, task: Task, hint: Optional[int], allowed: list[int]) -> int:
        stamp = self._placed_stamp
        if task.policy is SchedPolicy.FIFO and hint is not None and hint in allowed:
            # RT wake placement is sticky: the task runs on its previous
            # CPU unless that CPU already runs another RT task (Linux
            # select_task_rq_rt).  This is why per-CPU irq-class noise
            # hits the workload even when housekeeping cores are free.
            if not self._cpus[hint].fifo:
                return hint
        idle = [c for c in allowed if not self._cpus[c].busy()]
        if idle:
            if hint is not None and hint in idle:
                return hint
            # Prefer an idle CPU whose sibling is also idle (full-speed),
            # least-recently-used among equals.
            def idle_key(c: int) -> tuple:
                sib = self._sibling[c]
                sib_busy = sib is not None and self._cpus[sib].busy()
                return (sib_busy, stamp[c], c)

            return min(idle, key=idle_key)
        # No idle CPU: least-loaded for the task's class.
        if task.policy is SchedPolicy.FIFO:
            def fifo_key(c: int) -> tuple:
                s = self._cpus[c]
                return (len(s.fifo), len(s.other), c != hint, stamp[c], c)

            return min(allowed, key=fifo_key)

        def other_key(c: int) -> tuple:
            s = self._cpus[c]
            return (bool(s.fifo), sum(t.weight for t in s.other), c != hint, stamp[c], c)

        return min(allowed, key=other_key)

    @staticmethod
    def _insert_fifo(queue: list[Task], task: Task) -> None:
        # Highest priority first; FIFO order within equal priority.
        lo = 0
        for i, t in enumerate(queue):
            if t.rt_priority < task.rt_priority:
                lo = i
                break
            lo = i + 1
        queue.insert(lo, task)

    # ------------------------------------------------------------------
    # rate computation
    # ------------------------------------------------------------------
    def _update(self, cpus: set[int]) -> None:
        """Advance + recompute rates for ``cpus`` (and coupled CPUs).

        This is *the* simulator hot path — it runs once per scheduler
        event (hundreds of thousands of times per rep at paper scale),
        so it trades a little readability for allocation-free inner
        loops: shares live in task slots validated by an epoch counter
        instead of a per-call dict, :meth:`Task.advance` is inlined,
        and topology/param lookups are hoisted.  Every float expression
        matches the reference implementation operation-for-operation;
        the golden-equivalence suite holds this bit-exact.
        """
        now = self.engine.now
        cpu_states = self._cpus
        sibling = self._sibling
        last_busy = self._last_busy
        # Sibling speeds depend only on our busy-ness: pull a sibling
        # into the recompute set only when that flipped.
        affected = set()
        for c in cpus:
            affected.add(c)
            sib = sibling[c]
            if sib is not None:
                s = cpu_states[c]
                busy = bool(s.fifo or s.other)
                if busy != last_busy[c]:
                    last_busy[c] = busy
                    affected.add(sib)
        order = sorted(affected) if len(affected) > 1 else tuple(affected)

        self._epoch = epoch = self._epoch + 1
        params = self.params
        smt_factor = params.smt_factor
        fifo_share = params.rt_throttle_share if self.rt_throttle else 1.0

        # Phases 1+2 fused per CPU: integrate progress at the old rates,
        # then stamp each task's new raw share (shares depend only on
        # queue membership / weights / steal, never on the integration,
        # so fusing preserves the reference evaluation order exactly).
        touched: list[Task] = []
        append = touched.append
        for c in order:
            state = cpu_states[c]
            fifo = state.fifo
            other = state.other
            for t in fifo:
                # inlined Task.advance(now)
                dt = now - t._last_update
                if dt >= 0:
                    if dt and t.rate > 0.0:
                        consumed = t.rate * dt
                        t.total_cpu_time += consumed
                        if t.pool is not None:
                            t.pool.consume(consumed)
                        elif t.work_remaining is not None:
                            t.work_remaining -= consumed
                            if t.work_remaining < 0.0:
                                t.work_remaining = 0.0
                    t._last_update = now
                append(t)
            for t in other:
                dt = now - t._last_update
                if dt >= 0:
                    if dt and t.rate > 0.0:
                        consumed = t.rate * dt
                        t.total_cpu_time += consumed
                        if t.pool is not None:
                            t.pool.consume(consumed)
                        elif t.work_remaining is not None:
                            t.work_remaining -= consumed
                            if t.work_remaining < 0.0:
                                t.work_remaining = 0.0
                    t._last_update = now
                append(t)
            # raw shares (mirrors _compute_shares, writing task slots)
            speed = 1.0 - state.steal
            sib = sibling[c]
            if sib is not None and (fifo or other):
                sstate = cpu_states[sib]
                if sstate.fifo or sstate.other:
                    speed *= smt_factor
            if fifo:
                head = fifo[0]
                head._new_share = speed * fifo_share
                head._share_epoch = epoch
                for t in fifo[1:]:
                    t._new_share = 0.0
                    t._share_epoch = epoch
                leftover = speed * (1.0 - fifo_share)
                total_w = 0.0
                for t in other:
                    total_w += t.weight
                if total_w > 0:
                    for t in other:
                        t._new_share = leftover * t.weight / total_w
                        t._share_epoch = epoch
                else:
                    for t in other:
                        t._new_share = 0.0
                        t._share_epoch = epoch
            elif other:
                total_w = 0.0
                for t in other:
                    total_w += t.weight
                if total_w > 0:
                    for t in other:
                        t._new_share = speed * t.weight / total_w
                        t._share_epoch = epoch
                else:
                    for t in other:
                        t._new_share = 0.0
                        t._share_epoch = epoch

        # Phase 3: memory bandwidth rescale.  Demand is weighted by CPU
        # share: a task holding 65% of an SMT sibling (or starved by
        # FIFO noise) only pulls that fraction of its bandwidth, so the
        # freed bandwidth flows to the other streaming threads.
        # Compute-only updates (no streaming task anywhere, scale at
        # 1.0) skip the phase outright.
        mem_running = self._mem_running
        need_mem = bool(mem_running) or self._mem_scale != 1.0
        if not need_mem:
            for t in touched:
                if t.mem_demand > 0.0:
                    need_mem = True
                    break
        if need_mem:
            for t in touched:
                if t.mem_demand > 0.0 and t._new_share > 0.0:
                    mem_running[t.tid] = t
                else:
                    mem_running.pop(t.tid, None)
            total_demand = 0.0
            for t in mem_running.values():
                total_demand += t.mem_demand * (
                    t._new_share if t._share_epoch == epoch else t.cpu_share
                )
            new_scale = self.memory.scale_for(total_demand)
            # Propagating a rescale costs O(all streaming tasks).  Large
            # jumps (a region starting or draining) apply immediately; the
            # small per-completion cascade at a region's tail is coalesced
            # into one deferred rescale so it stays O(n log n) per region.
            drift = abs(new_scale - self._mem_scale) / self._mem_scale
            scale_changed = drift > 0.25 or (drift > 1e-12 and len(mem_running) <= 4)
            if drift > params.mem_rescale_tolerance and not scale_changed:
                self._arm_mem_rescale()
            if scale_changed:
                # Advance mem tasks outside the affected set at their old
                # rates before applying the new scale.
                for t in sorted(mem_running.values(), key=_by_tid):
                    if t._share_epoch != epoch:
                        t.advance(now)
                        append(t)
                        t._new_share = t.cpu_share
                        t._share_epoch = epoch
                self._mem_scale = new_scale

        # Phase 4: assign effective rates and reschedule completions.
        # A completion event stays valid while the rate is unchanged
        # (it was computed from the same constant-rate trajectory), so
        # only genuinely re-rated tasks pay the heap churn.
        mem_scale = self._mem_scale
        engine = self.engine
        schedule = engine.schedule
        pools: dict[int, WorkPool] = {}
        for t in touched:
            share = t._new_share
            # share * 1.0 is bit-exact, so the no-demand branch skips
            # the multiply without changing results.
            eff = share * mem_scale if t.mem_demand > 0.0 else share
            if t.speed_penalty != 1.0:
                eff *= t.speed_penalty
            rate_changed = eff != t.rate
            t.cpu_share = share
            t.rate = eff
            if t._run_started is None and eff > 0.0:
                t._run_started = now
            pool = t.pool
            if pool is not None:
                if rate_changed:
                    pools[id(pool)] = pool
            elif rate_changed or (t._completion_event is None and t.work_remaining is not None):
                # inlined _reschedule_task (engine.now == now throughout
                # _update, so schedule_after(wr / eff) == schedule(now + wr / eff))
                ev = t._completion_event
                if ev is not None:
                    ev.cancel()
                    t._completion_event = None
                wr = t.work_remaining
                if wr is not None and eff > 0.0:
                    t._completion_event = schedule(now + wr / eff, self._task_done, t)
            if (
                eff == 0.0
                and t.cpu is not None
                and t.policy is SchedPolicy.OTHER
                and not t.pinned
                and not t.spin
                and cpu_states[t.cpu].fifo
            ):
                self._arm_starvation_check(t)
        for pool in pools.values():
            self._reschedule_pool(pool)

        # Phase 5: idle CPUs may pull starved/shared work.
        for c in order:
            state = cpu_states[c]
            if not (state.fifo or state.other):
                self._try_pull(c)

    def _arm_mem_rescale(self) -> None:
        if self._mem_rescale_pending:
            return
        self._mem_rescale_pending = True
        self.engine.schedule_after(self.params.mem_rescale_delay, self._apply_mem_rescale)

    def _apply_mem_rescale(self) -> None:
        self._mem_rescale_pending = False
        now = self.engine.now
        live = [
            t
            for t in sorted(self._mem_running.values(), key=lambda t: t.tid)
            if t.alive and t.cpu is not None
        ]
        total = sum(t.mem_demand * t.cpu_share for t in live)
        new_scale = self.memory.scale_for(total)
        if abs(new_scale - self._mem_scale) / self._mem_scale <= 1e-12:
            return
        self._mem_scale = new_scale
        pools: dict[int, WorkPool] = {}
        for t in live:
            t.advance(now)
            t.rate = t.cpu_share * new_scale
            if t.pool is not None:
                pools[id(t.pool)] = t.pool
            else:
                self._reschedule_task(t)
        for pool in pools.values():
            self._reschedule_pool(pool)

    def _raw_share(self, task: Task) -> float:
        cpu = task.cpu
        if cpu is None:
            return 0.0
        shares: dict[int, float] = {}
        self._compute_shares(cpu, shares)
        return shares.get(task.tid, 0.0)

    def _cpu_speed(self, cpu: int) -> float:
        state = self._cpus[cpu]
        speed = 1.0 - state.steal
        sib = self._sibling[cpu]
        if sib is not None and self._cpus[sib].busy() and state.busy():
            speed *= self.params.smt_factor
        return speed

    def _compute_shares(self, cpu: int, out: dict[int, float]) -> None:
        state = self._cpus[cpu]
        speed = self._cpu_speed(cpu)
        if state.fifo:
            head = state.fifo[0]
            fifo_share = self.params.rt_throttle_share if self.rt_throttle else 1.0
            out[head.tid] = speed * fifo_share
            for t in state.fifo[1:]:
                out[t.tid] = 0.0
            leftover = speed * (1.0 - fifo_share)
            total_w = sum(t.weight for t in state.other)
            for t in state.other:
                out[t.tid] = leftover * t.weight / total_w if total_w > 0 else 0.0
        else:
            total_w = sum(t.weight for t in state.other)
            for t in state.other:
                out[t.tid] = speed * t.weight / total_w if total_w > 0 else 0.0

    # ------------------------------------------------------------------
    # completion events
    # ------------------------------------------------------------------
    def _cancel_completion(self, task: Task) -> None:
        if task._completion_event is not None:
            task._completion_event.cancel()
            task._completion_event = None

    def _reschedule_task(self, task: Task) -> None:
        self._cancel_completion(task)
        ttc = task.time_to_completion()
        if ttc is None:
            return
        task._completion_event = self.engine.schedule_after(ttc, self._task_done, task)

    def _task_done(self, task: Task) -> None:
        task._completion_event = None
        if not task.alive or task.cpu is None:
            return
        task.advance(self.engine.now)
        if task.work_remaining is not None and task.work_remaining > _DONE_EPS:
            self._reschedule_task(task)
            return
        if task.persistent:
            # Team threads stay on their CPU, busy-waiting at the
            # barrier (OMP_WAIT_POLICY=active behaviour).
            task.to_spin()
            self._update({task.cpu})
            if task.on_complete is not None:
                task.on_complete(task)
            return
        task.alive = False
        self.remove(task)
        if task.on_complete is not None:
            task.on_complete(task)

    def _reschedule_pool(self, pool: WorkPool) -> None:
        if pool._completion_event is not None:
            pool._completion_event.cancel()
            pool._completion_event = None
        # Bring the pool's consumed-work accounting up to date: members
        # on unchanged CPUs have run at constant rates since their last
        # integration, so advancing them here is exact.
        now = self.engine.now
        for t in pool.members:
            t.advance(now)
        if pool.work_remaining <= _DONE_EPS and pool.members:
            pool.work_remaining = 0.0
            if pool.on_drained is not None:
                self.engine.schedule(now, self._pool_done, pool)
            return
        ttd = pool.time_to_drain()
        if ttd is None:
            return
        pool._completion_event = self.engine.schedule_after(ttd, self._pool_done, pool)

    def _pool_done(self, pool: WorkPool) -> None:
        pool._completion_event = None
        now = self.engine.now
        for t in pool.members:
            t.advance(now)
        if pool.work_remaining > _DONE_EPS:
            self._reschedule_pool(pool)
            return
        pool.work_remaining = 0.0
        if pool.on_drained is not None:
            cb = pool.on_drained
            pool.on_drained = None  # fire exactly once
            cb(pool)

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def _arm_starvation_check(self, task: Task) -> None:
        if task.tid in self._starvation_pending:
            return
        last = self._last_migration.get(task.tid, -1e18)
        if self.engine.now - last < self.params.min_migration_interval:
            return
        self._starvation_pending.add(task.tid)
        self.engine.schedule_after(self.params.starvation_delay, self._starvation_check, task)

    def _starvation_check(self, task: Task) -> None:
        self._starvation_pending.discard(task.tid)
        if not task.alive or task.cpu is None or task.rate > 0.0 or task.pinned:
            self._starved_since.pop(task.tid, None)
            return
        now = self.engine.now
        started = self._starved_since.setdefault(task.tid, now - self.params.starvation_delay)
        idle_targets = [
            c
            for c in self._allowed(task)
            if c != task.cpu and not self._cpus[c].busy()
        ]
        if idle_targets:
            # Fast path: wake/newidle balancing finds idle CPUs quickly.
            target: Optional[int] = min(
                idle_targets, key=lambda c: (self._placed_stamp[c], c)
            )
        elif now - started >= self.params.shared_migration_delay:
            # Slow path: periodic balance shoves the starved task onto a
            # busy CPU to timeshare.
            target = self._best_migration_target(task)
        else:
            target = None
        if target is None:
            # Still starved and nowhere to go yet: keep checking.
            self._arm_starvation_check(task)
            return
        self._starved_since.pop(task.tid, None)
        self._migrate(task, target)

    def _best_migration_target(self, task: Task) -> Optional[int]:
        cur = task.cpu
        home_node = self._numa[cur] if cur is not None else 0
        best: Optional[int] = None
        best_key: Optional[tuple] = None
        for c in self._allowed(task):
            if c == cur:
                continue
            state = self._cpus[c]
            if state.fifo:
                continue
            speed = self._cpu_speed_if_joined(c)
            total_w = sum(t.weight for t in state.other) + task.weight
            share = speed * task.weight / total_w
            # Prefer staying in the home NUMA node unless a remote CPU
            # offers a substantially better share (CFS's NUMA-aware
            # balancing reluctance).
            remote = self._numa[c] != home_node
            key = (-(share * (0.7 if remote else 1.0)), c)
            if share > 1e-12 and (best_key is None or key < best_key):
                best_key = key
                best = c
        return best

    def _cpu_speed_if_joined(self, cpu: int) -> float:
        state = self._cpus[cpu]
        speed = 1.0 - state.steal
        sib = self._sibling[cpu]
        if sib is not None and self._cpus[sib].busy():
            speed *= self.params.smt_factor
        return speed

    def _migrate(self, task: Task, target: int) -> None:
        now = self.engine.now
        self.migrations += 1
        self._last_migration[task.tid] = now
        src = task.cpu
        assert src is not None
        task.advance(now)
        state = self._cpus[src]
        if task.policy is SchedPolicy.FIFO:
            state.fifo.remove(task)
        else:
            state.other.remove(task)
        task.cpu = None
        task.rate = 0.0
        # Mid-flight tasks are off-CPU: no bandwidth demand until
        # re-placement (mirrors the pop in remove()).
        self._mem_running.pop(task.tid, None)
        self._cancel_completion(task)
        self._update({src})
        # The migration cost is paid as off-CPU latency (cache refill,
        # runqueue hop); crossing NUMA nodes costs far more.
        cost = (
            self.params.numa_migration_cost
            if self._numa[src] != self._numa[target]
            else self.params.migration_cost
        )
        self._migration_origin[task.tid] = src
        self.engine.schedule_after(cost, self._finish_migration, task, target)

    def _finish_migration(self, task: Task, target: int) -> None:
        if not task.alive or task.cpu is not None:
            return
        # Target may have changed state during the hop; re-pick if it
        # now runs FIFO noise.
        if self._cpus[target].fifo:
            retarget = self._best_migration_target(task)
            if retarget is not None:
                target = retarget
        # Cold caches after the hop; crossing a NUMA boundary leaves
        # the task's working set in remote memory for the rest of its
        # current work — the persistent cost that makes thread pinning
        # pay off on large multi-socket systems (§6).
        origin = self._migration_origin.pop(task.tid, None)
        if origin is not None and task.cpu is None:
            if self._numa[origin] != self._numa[target]:
                task.speed_penalty = min(task.speed_penalty, self.params.numa_remote_speed)
            else:
                task.speed_penalty = min(task.speed_penalty, self.params.post_migration_speed)
        self.submit(task, cpu=target)

    def _try_pull(self, cpu: int) -> None:
        """An idle CPU pulls the neediest migratable OTHER task."""
        best: Optional[Task] = None
        best_key: Optional[tuple] = None
        now = self.engine.now
        last_migration = self._last_migration
        min_interval = self.params.min_migration_interval
        for c, state in enumerate(self._cpus):
            if c == cpu:
                continue
            other = state.other
            if not (state.fifo or len(other) > 1):  # not crowded
                continue
            for t in other:
                if t.pinned or t.spin:
                    continue
                if t.affinity is not None and cpu not in t.affinity:
                    continue
                if now - last_migration.get(t.tid, -1e18) < min_interval:
                    continue
                key = (t.rate, t.tid)  # most starved first
                if best_key is None or key < best_key:
                    best_key = key
                    best = t
        if best is not None:
            self._migrate(best, cpu)

    # ------------------------------------------------------------------
    # tracing hook
    # ------------------------------------------------------------------
    def _emit_noise_interval(self, task: Task) -> None:
        if self.on_noise_interval is None or not task.is_noise():
            return
        if task._run_started is None or task.total_cpu_time <= 0.0:
            return
        if task.cpu is None:
            return
        self.on_noise_interval(task, task.cpu, task._run_started, task.total_cpu_time)
        task._run_started = None
        task.total_cpu_time = 0.0
