"""Machine facade: one simulated execution environment.

A :class:`Machine` wires together the event engine, topology, memory
system, scheduler, background-noise model and tracer for a *single
run*.  Machines are cheap and single-use: the experiment harness builds
a fresh one per repetition from the same
:class:`~repro.sim.platform.PlatformSpec` with a per-run RNG stream,
which is what makes every run independently reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.core.trace import Trace
from repro.sim.engine import Engine
from repro.sim.memory import MemorySystem
from repro.sim.noise import NoiseEnvironment, NoiseModel
from repro.sim.platform import PlatformSpec
from repro.sim.scheduler import SchedParams, Scheduler
from repro.sim.tracer import OSNoiseTracer

__all__ = ["Machine", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one simulated workload execution."""

    exec_time: float
    trace: Optional[Trace]
    anomaly: Optional[str] = None
    migrations: int = 0
    preemptions: int = 0
    meta: dict = field(default_factory=dict)


class Machine:
    """A single-run simulated multicore machine.

    Parameters
    ----------
    platform:
        Static machine description (topology, speeds, noise preset).
    rng:
        Per-run random generator; all stochastic behaviour derives from
        it, so equal seeds give bitwise-identical runs.
    tracing:
        Enable the OSnoise-style tracer (costs <1% like Table 1).
    rt_throttle:
        Linux RT-throttling fail-safe; the injector disables it.
    noise_env:
        Override the platform's noise environment (e.g. runlevel 3), or
        ``None`` to use the preset.  Pass a silent environment via
        :func:`repro.sim.noise.NoiseEnvironment` for noise-free unit
        tests.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        rng: np.random.Generator,
        *,
        tracing: bool = True,
        rt_throttle: bool = True,
        noise_env: Optional[NoiseEnvironment] = None,
        enable_noise: bool = True,
        sched_params: Optional[SchedParams] = None,
    ):
        self.platform = platform
        self.topology = platform.topology
        self.rng = rng
        self.engine = Engine()
        self.memory = MemorySystem(platform.bandwidth_gbs)
        self.tracer = OSNoiseTracer(enabled=tracing)
        params = sched_params if sched_params is not None else SchedParams(smt_factor=platform.smt_factor)
        self.scheduler = Scheduler(
            self.engine,
            self.topology,
            memory=self.memory,
            params=params,
            rt_throttle=rt_throttle,
            on_noise_interval=self.tracer.on_noise_interval,
        )
        self.noise_model: Optional[NoiseModel] = None
        if enable_noise:
            env = noise_env if noise_env is not None else platform.noise
            self.noise_model = NoiseModel(self, env, rng)
        #: logical CPUs that hosted workload threads (runtime reports these)
        self.workload_cpus: set[int] = set()
        self._done = False
        self._exec_time: Optional[float] = None

    # ------------------------------------------------------------------
    def extra_steal(self, cpu: int) -> float:
        """Additional per-CPU steal fraction (tracing overhead)."""
        micro = self.noise_model.env.micro if self.noise_model else None
        if micro is None:
            return 0.0
        return self.tracer.overhead_steal(self.platform.tick_hz, micro)

    def note_workload_cpu(self, cpu: int) -> None:
        """Runtimes report where their threads landed (for dyntick sim)."""
        self.workload_cpus.add(cpu)

    def workload_done(self) -> None:
        """Signal that the workload finished; stops the run loop."""
        if self._done:
            return
        self._done = True
        self._exec_time = self.engine.now
        self.engine.stop()

    # ------------------------------------------------------------------
    def run(
        self,
        start: Callable[["Machine"], None],
        expected_duration: float,
        max_events: Optional[int] = None,
        meta: Optional[dict] = None,
    ) -> RunResult:
        """Execute one workload to completion.

        Parameters
        ----------
        start:
            Callback that launches the workload (and optionally an
            injector) on this machine at t=0; the workload must call
            :meth:`workload_done` when finished.
        expected_duration:
            A-priori runtime estimate used to place anomaly windows.
        """
        if self._exec_time is not None:
            raise RuntimeError("Machine instances are single-use")
        if self.noise_model is not None:
            self.noise_model.start(expected_duration)
        start(self)
        self.engine.run(max_events=max_events)
        if not self._done:
            raise RuntimeError(
                "engine drained without workload completion — deadlocked run"
            )
        exec_time = self._exec_time
        assert exec_time is not None
        if self.noise_model is not None:
            self.noise_model.stop()
        trace = self.tracer.finalize(
            exec_time,
            tuple(sorted(self.workload_cpus)),
            self.noise_model,
            self.rng,
            meta=meta,
        )
        if _telemetry.enabled():
            # Engine counters flush once per run, never from inside the
            # event loop — the hot path is untouched, and the golden-
            # equivalence contract with it.
            group = _telemetry.get_group("engine")
            group.inc("runs")
            group.inc("events_executed", self.engine.events_executed)
            group.inc("compactions", self.engine.compactions)
        return RunResult(
            exec_time=exec_time,
            trace=trace,
            anomaly=self.noise_model.anomaly.name if self.noise_model and self.noise_model.anomaly else None,
            migrations=self.scheduler.migrations,
            preemptions=self.scheduler.preemptions,
            meta=dict(meta) if meta else {},
        )
