"""repro.telemetry — unified instrumentation for the harness.

The measurement infrastructure deserves the same observability the
paper demands of the systems under test: spans describing where
campaign wall-clock goes (campaign → cell → experiment → chunk → rep →
retry, across process-pool workers), one counter registry replacing the
scattered ``stats()`` dicts, and exporters producing an append-only
JSONL event log, a Chrome/Perfetto-loadable trace timeline, and a
Prometheus-style text snapshot.

Enable with ``REPRO_TELEMETRY=1`` (collect in memory) or
``REPRO_TELEMETRY=DIR`` / ``repro-noise ... --telemetry DIR`` (collect
and export).  Disabled — the default — the whole layer is a no-op:
:func:`span` hands back a shared null context manager, nothing
allocates on hot paths, and simulation results are bit-identical either
way (telemetry never touches an experiment RNG stream).

See ``docs/observability.md`` for the exporter formats, a Perfetto
walkthrough, and the counter glossary.
"""

from repro.telemetry.core import (
    CounterGroup,
    Span,
    absorb_worker,
    configure,
    counter_help,
    counters_snapshot,
    current_span_id,
    drain_events,
    enabled,
    events_snapshot,
    get_group,
    new_group,
    refresh_from_env,
    reset,
    set_base_parent,
    set_counter_help,
    span,
    telemetry_dir,
    worker_capture_begin,
    worker_capture_end,
)
from repro.telemetry.exporters import (
    chrome_trace,
    export_all,
    load_events_jsonl,
    prometheus_text,
    summarize_text,
    write_chrome_trace,
    write_events_jsonl,
)

__all__ = [
    "enabled",
    "configure",
    "refresh_from_env",
    "telemetry_dir",
    "span",
    "Span",
    "current_span_id",
    "set_base_parent",
    "events_snapshot",
    "drain_events",
    "CounterGroup",
    "new_group",
    "get_group",
    "counters_snapshot",
    "set_counter_help",
    "counter_help",
    "worker_capture_begin",
    "worker_capture_end",
    "absorb_worker",
    "reset",
    "write_events_jsonl",
    "load_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "summarize_text",
    "export_all",
]
