"""Telemetry exporters: JSONL event log, Chrome trace, Prometheus text.

Three on-disk formats, all derived from the in-memory span events and
counter aggregates of :mod:`repro.telemetry.core`:

* ``events.jsonl`` — append-friendly raw event log, one JSON object per
  line; span events first, one final ``{"type": "counters", ...}``
  line carrying the aggregated counter snapshot.  This is the archival
  format the other two are derived from.
* ``trace.json`` — Chrome trace-event JSON (the *JSON Array Format*
  with a ``traceEvents`` key): load it in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_ to see the campaign →
  experiment → chunk → rep timeline across worker pids.
* ``counters.prom`` — Prometheus text-exposition snapshot: one counter
  family per namespace (``repro_<namespace>_total``) with the group's
  counter keys as ``counter`` labels.

:func:`summarize_text` renders the where-did-the-time-go breakdown the
``repro-noise telemetry summarize`` subcommand prints.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Optional

from repro.telemetry import core

__all__ = [
    "write_events_jsonl",
    "load_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "metric_name",
    "render_value",
    "prometheus_text",
    "summarize_text",
    "export_all",
]

#: canonical ordering of the harness span hierarchy in summaries
_SPAN_ORDER = (
    "campaign",
    "cell",
    "pipeline",
    "collect",
    "configure",
    "sweep",
    "experiment",
    "inject",
    "chunk",
    "rep",
    "retry",
)


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def write_events_jsonl(
    path: Path,
    events: Optional[Iterable[dict]] = None,
    counters: Optional[dict] = None,
) -> Path:
    """Write the archival JSONL log (events default to the live buffer)."""
    if events is None:
        events = core.events_snapshot()
    if counters is None:
        counters = core.counters_snapshot()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
        fh.write(json.dumps({"type": "counters", "counters": counters}, sort_keys=True) + "\n")
    return path


def load_events_jsonl(path: Path) -> tuple[list[dict], dict]:
    """Read a JSONL log back: ``(span_events, counters)``.

    Tolerates torn trailing lines (a crashed run's log is still
    summarizable) and unknown event types (forward compatibility).
    Multiple ``counters`` lines are merged, later values summing in —
    a log that was appended to across runs still reads sensibly.
    """
    events: list[dict] = []
    counters: dict[str, dict[str, float]] = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line
        if not isinstance(entry, dict):
            continue
        if entry.get("type") == "counters":
            for namespace, counts in (entry.get("counters") or {}).items():
                bucket = counters.setdefault(namespace, {})
                for name, value in counts.items():
                    bucket[name] = bucket.get(name, 0) + value
        elif entry.get("type") == "span":
            events.append(entry)
    return events, counters


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(events: Optional[Iterable[dict]] = None) -> dict:
    """Convert span events to the Chrome trace-event JSON object.

    Spans become ``ph: "X"`` (complete) events with microsecond
    timestamps rebased to the earliest span, laid out on ``pid``/``tid``
    tracks — workers appear as separate process rows in Perfetto.
    """
    if events is None:
        events = core.events_snapshot()
    spans = [e for e in events if e.get("type") == "span"]
    t0 = min((e["ts"] for e in spans), default=0.0)
    trace_events = []
    pids = set()
    for e in spans:
        pids.add(e["pid"])
        args = dict(e.get("args") or {})
        args["id"] = e.get("id")
        if e.get("parent"):
            args["parent"] = e["parent"]
        if e.get("error"):
            args["error"] = e["error"]
        trace_events.append(
            {
                "name": e["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (e["ts"] - t0) * 1e6,
                "dur": e["dur"] * 1e6,
                "pid": e["pid"],
                "tid": e["tid"],
                "args": args,
            }
        )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Path, events: Optional[Iterable[dict]] = None) -> Path:
    """Write the Chrome/Perfetto-loadable trace JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events)) + "\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text snapshot
# ----------------------------------------------------------------------
_METRIC_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(namespace: str) -> str:
    """Sanitize a counter namespace into a legal Prometheus metric name
    (dots, dashes, anything else exotic become underscores; a leading
    digit gets an underscore prefix)."""
    name = _METRIC_BAD.sub("_", namespace)
    if name and name[0].isdigit():
        name = "_" + name
    return f"repro_{name}_total"


def _label_escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_value(value) -> str:
    """Render a sample value (floats trimmed, ints verbatim)."""
    if isinstance(value, float):
        return f"{value:.6f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def prometheus_text(counters: Optional[dict] = None) -> str:
    """Render counters in the Prometheus text exposition format.

    One metric *family* per counter namespace — sanitized to
    ``repro_<namespace>_total`` with ``# HELP``/``# TYPE`` header lines
    — and one sample per counter, its key rendered as a ``counter``
    label rather than flattened into the metric name.  That keeps a
    group's counters queryable as one family (``sum by (counter)``)
    and keeps arbitrary counter keys (dots, dashes) out of the metric
    name where they would be illegal.
    """
    if counters is None:
        counters = core.counters_snapshot()
    lines = []
    for namespace in sorted(counters):
        metric = metric_name(namespace)
        lines.append(f"# HELP {metric} {core.counter_help(namespace)}")
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(counters[namespace]):
            value = counters[namespace][name]
            lines.append(
                f'{metric}{{counter="{_label_escape(str(name))}"}} {render_value(value)}'
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# summary rendering
# ----------------------------------------------------------------------
def summarize_text(events: Iterable[dict], counters: dict) -> str:
    """Where-did-the-time-go breakdown: per-span totals plus counters.

    ``total`` sums wall time across concurrent spans (a chunk running
    on four workers contributes four chunks' worth), so comparing
    ``rep`` totals against ``experiment`` totals directly exposes
    parallel speed-up and retry overhead.
    """
    from repro.harness.report import TableBuilder

    per_name: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for e in events:
        if e.get("type") != "span":
            continue
        per_name.setdefault(e["name"], []).append(float(e.get("dur", 0.0)))
        if e.get("error"):
            errors[e["name"]] = errors.get(e["name"], 0) + 1
    order = [n for n in _SPAN_ORDER if n in per_name]
    order += sorted(set(per_name) - set(order), key=lambda n: -sum(per_name[n]))
    tb = TableBuilder(["span", "count", "total (s)", "mean (ms)", "max (ms)", "errors"])
    for name in order:
        durs = per_name[name]
        tb.add_row(
            name,
            str(len(durs)),
            f"{sum(durs):.3f}",
            f"{sum(durs) / len(durs) * 1e3:.2f}",
            f"{max(durs) * 1e3:.2f}",
            str(errors.get(name, 0)),
        )
    parts = ["telemetry summary: where did the time go"]
    if order:
        parts.append(tb.render())
    else:
        parts.append("(no spans recorded)")
    if counters:
        ctb = TableBuilder(["counter", "value"])
        for namespace in sorted(counters):
            for name in sorted(counters[namespace]):
                value = counters[namespace][name]
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                ctb.add_row(f"{namespace}.{name}", rendered)
        parts.append(ctb.render())
    return "\n".join(parts)


# ----------------------------------------------------------------------
# one-call export
# ----------------------------------------------------------------------
def export_all(out_dir: Optional[Path] = None) -> dict[str, Path]:
    """Write all three formats into ``out_dir`` (default: configured dir).

    Returns ``{"events": ..., "chrome": ..., "prometheus": ...}`` paths.
    """
    if out_dir is None:
        out_dir = core.telemetry_dir()
    if out_dir is None:
        raise ValueError("no telemetry output directory configured")
    out_dir = Path(out_dir)
    events = core.events_snapshot()
    counters = core.counters_snapshot()
    return {
        "events": write_events_jsonl(out_dir / "events.jsonl", events, counters),
        "chrome": write_chrome_trace(out_dir / "trace.json", events),
        "prometheus": _write_text(out_dir / "counters.prom", prometheus_text(counters)),
    }


def _write_text(path: Path, text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
