"""Telemetry core: spans, counters, and worker buffers.

The harness's instrumentation layer.  Three primitives:

* **Spans** — :func:`span` context managers with a monotonic start
  time, duration, parent linkage (thread-local stack), and pid/thread
  identity.  Spans nest: ``campaign → cell → experiment → chunk →
  rep → retry`` is the canonical hierarchy the summarizer renders.
* **Counters** — named monotonic counts grouped by namespace.
  Per-instance groups (:func:`new_group`) back the executors' and
  cache's existing ``stats()`` dicts; shared groups
  (:func:`get_group`) collect process-wide counts (engine events,
  chaos injections).  :func:`counters_snapshot` aggregates both.
* **Worker buffers** — pool workers record spans/counters locally and
  flush them through the existing chunk-result channel
  (:func:`worker_capture_begin` / :func:`worker_capture_end` on the
  worker side, :func:`absorb_worker` on the parent side).

Zero-overhead-when-disabled contract
------------------------------------
Collection is governed by a module-level flag (``REPRO_TELEMETRY`` or
:func:`configure`).  When disabled, :func:`span` returns a shared
no-op context manager and records nothing; hot call sites additionally
guard on :func:`enabled` so span attributes are never even built.
Counter groups stay live regardless — they replace the ad-hoc dicts
behind ``Executor.stats()`` / ``ResultCache.stats()``, whose behaviour
must not depend on telemetry — but those increments happen on recovery
and cache paths, never inside the simulator event loop.

Telemetry never touches experiment RNG streams: spans only read the
monotonic clock, so results are bit-identical with telemetry on or off
(the golden-equivalence suite enforces it under ``REPRO_TELEMETRY=1``).

Clocks and identity
-------------------
Span timestamps are ``time.perf_counter()`` values.  On Linux that is
``CLOCK_MONOTONIC``, which is system-wide, so spans recorded in forked
pool workers align with the parent's timeline; on platforms where the
clock is per-process the per-pid tracks are still internally ordered.
Span ids embed the recording pid, so ids from forked workers can never
collide with the parent's.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "enabled",
    "configure",
    "refresh_from_env",
    "telemetry_dir",
    "span",
    "Span",
    "current_span_id",
    "set_base_parent",
    "events_snapshot",
    "drain_events",
    "CounterGroup",
    "new_group",
    "get_group",
    "counters_snapshot",
    "set_counter_help",
    "counter_help",
    "worker_capture_begin",
    "worker_capture_end",
    "absorb_worker",
    "reset",
]

# ----------------------------------------------------------------------
# enablement
# ----------------------------------------------------------------------
_ENABLED: bool = False
_OUT_DIR: Optional[Path] = None


def _env_directive() -> tuple[bool, Optional[Path]]:
    """Parse ``REPRO_TELEMETRY``: unset/``0`` → off; ``1`` → on
    (in-memory only); anything else → on, value is the export dir."""
    raw = os.environ.get("REPRO_TELEMETRY", "").strip()
    if not raw or raw == "0":
        return False, None
    if raw == "1":
        return True, None
    return True, Path(raw)


def refresh_from_env() -> bool:
    """Re-read ``REPRO_TELEMETRY`` (spawned workers call this on import)."""
    global _ENABLED, _OUT_DIR
    _ENABLED, _OUT_DIR = _env_directive()
    return _ENABLED


def enabled() -> bool:
    """Whether span/event collection is active (one global load)."""
    return _ENABLED


def configure(enabled: bool = True, out_dir: Optional[Path] = None) -> None:
    """Programmatically enable/disable collection.

    ``out_dir`` sets the default export directory for
    :func:`repro.telemetry.exporters.export_all`.  This does **not**
    touch the environment; callers that spawn worker processes under a
    non-fork start method should also export ``REPRO_TELEMETRY`` so the
    children pick the flag up (the CLI does).
    """
    global _ENABLED, _OUT_DIR
    _ENABLED = bool(enabled)
    if out_dir is not None:
        _OUT_DIR = Path(out_dir)
    elif not enabled:
        _OUT_DIR = None


def telemetry_dir() -> Optional[Path]:
    """The configured export directory (``None`` = in-memory only)."""
    return _OUT_DIR


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
_id_lock = threading.Lock()
_id_seq = 0


def _new_span_id() -> str:
    """Process-unique span id; the pid prefix keeps forked workers'
    ids disjoint from the parent's."""
    global _id_seq
    with _id_lock:
        _id_seq += 1
        seq = _id_seq
    return f"{os.getpid()}-{seq}"


_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span_id() -> Optional[str]:
    """Id of the innermost open span on this thread (or the thread's
    base parent — see :func:`set_base_parent`)."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return getattr(_tls, "base", None)


def set_base_parent(parent: Optional[str]) -> None:
    """Adopt ``parent`` as this thread's root span parent.

    Used to keep linkage across execution boundaries that lose the
    thread-local stack: campaign cell threads and pool workers inherit
    the dispatching span's id this way.
    """
    _tls.base = parent


_events: list[dict] = []
_events_lock = threading.Lock()


def _record(event: dict) -> None:
    with _events_lock:
        _events.append(event)


def events_snapshot() -> list[dict]:
    """Copy of all recorded events (non-destructive)."""
    with _events_lock:
        return list(_events)


def drain_events() -> list[dict]:
    """Return and clear all recorded events."""
    with _events_lock:
        out = list(_events)
        _events.clear()
        return out


class _NullSpan:
    """Shared no-op span: the entire disabled-mode cost of ``with span()``."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """An open span; use via ``with span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "id", "parent", "_t0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.parent: Optional[str] = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self.parent = current_span_id()
        self.id = _new_span_id()
        _stack().append(self.id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "ts": self._t0,
            "dur": dur,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": self.id,
            "parent": self.parent,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["args"] = self.attrs
        _record(event)
        return False


def span(name: str, **attrs: Any):
    """Open a span named ``name`` (no-op singleton when disabled).

    Hot call sites should guard on :func:`enabled` before building
    ``attrs`` — the keyword dict is constructed by the caller either
    way.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name, attrs)


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
class CounterGroup:
    """A namespaced set of monotonic counters (thread-safe).

    Per-instance groups give subsystems private counts that still
    surface in the global aggregate; they are registered weakly, so a
    discarded executor takes its counters with it.
    """

    __slots__ = ("namespace", "_counts", "_lock", "__weakref__")

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._counts: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n

    def set(self, name: str, value: float) -> None:
        """Gauge-style assignment."""
        with self._lock:
            self._counts[name] = value

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counts.get(name, default)

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counts)

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterGroup({self.namespace!r}, {self.as_dict()!r})"


_groups: "weakref.WeakSet[CounterGroup]" = weakref.WeakSet()
_shared_groups: dict[str, CounterGroup] = {}
_groups_lock = threading.Lock()


def new_group(namespace: str) -> CounterGroup:
    """A fresh per-instance group under ``namespace`` (weakly tracked)."""
    group = CounterGroup(namespace)
    with _groups_lock:
        _groups.add(group)
    return group


def get_group(namespace: str) -> CounterGroup:
    """The process-wide shared group for ``namespace`` (created once)."""
    with _groups_lock:
        group = _shared_groups.get(namespace)
        if group is None:
            group = _shared_groups[namespace] = CounterGroup(namespace)
            _groups.add(group)
        return group


#: per-namespace HELP strings for the Prometheus exposition; populated
#: by the subsystems that own each namespace (anything unregistered
#: falls back to a generic line)
_counter_help: dict[str, str] = {}


def set_counter_help(namespace: str, text: str) -> None:
    """Register the ``# HELP`` line for a counter namespace."""
    with _groups_lock:
        _counter_help[namespace] = text


def counter_help(namespace: str) -> str:
    """The registered HELP text for ``namespace`` (generic fallback)."""
    with _groups_lock:
        return _counter_help.get(
            namespace, f"repro {namespace} counters, one series per counter label"
        )


def counters_snapshot() -> dict[str, dict[str, float]]:
    """Aggregate all live groups: ``{namespace: {name: total}}``.

    Sums across every group in a namespace, so five executors'
    ``rep_retries`` roll up into one series — exactly what the
    Prometheus snapshot wants.
    """
    with _groups_lock:
        groups = list(_groups)
    out: dict[str, dict[str, float]] = {}
    for group in groups:
        bucket = out.setdefault(group.namespace, {})
        for name, value in group.as_dict().items():
            bucket[name] = bucket.get(name, 0) + value
    return out


# ----------------------------------------------------------------------
# worker buffers
# ----------------------------------------------------------------------
def worker_capture_begin(parent: Optional[str] = None) -> tuple:
    """Start capturing this process's telemetry for one chunk.

    ``parent`` is the dispatching span's id from the parent process;
    spans recorded during the capture parent to it.  Returns an opaque
    token for :func:`worker_capture_end`.  Forked workers inherit the
    parent's event buffer and counter values; the token records both
    high-water marks so only *new* activity is flushed.
    """
    set_base_parent(parent)
    with _events_lock:
        position = len(_events)
    return position, counters_snapshot()


def worker_capture_end(token: tuple) -> dict:
    """Finish a capture: pop the new events, diff the counters.

    Returns the picklable blob that rides back on the chunk result
    (``{"events": [...], "counters": {ns: {name: delta}}}``).
    """
    position, before = token
    with _events_lock:
        events = _events[position:]
        del _events[position:]
    delta: dict[str, dict[str, float]] = {}
    for namespace, counts in counters_snapshot().items():
        base = before.get(namespace, {})
        for name, value in counts.items():
            diff = value - base.get(name, 0)
            if diff:
                delta.setdefault(namespace, {})[name] = diff
    set_base_parent(None)
    return {"events": events, "counters": delta}


def absorb_worker(blob: Optional[dict]) -> None:
    """Merge a worker's capture blob into this process's telemetry."""
    if not blob:
        return
    events = blob.get("events") or ()
    if events:
        with _events_lock:
            _events.extend(events)
    for namespace, counts in (blob.get("counters") or {}).items():
        group = get_group(namespace)
        for name, value in counts.items():
            group.inc(name, value)


# ----------------------------------------------------------------------
# test / lifecycle helpers
# ----------------------------------------------------------------------
def reset() -> None:
    """Clear recorded events and shared-group counters (test helper).

    Per-instance groups (executor/cache ``stats()`` backings) are left
    untouched — they belong to their owners.
    """
    with _events_lock:
        _events.clear()
    with _groups_lock:
        shared = list(_shared_groups.values())
    for group in shared:
        group.clear()


# one env read at import; spawned workers get their flag here
refresh_from_env()
