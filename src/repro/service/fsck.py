"""Cross-check the queue and the store; optionally repair.

The queue (job states) and the store (result envelopes) are two views
of the same campaign, written by different processes at different
times — crashes can strand them out of sync in ways no single
component observes:

* a job is ``done`` but its envelope is missing (worker completed the
  lease, then the entry was deleted or lost);
* an envelope or chunk entry fails sha256 verification (bit rot, a
  torn disk, the ``corrupt-store`` chaos profile);
* a ``sharded`` parent's children are all ``done`` but a chunk entry
  is missing, so no merger can ever finish the cell;
* chunk entries linger for cells that are no longer sharded (their
  merge completed elsewhere, or the cell was revived whole);
* a lease is held by a worker whose registry heartbeat says it is
  dead, stopped, or lost.

:func:`fsck` detects all of these; with ``repair=True`` it re-queues
lost work (bounded by the jobs' attempt budgets), quarantines corrupt
entries to ``.corrupt``, releases dead workers' leases through the
death-recording path (so poison detection still sees them), and
deletes orphaned chunk files.  Repair never touches healthy state and
never fabricates results — re-queued cells re-simulate from their
content-derived seeds, so a repaired campaign is bit-identical to an
undisturbed one.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field

from repro import telemetry as _telemetry
from repro.service.queue import DEFAULT_LOST_AFTER_S, JobQueue
from repro.service.store import SharedResultStore

__all__ = ["FsckReport", "fsck"]

_log = logging.getLogger(__name__)


@dataclass
class FsckReport:
    """What :func:`fsck` found (and, under ``repair``, did)."""

    #: jobs marked ``done`` whose primary envelope is missing
    done_without_entry: list = field(default_factory=list)
    #: envelopes/chunk entries that failed sha256 verification
    corrupt_entries: list = field(default_factory=list)
    #: sharded parents whose done children lack chunk entries
    unmergeable_parents: list = field(default_factory=list)
    #: chunk files on disk with no live sharded parent behind them
    orphan_chunks: list = field(default_factory=list)
    #: leases held by workers the registry says are dead/stopped/lost
    dead_worker_leases: list = field(default_factory=list)
    #: repair actions taken (strings, human-oriented)
    repairs: list = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.done_without_entry
            or self.corrupt_entries
            or self.unmergeable_parents
            or self.orphan_chunks
            or self.dead_worker_leases
        )

    def summary(self) -> str:
        if self.clean and not self.repairs:
            return "fsck: queue and store are consistent"
        lines = []
        for title, items in (
            ("done without store entry", self.done_without_entry),
            ("corrupt (sha256 mismatch)", self.corrupt_entries),
            ("unmergeable sharded parents", self.unmergeable_parents),
            ("orphan chunk entries", self.orphan_chunks),
            ("leases held by dead workers", self.dead_worker_leases),
        ):
            if items:
                lines.append(f"fsck: {len(items)} {title}: {', '.join(items)}")
        for action in self.repairs:
            lines.append(f"fsck: repaired: {action}")
        if not self.repaired and not self.clean:
            lines.append("fsck: run with --repair to re-queue lost work")
        return "\n".join(lines)


def _entry_ok(store: SharedResultStore, path) -> bool:
    """Parse + verify one sealed envelope file without side effects."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return store._verify_sealed(data)


def fsck(
    queue: JobQueue,
    store: SharedResultStore,
    repair: bool = False,
    lost_after_s: float = DEFAULT_LOST_AFTER_S,
) -> FsckReport:
    """Cross-check queue↔store invariants; see the module docstring.

    Safe to run against a live service: every repair goes through the
    queue's own transactional methods, so it composes with concurrent
    workers exactly like any other client.
    """
    report = FsckReport(repaired=repair)
    counters = _telemetry.get_group("service_fsck")
    jobs = queue.jobs()
    by_key = {job.key: job for job in jobs}
    now = time.time()

    # -- leases held by dead/lost workers -----------------------------
    worker_state = {
        info.id: info.derived_state(now, lost_after_s) for info in queue.workers()
    }
    for job in jobs:
        if job.status != "leased":
            continue
        state = worker_state.get(job.lease_owner)
        if state in ("dead", "stopped", "lost"):
            report.dead_worker_leases.append(job.key)
            if repair:
                # The death-recording path: lease released now, death
                # counted, poison detection consulted.
                queue.report_worker_death(
                    job.lease_owner,
                    detail=f"fsck: lease holder registry state is {state}",
                )
                report.repairs.append(
                    f"released lease on {job.key} ({job.lease_owner} is {state})"
                )

    # -- done jobs vs the store ---------------------------------------
    for job in jobs:
        if job.status != "done" or job.parent is not None:
            continue
        path = store.entry_path(job.key)
        if path.exists():
            if _entry_ok(store, path):
                continue
            report.corrupt_entries.append(job.key)
            if repair:
                store._quarantine_corrupt(path, job.label)
        else:
            # A skip-policy partial is quarantined by design, not lost.
            if path.with_name(f"{job.key}.partial.json").exists():
                continue
            report.done_without_entry.append(job.key)
        if repair and _requeue_done(queue, job.key):
            report.repairs.append(f"re-queued {job.key} (lost/corrupt result)")

    # -- sharded parents whose merge can never complete ---------------
    for job in jobs:
        if job.status != "sharded":
            continue
        if store.has_entry(job.key):
            continue
        children = queue.children(job.key)
        if not children or any(c.status not in ("done", "queued", "leased") for c in children):
            continue
        lost = [
            c.key
            for c in children
            if c.status == "done"
            and store.load_chunk(job.key, c.chunk_start, c.chunk_stop) is None
        ]
        if lost:
            report.unmergeable_parents.append(job.key)
            if repair:
                n = queue.requeue_children(job.key, lost)
                if n:
                    report.repairs.append(
                        f"re-queued {n} lost chunk(s) of sharded parent {job.key}"
                    )

    # -- orphan chunk files -------------------------------------------
    if store.enabled and store.root.is_dir():
        for path in sorted(store.root.glob("*.chunk-*.json")):
            parent_key = path.name.split(".chunk-")[0]
            parent = by_key.get(parent_key)
            if parent is not None and parent.status == "sharded":
                continue
            report.orphan_chunks.append(path.name)
            if repair:
                path.unlink(missing_ok=True)
                report.repairs.append(f"deleted orphan chunk entry {path.name}")

    for name, items in (
        ("done_without_entry", report.done_without_entry),
        ("corrupt_entries", report.corrupt_entries),
        ("unmergeable_parents", report.unmergeable_parents),
        ("orphan_chunks", report.orphan_chunks),
        ("dead_worker_leases", report.dead_worker_leases),
    ):
        if items:
            counters.inc(name, len(items))
    if report.repairs:
        counters.inc("repairs", len(report.repairs))
    return report


def _requeue_done(queue: JobQueue, key: str) -> bool:
    """Flip one ``done``-but-resultless job back to ``queued``."""
    def body(conn):
        cur = conn.execute(
            "UPDATE jobs SET status = 'queued', attempts = 0, error = NULL,"
            " lease_owner = NULL, lease_expires = NULL, finished_at = NULL"
            " WHERE key = ? AND status = 'done'",
            (key,),
        )
        return cur.rowcount > 0

    requeued = queue._write_txn(body)
    if requeued:
        queue.notify_submit.notify()
    return requeued
