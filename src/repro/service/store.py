"""Concurrently-safe shared result store.

The :class:`~repro.harness.cache.ResultCache` is already safe for
*threads* (distinct keys write distinct files; writes are atomic).
Sharing one directory between *processes* — service workers, in-process
campaigns, multiple clients — adds one failure mode: two processes
missing on the same key would both simulate it.  Harmless for
correctness (the runs are deterministic, so the ``os.replace`` race
loser overwrites the winner with identical bytes) but wasteful, and
the whole point of a shared store is that duplicate submissions cost
nothing.

:class:`SharedResultStore` therefore serialises the miss-run-store
section under a per-key ``flock`` file lock (``.locks/<key>.lock``
next to the entries): the lock loser re-checks the store on entry and
is served the winner's result with zero re-simulation.  Reads stay
lock-free — entries are immutable once written (atomic rename), so a
reader either sees a complete envelope or nothing.

Counters on top of the cache's: ``lock_waits`` (a miss found the key
locked and blocked) and ``shared_hits`` (the re-check under the lock
was served another process's result).

The store is also the *assembly point for sharded cells*: workers
publish each finished rep slice as an immutable **chunk entry**
(``<key>.chunk-<start>-<stop>.json``, atomic rename like everything
else), and the last finisher — or the collecting client, whoever gets
there — merges the slices in rep-index order into the ordinary
envelope under the parent key (:meth:`SharedResultStore.merge_chunks`,
serialised by the same per-key flock).  The merge goes through the
cache's own ``store_entry``, so a sharded cell's envelope is
byte-identical to an in-process run's: JSON float round-trip is exact,
rep *i* was seeded from its spawn key regardless of which worker ran
it, and partial results (skip-policy failures inside a chunk)
quarantine exactly as they would in-process.  Chunk files are deleted
after a successful merge (``chunk_merges`` counts them).

Every envelope — primary and chunk — is sealed with a sha256 of its
own payload at publish time and verified on read (see
:meth:`~repro.harness.cache.ResultCache._seal`): a bit-flipped entry is
moved aside to ``<name>.corrupt``, counted as
``integrity_quarantined``, and transparently re-simulated.  A corrupt
*chunk* is treated as missing, so the merge aborts cleanly and the
slice re-runs instead of poisoning the merged cell.
"""

from __future__ import annotations

import json
import logging
import os
import time
from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np

from repro.harness.cache import ResultCache
from repro.harness.experiment import ResultSet
from repro.harness.faults import FailureRecord, atomic_write_text

try:  # POSIX only; the store degrades to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = ["SharedResultStore"]

_log = logging.getLogger(__name__)


class SharedResultStore(ResultCache):
    """A :class:`ResultCache` whose miss path is multi-process safe.

    Drop-in: same constructor, same ``get_or_run`` contract, same
    envelopes on disk — an in-process campaign and a fleet of service
    workers can point at one directory and serve each other's results.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._locks_dir = self.root / ".locks"

    def stats(self) -> dict:
        out = super().stats()
        counts = self._counters.as_dict()
        out["lock_waits"] = int(counts.get("lock_waits", 0))
        out["shared_hits"] = int(counts.get("shared_hits", 0))
        out["chunk_merges"] = int(counts.get("chunk_merges", 0))
        return out

    @contextmanager
    def _key_lock(self, key: str):
        """Exclusive advisory lock for ``key``'s miss section.

        Yields ``True`` when the lock was contended (another process
        held it when we arrived).  Lock files are tiny and reusable;
        they are never deleted while the store lives, so the
        inode-based flock cannot race a concurrent unlink.
        """
        if fcntl is None or not self.enabled:  # pragma: no cover - non-POSIX
            yield False
            return
        self._locks_dir.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._locks_dir / f"{key}.lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            contended = False
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except BlockingIOError:
                contended = True
                self._count("lock_waits")
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield contended
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _run_and_store(self, spec, stack, key, executor, on_run, policy, t0):
        with self._key_lock(key):
            # Unconditional double-check: even an uncontended acquire can
            # follow another process's complete run-release (it published
            # between our miss and our lock), so trusting the pre-lock
            # miss would re-simulate.  Reading a missing entry is cheap.
            rs = self.load_entry(key, spec)
            if rs is not None:
                self._count("shared_hits")
                if self.journal is not None:
                    self.journal.record_done(
                        key,
                        label=spec.label(),
                        duration_s=time.perf_counter() - t0,
                        attempt=0,
                    )
                return rs
            return super()._run_and_store(spec, stack, key, executor, on_run, policy, t0)

    def load_for(self, spec, noise=None) -> Optional[ResultSet]:
        """Lock-free read of a cell's entry (``None`` when absent)."""
        spec, _stack, key = self.resolve_cell(spec, noise)
        return self.load_entry(key, spec)

    # ------------------------------------------------------------------
    # sharded cells: chunk entries + merge
    # ------------------------------------------------------------------
    def chunk_path(self, key: str, start: int, stop: int):
        """Where the ``[start, stop)`` rep slice of ``key`` lands."""
        return self.root / f"{key}.chunk-{start}-{stop}.json"

    def store_chunk(self, key: str, start: int, stop: int, results: Sequence) -> None:
        """Publish one finished rep slice of a sharded cell (atomic).

        ``results`` are :class:`~repro.harness.chunkrunner.RepResult`\\ s
        for exactly the indices ``range(start, stop)``, in order.  The
        slice envelope round-trips floats exactly, so the merged cell is
        bit-identical to one computed in a single process.  Idempotent:
        a re-leased chunk (dead worker, lost lease) rewrites identical
        bytes.
        """
        indices = [r.index for r in results]
        if indices != list(range(start, stop)):
            raise ValueError(
                f"chunk [{start}, {stop}) of {key} got rep indices {indices}"
            )
        from repro.harness.cache import _KEY_VERSION

        envelope = self._seal(
            {
                "key_version": _KEY_VERSION,
                "parent": key,
                "start": start,
                "stop": stop,
                "times": [r.exec_time for r in results],
                "anomalies": [r.anomaly for r in results],
                "failures": [
                    r.error.to_dict() for r in results if r.error is not None
                ],
            }
        )
        if self.enabled:
            atomic_write_text(self.chunk_path(key, start, stop), envelope)

    def load_chunk(self, key: str, start: int, stop: int) -> Optional[dict]:
        """One slice envelope, or ``None`` when absent/torn/stale."""
        from repro.harness.cache import _KEY_VERSION

        path = self.chunk_path(key, start, stop)
        if not (self.enabled and path.exists()):
            return None
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if not self._verify_sealed(data):
            # A bit-flipped slice must never enter a merge: quarantine
            # it like a primary entry; the caller treats it as missing
            # and the chunk re-simulates.
            self._quarantine_corrupt(path, f"{key}[{start}:{stop}]")
            return None
        if (
            data.get("key_version") != _KEY_VERSION
            or len(data.get("times", [])) != stop - start
        ):
            return None
        return data

    def merge_chunks(
        self,
        spec,
        stack,
        key: str,
        chunks: Sequence[tuple[int, int]],
    ) -> ResultSet:
        """Assemble a sharded cell's chunk entries into its envelope.

        ``spec`` must be rep-resolved (the job rows carry it that way)
        and ``chunks`` must partition ``range(spec.reps)``.  Runs under
        the per-key flock with a double-check, so the last-finishing
        worker and a collecting client can race freely: one merges, the
        other is served.  The merged :class:`ResultSet` goes through
        ``store_entry`` — same envelope bytes as an in-process run,
        same ``.partial.json`` quarantine when a skip policy left
        failed reps.  Chunk files are removed after a successful merge.
        """
        spans = sorted((int(a), int(b)) for a, b in chunks)
        expected = []
        cursor = 0
        for start, stop in spans:
            expected.append((cursor, start))
            cursor = stop
        if any(a != b for a, b in expected) or cursor != spec.reps:
            raise ValueError(
                f"chunks {spans} do not partition range({spec.reps}) for {key}"
            )
        with self._key_lock(key):
            rs = self.load_entry(key, spec)
            if rs is not None:
                self._count("shared_hits")
                return rs
            times = np.empty(spec.reps, dtype=np.float64)
            anomalies: list = [None] * spec.reps
            failures: list[FailureRecord] = []
            for start, stop in spans:
                data = self.load_chunk(key, start, stop)
                if data is None:
                    raise RuntimeError(
                        f"missing or torn chunk entry [{start}, {stop}) for {key}; "
                        "cannot merge (the chunk job will re-run on re-lease)"
                    )
                times[start:stop] = data["times"]
                anomalies[start:stop] = data["anomalies"]
                failures.extend(
                    FailureRecord.from_dict(f) for f in data.get("failures", [])
                )
            failures.sort(key=lambda f: f.index)
            rs = ResultSet(
                spec=spec,
                times=times,
                anomalies=anomalies,
                injected=stack is not None and bool(stack),
                failures=failures,
            )
            self.store_entry(key, spec, stack, rs)
            self._count("chunk_merges")
            for start, stop in spans:
                self.chunk_path(key, start, stop).unlink(missing_ok=True)
            return rs
