"""Concurrently-safe shared result store.

The :class:`~repro.harness.cache.ResultCache` is already safe for
*threads* (distinct keys write distinct files; writes are atomic).
Sharing one directory between *processes* — service workers, in-process
campaigns, multiple clients — adds one failure mode: two processes
missing on the same key would both simulate it.  Harmless for
correctness (the runs are deterministic, so the ``os.replace`` race
loser overwrites the winner with identical bytes) but wasteful, and
the whole point of a shared store is that duplicate submissions cost
nothing.

:class:`SharedResultStore` therefore serialises the miss-run-store
section under a per-key ``flock`` file lock (``.locks/<key>.lock``
next to the entries): the lock loser re-checks the store on entry and
is served the winner's result with zero re-simulation.  Reads stay
lock-free — entries are immutable once written (atomic rename), so a
reader either sees a complete envelope or nothing.

Counters on top of the cache's: ``lock_waits`` (a miss found the key
locked and blocked) and ``shared_hits`` (the re-check under the lock
was served another process's result).
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager
from typing import Optional

from repro.harness.cache import ResultCache
from repro.harness.experiment import ResultSet

try:  # POSIX only; the store degrades to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = ["SharedResultStore"]

_log = logging.getLogger(__name__)


class SharedResultStore(ResultCache):
    """A :class:`ResultCache` whose miss path is multi-process safe.

    Drop-in: same constructor, same ``get_or_run`` contract, same
    envelopes on disk — an in-process campaign and a fleet of service
    workers can point at one directory and serve each other's results.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._locks_dir = self.root / ".locks"

    def stats(self) -> dict:
        out = super().stats()
        counts = self._counters.as_dict()
        out["lock_waits"] = int(counts.get("lock_waits", 0))
        out["shared_hits"] = int(counts.get("shared_hits", 0))
        return out

    @contextmanager
    def _key_lock(self, key: str):
        """Exclusive advisory lock for ``key``'s miss section.

        Yields ``True`` when the lock was contended (another process
        held it when we arrived).  Lock files are tiny and reusable;
        they are never deleted while the store lives, so the
        inode-based flock cannot race a concurrent unlink.
        """
        if fcntl is None or not self.enabled:  # pragma: no cover - non-POSIX
            yield False
            return
        self._locks_dir.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._locks_dir / f"{key}.lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            contended = False
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except BlockingIOError:
                contended = True
                self._count("lock_waits")
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield contended
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _run_and_store(self, spec, stack, key, executor, on_run, policy, t0):
        with self._key_lock(key):
            # Unconditional double-check: even an uncontended acquire can
            # follow another process's complete run-release (it published
            # between our miss and our lock), so trusting the pre-lock
            # miss would re-simulate.  Reading a missing entry is cheap.
            rs = self.load_entry(key, spec)
            if rs is not None:
                self._count("shared_hits")
                if self.journal is not None:
                    self.journal.record_done(
                        key,
                        label=spec.label(),
                        duration_s=time.perf_counter() - t0,
                        attempt=0,
                    )
                return rs
            return super()._run_and_store(spec, stack, key, executor, on_run, policy, t0)

    def load_for(self, spec, noise=None) -> Optional[ResultSet]:
        """Lock-free read of a cell's entry (``None`` when absent)."""
        spec, _stack, key = self.resolve_cell(spec, noise)
        return self.load_entry(key, spec)
