"""Supervisor: spawn, monitor, and heal a fleet of worker processes.

``repro-noise service start --workers N --supervise`` runs one
:class:`Supervisor` instead of an in-process worker loop: it spawns
``N`` child worker processes (each a plain ``repro-noise service
start``), watches them, and turns the service's *fail-open* failure
modes into *self-healing* ones:

* **Observed deaths.**  When a child exits abnormally the supervisor
  calls :meth:`~repro.service.queue.JobQueue.report_worker_death`
  immediately — the corpse's leases are released (and its death
  recorded, feeding poison detection) without waiting out the lease
  expiry, and its registry row flips to ``dead`` so ``service status``
  stops showing it as active.

* **Restarts with seeded backoff.**  A crashed slot is restarted after
  an exponential backoff drawn from a ``random.Random`` seeded per
  slot, so a supervised fleet's restart schedule is reproducible for a
  given seed.  Each incarnation gets a fresh worker id
  (``{prefix}-w{slot}-r{restart}``): *distinct* ids per restart are
  load-bearing — they are what lets the queue's poison detector count
  how many different workers one job has killed.

* **Crash-loop detection.**  A slot that crashes
  ``crash_loop_threshold`` times within ``crash_loop_window_s`` is
  parked instead of restarted (a fleet-wide fault — bad binary, full
  disk — must not turn into a fork bomb).  The supervisor exits once
  every slot is parked or finished.

* **Graceful drain.**  On SIGTERM/SIGINT the supervisor forwards the
  signal: children stop leasing, finish their current job, release
  cleanly, and exit.  A second signal forwards again, tripping each
  worker's own fail-fast path (release the held lease now, exit); any
  child still alive after ``kill_grace_s`` is SIGKILLed — at which
  point its lease is released by ``report_worker_death`` like any
  other corpse.

The supervisor holds its own queue connection but never leases; all
its writes are registry/lease bookkeeping.  Like everything else in
the service, supervision affects *when and where* cells run, never
what they compute — a supervised, crash-riddled campaign renders
byte-identical to a clean in-process run.
"""

from __future__ import annotations

import logging
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro import telemetry as _telemetry
from repro.service.queue import JobQueue

__all__ = ["Supervisor", "WorkerSlot", "DEFAULT_CRASH_LOOP_THRESHOLD"]

_log = logging.getLogger(__name__)

#: crashes within the window that park a slot instead of restarting it
DEFAULT_CRASH_LOOP_THRESHOLD = 3
#: the sliding window for crash-loop detection
DEFAULT_CRASH_LOOP_WINDOW_S = 60.0
#: seconds after the second drain signal before stragglers are SIGKILLed
DEFAULT_KILL_GRACE_S = 10.0


@dataclass
class WorkerSlot:
    """One supervised position in the fleet (survives its processes)."""

    index: int
    proc: Optional[subprocess.Popen] = None
    worker_id: str = ""
    restarts: int = 0
    #: monotonic timestamps of recent crashes (crash-loop window)
    crash_times: list = field(default_factory=list)
    #: a parked slot crashed into a loop and is not restarted
    parked: bool = False
    #: when set, the slot is sleeping out a restart backoff
    restart_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class Supervisor:
    """Spawn and monitor ``workers`` child worker processes.

    ``command_factory(worker_id) -> list[str]`` builds each child's
    argv; the default runs ``python -m repro service start`` against
    this supervisor's queue/store.  Tests inject trivial commands to
    exercise restart/backoff/crash-loop logic without the full stack.
    ``env`` (when given) replaces the inherited child environment —
    chaos directives travel to children through it, never through the
    supervisor's own process environment.
    """

    def __init__(
        self,
        queue: JobQueue,
        store_root: Optional[os.PathLike | str] = None,
        workers: int = 2,
        id_prefix: Optional[str] = None,
        seed: int = 0,
        drain: bool = False,
        lease_s: Optional[float] = None,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        crash_loop_threshold: int = DEFAULT_CRASH_LOOP_THRESHOLD,
        crash_loop_window_s: float = DEFAULT_CRASH_LOOP_WINDOW_S,
        kill_grace_s: float = DEFAULT_KILL_GRACE_S,
        poll_s: float = 0.2,
        command_factory: Optional[Callable[[str], Sequence[str]]] = None,
        env: Optional[dict] = None,
        extra_args: Sequence[str] = (),
        monitor_port: Optional[int] = None,
        monitor_host: str = "127.0.0.1",
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.queue = queue
        self.store_root = store_root
        self.id_prefix = id_prefix or f"sup{os.getpid()}"
        self.seed = seed
        self.drain = drain
        self.lease_s = lease_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window_s = crash_loop_window_s
        self.kill_grace_s = kill_grace_s
        self.poll_s = poll_s
        self.command_factory = command_factory
        self.env = env
        self.extra_args = list(extra_args)
        #: when set, run() serves the read-only monitor endpoint on this
        #: port for the fleet's lifetime (``0`` = ephemeral)
        self.monitor_port = monitor_port
        self.monitor_host = monitor_host
        self.monitor = None
        self.slots = [WorkerSlot(index=i) for i in range(workers)]
        #: per-slot deterministic backoff jitter
        self._rngs = [random.Random(f"{seed}:{i}") for i in range(workers)]
        self._stop = threading.Event()
        self._drain_signals = 0
        # Per-instance (not the shared singleton): stats() reports this
        # supervisor's fleet, not every fleet the process ever ran.
        self._counters = _telemetry.new_group("service_supervisor")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        counts = self._counters.as_dict()
        return {
            key: int(counts.get(key, 0))
            for key in ("spawned", "restarts", "deaths_reported", "crash_loops")
        }

    def _worker_id(self, slot: WorkerSlot) -> str:
        return f"{self.id_prefix}-w{slot.index}-r{slot.restarts}"

    def _command(self, worker_id: str) -> list[str]:
        if self.command_factory is not None:
            return list(self.command_factory(worker_id))
        argv = [
            sys.executable,
            "-m",
            "repro",
            "service",
            "start",
            "--queue",
            str(self.queue.path),
            "--worker-id",
            worker_id,
        ]
        if self.store_root is not None:
            argv += ["--store", str(self.store_root)]
        if self.lease_s is not None:
            argv += ["--lease", str(self.lease_s)]
        if self.drain:
            argv += ["--drain"]
        return argv + self.extra_args

    def _backoff(self, slot: WorkerSlot) -> float:
        """Seeded exponential backoff for this slot's next restart."""
        base = self.backoff_base_s * (2 ** max(0, slot.restarts - 1))
        jitter = 0.5 + 0.5 * self._rngs[slot.index].random()
        return min(self.backoff_cap_s, base * jitter)

    # ------------------------------------------------------------------
    def _spawn(self, slot: WorkerSlot) -> None:
        worker_id = self._worker_id(slot)
        slot.worker_id = worker_id
        slot.restart_at = None
        slot.proc = subprocess.Popen(
            self._command(worker_id),
            env=self.env,
            start_new_session=False,
        )
        self._counters.inc("spawned")
        _log.info(
            "supervisor: spawned %s (pid %d, slot %d, restart %d)",
            worker_id,
            slot.proc.pid,
            slot.index,
            slot.restarts,
        )

    def _on_exit(self, slot: WorkerSlot, returncode: int, now: float) -> None:
        """A child exited: clean exits park the slot (drain mode done);
        crashes release leases, then restart or crash-loop-park."""
        pid = slot.proc.pid if slot.proc is not None else None
        slot.proc = None
        if returncode == 0:
            # Finished cleanly (drained, or graceful shutdown): the
            # worker completed/released its lease itself.
            slot.parked = True
            return
        _log.warning(
            "supervisor: %s (pid %s) died with code %s",
            slot.worker_id,
            pid,
            returncode,
        )
        released = self.queue.report_worker_death(
            slot.worker_id, pid=pid, detail=f"worker exited with code {returncode}"
        )
        self._counters.inc("deaths_reported")
        if released:
            _log.warning(
                "supervisor: released %d lease(s) held by %s: %s",
                len(released),
                slot.worker_id,
                ", ".join(released),
            )
        if self._stop.is_set():
            # Shutdown in progress: leases are released above, but no
            # replacement is spawned.
            slot.parked = True
            return
        slot.crash_times = [
            t for t in slot.crash_times if now - t <= self.crash_loop_window_s
        ]
        slot.crash_times.append(now)
        if len(slot.crash_times) >= self.crash_loop_threshold:
            slot.parked = True
            self._counters.inc("crash_loops")
            _log.error(
                "supervisor: slot %d crash-looped (%d crashes in %.0fs); parking it",
                slot.index,
                len(slot.crash_times),
                self.crash_loop_window_s,
            )
            return
        slot.restarts += 1
        backoff = self._backoff(slot)
        slot.restart_at = now + backoff
        self._counters.inc("restarts")
        _log.warning(
            "supervisor: restarting slot %d as %s in %.2fs",
            slot.index,
            self._worker_id(slot),
            backoff,
        )

    # ------------------------------------------------------------------
    def _signal_children(self, signum: int) -> None:
        for slot in self.slots:
            if slot.alive:
                try:
                    slot.proc.send_signal(signum)
                except OSError:  # pragma: no cover - exited under us
                    pass

    def install_signal_handlers(self) -> None:
        """Drain protocol: first SIGTERM/SIGINT forwards the drain
        request; the second trips the workers' fail-fast path and arms
        a SIGKILL deadline for stragglers."""
        def handler(signum, frame):
            self._drain_signals += 1
            self._stop.set()
            self._signal_children(signal.SIGTERM)
            if self._drain_signals == 1:
                _log.warning(
                    "supervisor: drain requested; workers finish their "
                    "current job (signal again to fail fast)"
                )
            else:
                _log.warning("supervisor: fail-fast requested")

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Supervise until every slot is parked/finished (or, in
        ``drain`` mode, until the fleet drains the queue).  Returns the
        number of abnormal child deaths observed."""
        deaths = 0
        if self.monitor_port is not None:
            # The observability plane rides on the supervisor: it owns
            # no worker and leases nothing, so serving read-only HTTP
            # from this process cannot perturb the fleet.
            from repro.service.monitor import MonitorServer
            from repro.service.store import SharedResultStore

            store = SharedResultStore(self.store_root)
            self.monitor = MonitorServer(
                self.queue, store, host=self.monitor_host, port=self.monitor_port
            ).start()
            _log.info("supervisor: monitor serving on %s", self.monitor.url)
        for slot in self.slots:
            self._spawn(slot)
        kill_deadline: Optional[float] = None
        try:
            while True:
                now = time.monotonic()
                for slot in self.slots:
                    if slot.proc is not None:
                        rc = slot.proc.poll()
                        if rc is not None:
                            if rc != 0 and not self._stop.is_set():
                                deaths += 1
                            self._on_exit(slot, rc, now)
                    elif (
                        not slot.parked
                        and slot.restart_at is not None
                        and now >= slot.restart_at
                        and not self._stop.is_set()
                    ):
                        self._spawn(slot)
                stopping = self._stop.is_set()
                pending = any(
                    slot.proc is not None
                    or (
                        not slot.parked
                        and not stopping
                        and slot.restart_at is not None
                    )
                    for slot in self.slots
                )
                if not pending:
                    break
                if stopping:
                    if self._drain_signals >= 2 and kill_deadline is None:
                        kill_deadline = now + self.kill_grace_s
                    if kill_deadline is not None and now >= kill_deadline:
                        for slot in self.slots:
                            if slot.alive:
                                _log.error(
                                    "supervisor: SIGKILLing straggler %s",
                                    slot.worker_id,
                                )
                                slot.proc.kill()
                time.sleep(self.poll_s)
        finally:
            # Never leave children behind, whatever took us down.
            for slot in self.slots:
                if slot.alive:
                    slot.proc.kill()
                    slot.proc.wait()
                    self.queue.report_worker_death(
                        slot.worker_id,
                        pid=slot.proc.pid,
                        detail="killed by exiting supervisor",
                    )
            if self.monitor is not None:
                self.monitor.stop()
                self.monitor = None
        return deaths
