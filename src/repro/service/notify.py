"""Event-driven wakeup channel for the campaign service.

Workers waiting for work and clients waiting for results used to poll
the queue on a fixed interval — a latency tax of up to one poll period
per state transition, multiplied across every idle worker.  A
:class:`NotifyChannel` replaces the sleep with a *wakeable* wait:

* each waiter :meth:`subscribes <NotifyChannel.subscribe>` by creating
  a private named pipe (fifo) under the channel directory and blocking
  in ``select()`` on its read end;
* each state change :meth:`notifies <NotifyChannel.notify>` by writing
  one byte into every subscriber fifo (non-blocking; a full pipe means
  the subscriber already has a wake pending).

The channel is purely an *optimisation*: a missed or spurious wakeup is
harmless because every waiter re-checks the queue on wake and still
falls back to its old poll interval as a timeout.  Correctness never
depends on delivery — which is why the fifo write ignores every error.

Two channels exist per queue (``<queue>.notify/submit`` wakes idle
workers, ``<queue>.notify/complete`` wakes waiting clients); both
degrade gracefully:

* ``REPRO_NOTIFY=0`` or a platform without ``os.mkfifo`` falls back to
  a :class:`_PollSubscription` that samples ``PRAGMA data_version``
  (any *other* connection's commit bumps it) at a sub-interval of the
  poll period — still cheaper than a full queue query;
* a subscriber that dies without :meth:`Subscription.close` leaves a
  readerless fifo behind; the next ``notify()`` observes ``ENXIO`` and
  reaps it once it is old enough to not be a mid-``subscribe`` race.
"""

from __future__ import annotations

import errno
import itertools
import os
import select
import time
from pathlib import Path
from typing import Callable, Optional

from repro import telemetry as _telemetry

__all__ = ["NotifyChannel", "Subscription", "notify_enabled"]

#: environment switch: ``0`` disables the fifo channel (poll fallback)
_ENV = "REPRO_NOTIFY"

#: a readerless fifo younger than this may be a subscriber mid-open;
#: older, it belongs to a dead process and is reaped on notify
_STALE_FIFO_S = 30.0

_seq = itertools.count()
_UNSET = object()


def notify_enabled() -> bool:
    """Whether the fifo-based channel is available and not disabled."""
    if os.environ.get(_ENV, "") == "0":
        return False
    return hasattr(os, "mkfifo")


class Subscription:
    """One waiter's read end of a channel: a private non-blocking fifo."""

    def __init__(self, path: Path, fd: int):
        self._path = path
        self._fd: Optional[int] = fd

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for a wakeup; drain and
        report whether one arrived.  Always a *hint* — the caller
        re-checks its condition either way."""
        if self._fd is None:
            time.sleep(max(0.0, timeout))
            return False
        try:
            ready, _, _ = select.select([self._fd], [], [], max(0.0, timeout))
        except (OSError, ValueError):  # pragma: no cover - fd torn down
            time.sleep(max(0.0, timeout))
            return False
        if not ready:
            return False
        # Drain every pending byte so coalesced notifications cost one
        # wake, not one wake each.
        while True:
            try:
                chunk = os.read(self._fd, 4096)
            except BlockingIOError:
                break
            except OSError:  # pragma: no cover - fd torn down
                break
            if len(chunk) < 4096:  # includes b"": spurious hangup wake
                break
        return True

    def close(self) -> None:
        """Idempotent teardown; the fifo is unlinked even if closing
        the descriptor raises, so no exit path can leak an endpoint."""
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                os.close(fd)
            finally:
                self._path.unlink(missing_ok=True)
        else:
            self._path.unlink(missing_ok=True)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PollSubscription(Subscription):
    """Fallback waiter: sample a change probe (``PRAGMA data_version``)
    at a sub-interval instead of blocking on a fifo.

    Own-connection writes do not bump ``data_version``, so in-process
    same-connection changes are only seen at the full timeout — which is
    exactly the pre-notify behaviour and still correct.
    """

    def __init__(self, probe: Optional[Callable[[], object]] = None, interval: float = 0.05):
        self._probe = probe
        self._interval = interval
        self._last: object = _UNSET
        if probe is not None:
            try:
                self._last = probe()
            except Exception:
                self._probe = None

    def wait(self, timeout: float) -> bool:
        if self._probe is None:
            time.sleep(max(0.0, timeout))
            return False
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            time.sleep(min(self._interval, remaining))
            try:
                value = self._probe()
            except Exception:  # pragma: no cover - probe connection died
                self._probe = None
                return False
            if value != self._last:
                self._last = value
                return True

    def close(self) -> None:
        self._probe = None


class NotifyChannel:
    """Broadcast wakeups to every subscriber of a channel directory."""

    def __init__(self, root: os.PathLike | str, enabled: Optional[bool] = None):
        self.root = Path(root)
        self.enabled = notify_enabled() if enabled is None else enabled
        self._counters = _telemetry.get_group("service_notify")

    def subscribe(self, probe: Optional[Callable[[], object]] = None) -> Subscription:
        """A fresh waiter handle; ``probe`` powers the poll fallback."""
        if not self.enabled:
            return _PollSubscription(probe)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:  # pragma: no cover - unwritable channel dir
            return _PollSubscription(probe)
        for _ in range(3):
            path = self.root / f"{os.getpid()}-{next(_seq)}.fifo"
            try:
                os.mkfifo(path)
                # O_RDWR (not O_RDONLY): the subscription holds its own
                # write end open, so the fifo never enters the persistent
                # EOF-readable state after a notifier closes — select()
                # then wakes on data only, never spins on hangup.
                return Subscription(path, os.open(path, os.O_RDWR | os.O_NONBLOCK))
            except OSError:
                continue
        return _PollSubscription(probe)  # pragma: no cover - fifo hostile fs

    def notify(self) -> int:
        """Write a wake byte to every live subscriber; returns how many
        were reached.  Never raises: delivery is best-effort by design.

        The ``torn-fifo`` chaos profile drops whole notifications here —
        the worst a torn fifo write can do, and exactly the lost-wakeup
        case the design already absorbs (waiters re-check on their poll
        timeout)."""
        if not self.enabled:
            return 0
        from repro.harness.chaos import get_chaos

        chaos = get_chaos()
        if chaos is not None and chaos.torn_fifo_fault():
            return 0
        try:
            paths = list(self.root.glob("*.fifo"))
        except OSError:  # pragma: no cover - channel dir vanished
            return 0
        reached = 0
        for path in paths:
            try:
                fd = os.open(path, os.O_WRONLY | os.O_NONBLOCK)
            except OSError as exc:
                if exc.errno == errno.ENXIO:
                    # No reader: a dead subscriber's leftover — unless it
                    # is brand new (mkfifo→open window of a live one).
                    self._reap(path)
                continue
            try:
                os.write(fd, b"\x01")
                reached += 1
            except OSError:
                # EAGAIN: pipe full — the subscriber already has a wake
                # pending, which is all a notification means anyway.
                reached += 1
            finally:
                os.close(fd)
        if reached:
            self._counters.inc("notifications_sent", reached)
        return reached

    def _reap(self, path: Path) -> None:
        try:
            if time.time() - path.stat().st_mtime > _STALE_FIFO_S:
                path.unlink(missing_ok=True)
                self._counters.inc("stale_fifos_reaped")
        except OSError:  # pragma: no cover - lost race with the owner
            pass
