"""Client front end: submit cells and sweeps, poll, collect results.

A :class:`ServiceClient` is how anything — the ``repro-noise service``
CLI, the campaign ``submit_or_run`` seam, a second user on the same
machine — talks to the service: it resolves a cell to its content-hash
key (the exact key any in-process run would compute), checks the
shared store first, and only queues work the store cannot serve.
Results are always *read from the store*, never from a worker
response channel, so a client cannot observe anything a plain
in-process run would not have produced — the float round-trip through
the envelope is exact, and tables render byte-identically.

Sweeps submit every grid point up front (workers pipeline across
cells) and are recorded in the queue as ordered key lists, so any
client can later collect a sweep it did not submit.

A **shard threshold** (``shard=`` per call, per client, or
``REPRO_SHARD_REPS``) splits big cells into chunk sub-jobs at submit:
a cell with more reps than the threshold is queued as a ``sharded``
parent plus one leasable chunk per deterministic ``chunk_range`` slice,
so several workers chew one cell concurrently.  Sharding never changes
bytes — it only changes *which process* runs which rep indices, and
rep seeding is positional.  Adaptive-rep cells are never sharded (their
batch loop is inherently sequential).  Waiting is event-driven: the
client parks on the queue's complete notify channel instead of
sleeping the full poll interval between drain checks.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro import telemetry as _telemetry
from repro.harness.chunkrunner import resolved_context, shard_ranges
from repro.harness.experiment import ExperimentSpec, ResultSet, env_int
from repro.service.queue import DEFAULT_MAX_ATTEMPTS, JobQueue
from repro.service.store import SharedResultStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.experiment import NoiseLike
    from repro.harness.sweep import SweepResult

__all__ = ["ServiceClient"]

_log = logging.getLogger(__name__)


class ServiceClient:
    """Submit/poll/collect front end over a queue + shared store.

    ``shard`` is the client's default shard threshold: cells with more
    reps than this are split into chunk sub-jobs of at most ``shard``
    reps each.  ``None`` reads ``REPRO_SHARD_REPS`` (0, the default,
    disables sharding).
    """

    def __init__(
        self,
        queue: JobQueue,
        store: Optional[SharedResultStore] = None,
        client_id: Optional[str] = None,
        poll_s: float = 0.2,
        shard: Optional[int] = None,
    ):
        self.queue = queue
        self.store = store if store is not None else SharedResultStore()
        self.client_id = client_id or f"client-{os.getpid()}"
        self.poll_s = poll_s
        self.shard = shard if shard is not None else env_int("REPRO_SHARD_REPS", 0)
        self._counters = _telemetry.new_group("service_client")

    def stats(self) -> dict:
        counts = self._counters.as_dict()
        return {
            key: int(counts.get(key, 0))
            for key in (
                "submitted",
                "sharded",
                "deduplicated",
                "store_served",
                "client_merges",
                "notify_wakes",
            )
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _expected_s(spec: ExperimentSpec) -> float:
        """Scheduler input: estimated cell runtime in simulated seconds.

        The resolved-context duration estimate (a pure function of the
        spec) times the rep count.  Estimation failures are worth a
        warning, not a refusal — the scheduler degrades to not knowing.
        """
        try:
            return resolved_context(spec).expected * max(1, spec.reps)
        except Exception as exc:
            _log.warning(
                "cannot estimate runtime of %s (%s: %s); scheduling it unweighted",
                spec.label(),
                type(exc).__name__,
                exc,
            )
            return 0.0

    def _shard_threshold(self, shard: Optional[int]) -> int:
        threshold = self.shard if shard is None else shard
        return max(0, int(threshold or 0))

    def submit(
        self,
        spec: ExperimentSpec,
        noise: "NoiseLike" = None,
        priority: int = 0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        shard: Optional[int] = None,
    ) -> str:
        """Queue one cell; returns its content-hash key.

        Idempotent across clients: if the key is already queued,
        leased, sharded, or done, the existing job is shared (counted
        as ``deduplicated``).  The job record carries the rep-resolved
        spec, so the executing worker computes the identical key.

        ``shard`` (default: the client threshold) splits a cell with
        more reps than the threshold into chunk sub-jobs of at most
        that many reps each; cells the store can already serve, and
        adaptive-rep cells (their batch loop is sequential by
        construction), always submit whole.
        """
        spec, stack, key = self.store.resolve_cell(spec, noise)
        threshold = self._shard_threshold(shard)
        noise_payload = stack.to_dict() if stack is not None else None
        if (
            threshold > 0
            and spec.reps > threshold
            and spec.adaptive is None
            and self.store.enabled
            and not self.store.has_entry(key)
        ):
            chunks = [
                (r.start, r.stop) for r in shard_ranges(spec.reps, threshold)
            ]
            created = self.queue.submit_sharded(
                key,
                spec=spec.to_dict(),
                noise=noise_payload,
                label=spec.label(),
                chunks=chunks,
                priority=priority,
                expected_s=self._expected_s(spec),
                max_attempts=max_attempts,
                client=self.client_id,
            )
            if created:
                self._counters.inc("submitted")
                self._counters.inc("sharded")
            else:
                self._counters.inc("deduplicated")
            return key
        created = self.queue.submit(
            key,
            spec=spec.to_dict(),
            noise=noise_payload,
            label=spec.label(),
            priority=priority,
            expected_s=self._expected_s(spec),
            cached=self.store.has_entry(key),
            max_attempts=max_attempts,
            client=self.client_id,
        )
        self._counters.inc("submitted" if created else "deduplicated")
        return key

    def run_cell(
        self,
        spec: ExperimentSpec,
        noise: "NoiseLike" = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        shard: Optional[int] = None,
    ) -> ResultSet:
        """The ``submit_or_run`` backend: store-serve or submit-and-wait.

        A cell the store can already serve never touches the queue
        (zero re-simulation for duplicate submissions); anything else
        is queued — sharded when over the threshold — and awaited.
        Requires at least one worker draining the queue, or ``timeout``
        to bound the wait.
        """
        spec, stack, key = self.store.resolve_cell(spec, noise)
        rs = self.store.load_entry(key, spec)
        if rs is not None:
            self._counters.inc("store_served")
            return rs
        self.submit(spec, noise=stack, priority=priority, shard=shard)
        self.wait([key], timeout=timeout)
        return self._collect_one(key, spec, stack)

    def _ensure_merged(self, key: str, spec: ExperimentSpec, stack) -> None:
        """Client-side merge fallback for sharded cells.

        The last-finishing worker normally merges; but if every chunk is
        done and the envelope still is not there (merging worker died
        between ``complete_chunk`` and the merge, say), *whoever
        collects* can assemble it — the chunk entries are all the merge
        needs, and the per-key flock arbitrates a race with a
        simultaneously recovering worker.
        """
        if self.store.has_entry(key):
            return
        job = self.queue.job(key)
        if job is None or job.status != "sharded":
            return
        children = self.queue.children(key)
        if not children or any(c.status != "done" for c in children):
            return
        self.store.merge_chunks(
            spec, stack, key, [(c.chunk_start, c.chunk_stop) for c in children]
        )
        self.queue.finalize_parent(key)
        self._counters.inc("client_merges")

    def _collect_one(
        self, key: str, spec: ExperimentSpec, stack=None
    ) -> ResultSet:
        self._ensure_merged(key, spec, stack)
        rs = self.store.load_entry(key, spec)
        if rs is not None:
            return rs
        job = self.queue.job(key)
        if job is not None and job.status == "quarantined":
            raise RuntimeError(
                f"cell {spec.label()} (key {key}) is quarantined in the "
                f"dead-letter queue: {job.error} — inspect with "
                f"`repro-noise service dlq show {key}`, revive with "
                f"`dlq retry` once the cause is fixed"
            )
        detail = f": {job.error}" if job is not None and job.error else ""
        raise RuntimeError(
            f"cell {spec.label()} (key {key}) completed without a store entry{detail}"
        )

    # ------------------------------------------------------------------
    def submit_sweep(
        self,
        base: ExperimentSpec,
        noise: "NoiseLike" = None,
        priority: int = 0,
        title: Optional[str] = None,
        shard: Optional[int] = None,
        **axes: Sequence,
    ) -> str:
        """Queue a whole grid up front; returns the sweep id.

        Enumeration order matches :func:`repro.harness.sweep.sweep`
        exactly (cartesian product in axis order), so the collected
        table is row-for-row identical to the in-process one.  The id
        is a content hash of the definition: re-submitting the same
        sweep from another client converges on the same record.
        """
        from repro.harness.sweep import _SWEEPABLE

        if not axes:
            raise ValueError("sweep needs at least one axis")
        unknown = set(axes) - _SWEEPABLE
        if unknown:
            raise ValueError(
                f"cannot sweep over: {sorted(unknown)} (allowed: {sorted(_SWEEPABLE)})"
            )
        _base, stack, _ = self.store.resolve_cell(base, noise)
        names = tuple(axes)
        definition = {
            "base": base.to_dict(),
            "noise": stack.to_dict() if stack is not None else None,
            "axes": {name: list(axes[name]) for name in names},
            "order": list(names),
            "title": title,
        }
        sweep_id = hashlib.sha256(
            json.dumps(definition, sort_keys=True).encode()
        ).hexdigest()[:16]
        keys = []
        with _telemetry.span("service_sweep", axes=",".join(names), id=sweep_id):
            for combo in itertools.product(*(axes[name] for name in names)):
                spec = base.with_(**dict(zip(names, combo)))
                keys.append(
                    self.submit(spec, noise=stack, priority=priority, shard=shard)
                )
        self.queue.record_sweep(
            sweep_id, definition, keys, title=title, client=self.client_id
        )
        return sweep_id

    def collect_sweep(self, sweep_id: str) -> "SweepResult":
        """Assemble a completed sweep from the store.

        Rebuilds the grid from the recorded definition — same axis
        order, same enumeration — and loads every point's entry, so
        ``collect_sweep(submit_sweep(...)).render()`` is byte-identical
        to ``sweep(...).render()`` over the same cells.
        """
        from repro.harness.sweep import SweepResult

        record = self.queue.sweep(sweep_id)
        if record is None:
            raise KeyError(f"unknown sweep id {sweep_id!r}")
        definition = record["definition"]
        base = ExperimentSpec.from_dict(definition["base"])
        noise = definition["noise"]
        names = tuple(definition["order"])
        axes = definition["axes"]
        points: list[tuple] = []
        results: list[ResultSet] = []
        for combo in itertools.product(*(axes[name] for name in names)):
            spec = base.with_(**dict(zip(names, combo)))
            spec, stack, key = self.store.resolve_cell(spec, _revive_noise(noise))
            points.append(combo)
            results.append(self._collect_one(key, spec, stack))
        return SweepResult(axes=names, points=points, results=results)

    def run_sweep(
        self,
        base: ExperimentSpec,
        noise: "NoiseLike" = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        title: Optional[str] = None,
        shard: Optional[int] = None,
        **axes: Sequence,
    ) -> "SweepResult":
        """Submit a sweep, wait for it to drain, and collect it."""
        sweep_id = self.submit_sweep(
            base, noise=noise, priority=priority, title=title, shard=shard, **axes
        )
        keys = self.queue.sweep(sweep_id)["keys"]
        self.wait(keys, timeout=timeout)
        return self.collect_sweep(sweep_id)

    # ------------------------------------------------------------------
    def wait(
        self,
        keys: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        progress: Optional[Callable[[dict], None]] = None,
        progress_interval: float = 2.0,
    ) -> None:
        """Block until the given keys (default: everything) are neither
        queued nor leased.  Raises ``TimeoutError`` on expiry.

        Event-driven: subscribes to the queue's complete notify channel
        *before* the first drain check (no lost-wakeup window) and
        parks there between checks, with ``poll_s`` as the fallback
        timeout — so completion latency is set by the channel, not the
        poll interval, yet a lost notification only costs one period.

        ``progress`` (when given) is called with the current
        :meth:`JobQueue.counts` dict at most every
        ``progress_interval`` seconds — refreshes ride the same notify
        wakeups, never an extra polling loop (``service watch
        --interval`` is this callback printing a line).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        next_progress = time.monotonic() + progress_interval
        subscription = self.queue.notify_complete.subscribe(
            probe=self.queue.data_version
        )
        try:
            while not self.queue.drained(keys):
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"queue did not drain within {timeout:.1f}s "
                        f"(status: {self.queue.counts()})"
                    )
                if progress is not None and time.monotonic() >= next_progress:
                    progress(self.queue.counts())
                    next_progress = time.monotonic() + progress_interval
                remaining = self.poll_s
                if deadline is not None:
                    remaining = min(remaining, max(0.0, deadline - time.monotonic()))
                if progress is not None:
                    remaining = min(
                        remaining, max(0.05, next_progress - time.monotonic())
                    )
                if subscription.wait(remaining):
                    self._counters.inc("notify_wakes")
        finally:
            subscription.close()

    def status(self, lost_after_s: Optional[float] = None) -> dict:
        """Queue counts, per-sweep progress, worker fleet liveness (with
        the heartbeat-derived ``lost`` state), DLQ summary, and store
        statistics."""
        from repro.service.queue import DEFAULT_LOST_AFTER_S, _STATUSES

        if lost_after_s is None:
            lost_after_s = DEFAULT_LOST_AFTER_S
        counts = self.queue.counts()
        sweeps = []
        for sweep_id in self.queue.sweep_ids():
            record = self.queue.sweep(sweep_id)
            states = dict.fromkeys(_STATUSES, 0)
            for key in record["keys"]:
                job = self.queue.job(key)
                if job is not None:
                    states[job.status] += 1
            sweeps.append(
                {
                    "id": sweep_id,
                    "title": record["title"],
                    "cells": len(record["keys"]),
                    **states,
                }
            )
        now = time.time()
        workers = [
            {
                "id": info.id,
                "pid": info.pid,
                "state": info.derived_state(now, lost_after_s),
                "heartbeat_age_s": round(info.heartbeat_age(now), 1),
                "jobs_done": info.jobs_done,
                "current_key": info.current_key,
                "reps_done": info.reps_done,
            }
            for info in self.queue.workers()
        ]
        dlq = [
            {"key": job.key, "label": job.label, "error": job.error}
            for job in self.queue.dlq_list()
        ]
        return {
            "jobs": counts,
            "sweeps": sweeps,
            "workers": workers,
            "dlq": dlq,
            "store": self.store.stats(),
        }


def _revive_noise(payload):
    """Revive a queue-recorded noise payload (``None`` stays ``None``)."""
    if payload is None:
        return None
    from repro.noise.base import NoiseStack

    return NoiseStack.from_dict(payload)
