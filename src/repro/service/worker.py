"""Service worker: lease jobs, execute, stream results to the store.

A worker is a plain process (``repro-noise service start``) around the
*unchanged* execution stack: each leased job goes through
``SharedResultStore.get_or_run`` → ``run_experiment`` → the configured
:class:`~repro.harness.executor.Executor` (serial or process pool) and
whatever :class:`~repro.harness.faults.FaultPolicy` / telemetry the
worker was started with.  Nothing about execution knows it is running
under a lease, which is precisely why service results are bit-identical
to in-process ones: determinism lives in content (per-rep spawn-key
seeding), never in the transport.

While a job runs, a daemon heartbeat thread renews its lease at a
third of the lease interval.  A SIGKILLed worker stops heartbeating
and its leases expire; the queue re-leases the jobs to the next worker,
which re-runs them from their original seeds — or serves them straight
from the store if the dead worker got far enough to publish.  The
job's ``attempts`` field feeds the re-lease budget; rep-level retries
inside an attempt stay governed by the fault policy, exactly as
in-process.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Optional

from repro import telemetry as _telemetry
from repro.harness.experiment import ExperimentSpec
from repro.noise.base import NoiseStack
from repro.service.queue import DEFAULT_LEASE_S, Job, JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import SharedResultStore

__all__ = ["Worker"]

_log = logging.getLogger(__name__)


class Worker:
    """Lease-execute-complete loop over a queue + shared store."""

    def __init__(
        self,
        queue: JobQueue,
        store: SharedResultStore,
        worker_id: Optional[str] = None,
        executor=None,
        policy=None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.5,
        scheduler: Optional[Scheduler] = None,
    ):
        self.queue = queue
        self.store = store
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.executor = executor
        self.policy = policy
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._stop = threading.Event()
        self._counters = _telemetry.new_group("service_worker")

    def stop(self) -> None:
        """Ask the run loop to exit after the current job."""
        self._stop.set()

    def stats(self) -> dict:
        counts = self._counters.as_dict()
        return {
            key: int(counts.get(key, 0))
            for key in ("jobs_done", "jobs_failed", "lease_losses", "renewals")
        }

    # ------------------------------------------------------------------
    def _heartbeat(self, job: Job, lost: threading.Event) -> threading.Thread:
        """Renew ``job``'s lease until stopped; flag ``lost`` if it slips."""
        def beat():
            interval = max(0.1, self.lease_s / 3.0)
            while not lost.wait(interval):
                if self.queue.renew(job.key, self.worker_id, self.lease_s):
                    self._counters.inc("renewals")
                else:
                    self._counters.inc("lease_losses")
                    lost.set()
                    return

        thread = threading.Thread(target=beat, daemon=True, name=f"hb-{job.key[:8]}")
        thread.start()
        return thread

    def run_job(self, job: Job) -> bool:
        """Execute one leased job; returns success.

        The spec arrives rep-resolved from submit (``resolve_cell``
        pinned the environment-defaulted counts), so the key this
        worker's ``get_or_run`` computes equals the job key and the
        result lands exactly where every client looks for it.
        """
        spec = ExperimentSpec.from_dict(job.spec)
        stack = NoiseStack.from_dict(job.noise) if job.noise is not None else None
        lost = threading.Event()
        heartbeat = self._heartbeat(job, lost)
        try:
            with _telemetry.span("service_job", key=job.key, label=job.label):
                self.store.get_or_run(
                    spec, noise=stack, executor=self.executor, policy=self.policy
                )
        except Exception as exc:
            lost.set()
            heartbeat.join()
            self._counters.inc("jobs_failed")
            _log.warning(
                "job %s (%s) failed in %s: %s: %s",
                job.key,
                job.label,
                self.worker_id,
                type(exc).__name__,
                exc,
            )
            self.queue.fail(job.key, self.worker_id, f"{type(exc).__name__}: {exc}")
            return False
        lost.set()
        heartbeat.join()
        if self.queue.complete(job.key, self.worker_id):
            self._counters.inc("jobs_done")
        else:
            # The lease expired mid-run (e.g. a long stop-the-world
            # pause) and the job was re-leased.  The result is in the
            # store regardless — the other lease holder will be served
            # from it — so nothing is lost but the accounting.
            self._counters.inc("lease_losses")
            _log.warning(
                "job %s finished but its lease was lost; result stored anyway",
                job.key,
            )
        return True

    def run(
        self,
        drain: bool = False,
        max_jobs: Optional[int] = None,
    ) -> int:
        """The worker loop; returns the number of jobs executed.

        ``drain=True`` exits once the queue has no queued or leased
        work; otherwise the loop polls until :meth:`stop` (or
        ``max_jobs``).
        """
        done = 0
        while not self._stop.is_set():
            if max_jobs is not None and done >= max_jobs:
                break
            leased = self.queue.lease(
                self.worker_id, limit=1, lease_s=self.lease_s, scheduler=self.scheduler
            )
            if not leased:
                if drain and self.queue.drained():
                    break
                time.sleep(self.poll_s)
                continue
            for job in leased:
                self.run_job(job)
                done += 1
        return done
