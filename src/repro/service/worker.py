"""Service worker: lease jobs, execute, stream results to the store.

A worker is a plain process (``repro-noise service start``) around the
*unchanged* execution stack: each leased job goes through
``SharedResultStore.get_or_run`` → ``run_experiment`` → the configured
:class:`~repro.harness.executor.Executor` (serial or process pool) and
whatever :class:`~repro.harness.faults.FaultPolicy` / telemetry the
worker was started with.  Nothing about execution knows it is running
under a lease, which is precisely why service results are bit-identical
to in-process ones: determinism lives in content (per-rep spawn-key
seeding), never in the transport.

While a job runs, a daemon heartbeat thread renews its lease at a
third of the lease interval.  A SIGKILLed worker stops heartbeating
and its leases expire; the queue re-leases the jobs to the next worker,
which re-runs them from their original seeds — or serves them straight
from the store if the dead worker got far enough to publish.  The
job's ``attempts`` field feeds the re-lease budget; rep-level retries
inside an attempt stay governed by the fault policy, exactly as
in-process.

Two kinds of job arrive from one lease call:

* **whole cells** run through ``get_or_run`` as before;
* **chunk sub-jobs** of a sharded cell run their rep slice directly on
  the :class:`~repro.harness.chunkrunner.ChunkRunner` (the same code a
  pool worker runs), publish the slice as a chunk entry, and — when the
  queue says theirs was the last slice — merge the cell and finalize
  the parent.  Seeding is per-rep, so which worker runs which slice
  can never show up in the bytes.

When the queue is empty the worker does not spin on a poll interval:
it blocks on the queue's submit :class:`~repro.service.notify.NotifyChannel`
with the poll interval as a *timeout*, so submission-to-lease latency
is microseconds with the channel live and at worst one poll period
without it.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from typing import Optional

from repro import telemetry as _telemetry
from repro.harness.chaos import get_chaos
from repro.harness.chunkrunner import DEFAULT_RUNNER
from repro.harness.experiment import ExperimentSpec
from repro.noise.base import NoiseStack
from repro.service.queue import DEFAULT_LEASE_S, Job, JobQueue, _chunk_key
from repro.service.scheduler import Scheduler
from repro.service.store import SharedResultStore

__all__ = ["Worker"]

_log = logging.getLogger(__name__)

#: minimum interval between worker-registry heartbeat writes
_REGISTRY_BEAT_S = 2.0

_telemetry.set_counter_help(
    "service_worker",
    "lease-execute loop activity (jobs, chunks, merges, lease losses, "
    "notify wakeups)",
)


class Worker:
    """Lease-execute-complete loop over a queue + shared store."""

    def __init__(
        self,
        queue: JobQueue,
        store: SharedResultStore,
        worker_id: Optional[str] = None,
        executor=None,
        policy=None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.5,
        scheduler: Optional[Scheduler] = None,
    ):
        self.queue = queue
        self.store = store
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.executor = executor
        self.policy = policy
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._stop = threading.Event()
        self._counters = _telemetry.new_group("service_worker")
        #: the job currently held, for fail-fast lease release
        self._active: Optional[Job] = None
        self._jobs_done = 0
        self._reps_done = 0
        self._last_registry_beat = 0.0

    def stop(self) -> None:
        """Ask the run loop to exit after the current job."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """Graceful-drain signal protocol for standalone worker
        processes (``repro-noise service start``):

        * first ``SIGTERM``/``SIGINT``: stop leasing, finish the
          current job, release cleanly and exit;
        * second signal: fail fast — release the held lease (attempt
          refunded) and exit *now*.

        The fail-fast release runs on a spawned thread over a **fresh
        queue connection**: the signal handler interrupts the main
        thread, which may hold the existing connection's non-reentrant
        lock mid-transaction — touching it from the handler could
        deadlock the very shutdown it implements.
        """
        def handler(signum, frame):
            if not self._stop.is_set():
                _log.warning(
                    "%s: %s received, draining (finish current job, then exit;"
                    " signal again to fail fast)",
                    self.worker_id,
                    signal.Signals(signum).name,
                )
                self._stop.set()
                return
            _log.warning(
                "%s: second %s, failing fast (releasing lease)",
                self.worker_id,
                signal.Signals(signum).name,
            )
            threading.Thread(
                target=self._fail_fast_release, daemon=True, name="fail-fast"
            ).start()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    def _fail_fast_release(self) -> None:
        try:
            queue = JobQueue(self.queue.path)
            try:
                active = self._active
                if active is not None:
                    queue.release(active.key, self.worker_id)
                queue.deregister_worker(self.worker_id, "stopped")
            finally:
                queue.close()
        except Exception:  # pragma: no cover - nothing left to save
            pass
        finally:
            os._exit(0)

    def _registry_beat(self, state: str, force: bool = False) -> None:
        """Throttled liveness stamp in the queue's workers table,
        carrying the current lease and rep progress for ``service
        top``'s current-lease / reps-per-second columns."""
        now = time.monotonic()
        if not force and now - self._last_registry_beat < _REGISTRY_BEAT_S:
            return
        self._last_registry_beat = now
        active = self._active
        try:
            self.queue.worker_heartbeat(
                self.worker_id,
                state,
                self._jobs_done,
                current_key=active.key if active is not None else None,
                reps_done=self._reps_done,
            )
        except Exception:  # pragma: no cover - queue file vanished
            _log.debug("registry heartbeat failed for %s", self.worker_id)

    def stats(self) -> dict:
        counts = self._counters.as_dict()
        return {
            key: int(counts.get(key, 0))
            for key in (
                "jobs_done",
                "jobs_failed",
                "chunks_done",
                "merges",
                "merge_retries",
                "lease_losses",
                "renewals",
                "notify_wakes",
                "idle_waits",
            )
        }

    # ------------------------------------------------------------------
    def _heartbeat(self, job: Job, lost: threading.Event) -> threading.Thread:
        """Renew ``job``'s lease until stopped; flag ``lost`` if it slips."""
        def beat():
            interval = max(0.1, self.lease_s / 3.0)
            while not lost.wait(interval):
                if self.queue.renew(job.key, self.worker_id, self.lease_s):
                    self._counters.inc("renewals")
                    self._registry_beat("busy")
                else:
                    self._counters.inc("lease_losses")
                    lost.set()
                    return

        thread = threading.Thread(target=beat, daemon=True, name=f"hb-{job.key[:8]}")
        thread.start()
        return thread

    def run_job(self, job: Job) -> bool:
        """Execute one leased job; returns success.

        The spec arrives rep-resolved from submit (``resolve_cell``
        pinned the environment-defaulted counts), so the key this
        worker's ``get_or_run`` computes equals the job key and the
        result lands exactly where every client looks for it.
        """
        spec = ExperimentSpec.from_dict(job.spec)
        stack = NoiseStack.from_dict(job.noise) if job.noise is not None else None
        lost = threading.Event()
        heartbeat = self._heartbeat(job, lost)
        try:
            with _telemetry.span("service_job", key=job.key, label=job.label):
                self.store.get_or_run(
                    spec, noise=stack, executor=self.executor, policy=self.policy
                )
        except Exception as exc:
            lost.set()
            heartbeat.join()
            self._counters.inc("jobs_failed")
            _log.warning(
                "job %s (%s) failed in %s: %s: %s",
                job.key,
                job.label,
                self.worker_id,
                type(exc).__name__,
                exc,
            )
            self.queue.fail(job.key, self.worker_id, f"{type(exc).__name__}: {exc}")
            return False
        lost.set()
        heartbeat.join()
        if self.queue.complete(job.key, self.worker_id):
            self._counters.inc("jobs_done")
        else:
            # The lease expired mid-run (e.g. a long stop-the-world
            # pause) and the job was re-leased.  The result is in the
            # store regardless — the other lease holder will be served
            # from it — so nothing is lost but the accounting.
            self._counters.inc("lease_losses")
            _log.warning(
                "job %s finished but its lease was lost; result stored anyway",
                job.key,
            )
        return True

    def run_chunk_job(self, job: Job) -> bool:
        """Execute one leased chunk sub-job; returns success.

        The rep slice ``[chunk_start, chunk_stop)`` runs on the shared
        :class:`~repro.harness.chunkrunner.ChunkRunner` — bit-identical
        to the same indices inside any in-process dispatch, because
        each rep reseeds from its own spawn key.  The finished slice is
        published as an immutable chunk entry; if the queue reports
        this was the last outstanding slice, this worker merges the
        cell into its envelope and finalizes the parent.  (A client
        racing to collect may merge first — the per-key flock makes
        that a no-op here.)
        """
        spec = ExperimentSpec.from_dict(job.spec)
        stack = NoiseStack.from_dict(job.noise) if job.noise is not None else None
        lost = threading.Event()
        heartbeat = self._heartbeat(job, lost)
        try:
            with _telemetry.span(
                "service_chunk",
                key=job.key,
                label=job.label,
                start=job.chunk_start,
                stop=job.chunk_stop,
            ):
                # A parent entry can already exist (a concurrent
                # in-process run of the same cell); computing the slice
                # again would be wasted, not wrong.
                if not self.store.has_entry(job.parent):
                    results = DEFAULT_RUNNER.run(
                        spec,
                        stack,
                        range(job.chunk_start, job.chunk_stop),
                        need_runs=False,
                        policy=self.policy,
                        base_attempt=job.attempts - 1,
                    )
                    self.store.store_chunk(
                        job.parent, job.chunk_start, job.chunk_stop, results
                    )
        except Exception as exc:
            lost.set()
            heartbeat.join()
            self._counters.inc("jobs_failed")
            _log.warning(
                "chunk %s (%s) failed in %s: %s: %s",
                job.key,
                job.label,
                self.worker_id,
                type(exc).__name__,
                exc,
            )
            self.queue.fail(job.key, self.worker_id, f"{type(exc).__name__}: {exc}")
            return False
        lost.set()
        heartbeat.join()
        last, parent = self.queue.complete_chunk(job.key, self.worker_id)
        if parent is None:
            self._counters.inc("lease_losses")
            _log.warning(
                "chunk %s finished but its lease was lost; slice stored anyway",
                job.key,
            )
            return True
        self._counters.inc("chunks_done")
        if last:
            try:
                chunks = [
                    (c.chunk_start, c.chunk_stop) for c in self.queue.children(parent)
                ]
                self.store.merge_chunks(spec, stack, parent, chunks)
                self.queue.finalize_parent(parent)
                self._counters.inc("merges")
            except Exception as exc:
                _log.warning(
                    "merge of sharded cell %s failed in %s: %s: %s",
                    parent,
                    self.worker_id,
                    type(exc).__name__,
                    exc,
                )
                # Self-healing first: a merge usually fails because a
                # slice's store entry went missing or flunked integrity
                # verification — re-queue exactly those chunks (bounded
                # by their attempt caps) so the cell re-simulates the
                # lost slices instead of failing outright.
                missing = [
                    _chunk_key(parent, start, stop)
                    for start, stop in chunks
                    if self.store.load_chunk(parent, start, stop) is None
                ]
                if missing and self.queue.requeue_children(parent, missing):
                    self._counters.inc("merge_retries")
                    _log.warning(
                        "re-queued %d lost chunk(s) of %s for re-simulation",
                        len(missing),
                        parent,
                    )
                    return True
                self.queue.fail_parent(parent, f"merge failed: {type(exc).__name__}: {exc}")
                return False
        return True

    def run(
        self,
        drain: bool = False,
        max_jobs: Optional[int] = None,
    ) -> int:
        """The worker loop; returns the number of jobs executed.

        ``drain=True`` exits once the queue has no queued or leased
        work; otherwise the loop runs until :meth:`stop` (or
        ``max_jobs``).  An empty queue parks the worker on the submit
        notify channel with ``poll_s`` as the fallback timeout —
        ``notify_wakes`` counts event-driven wakeups, ``idle_waits``
        the timeouts that fell back to a plain re-check.
        """
        done = 0
        chaos = get_chaos()
        self.queue.register_worker(self.worker_id, os.getpid())
        subscription = self.queue.notify_submit.subscribe(
            probe=self.queue.data_version
        )
        try:
            while not self._stop.is_set():
                if max_jobs is not None and done >= max_jobs:
                    break
                leased = self.queue.lease(
                    self.worker_id,
                    limit=1,
                    lease_s=self.lease_s,
                    scheduler=self.scheduler,
                )
                if not leased:
                    if drain and self.queue.drained():
                        break
                    self._registry_beat("idle")
                    if subscription.wait(self.poll_s):
                        self._counters.inc("notify_wakes")
                    else:
                        self._counters.inc("idle_waits")
                    continue
                for job in leased:
                    if chaos is not None:
                        # kill-worker chaos strikes in the most hostile
                        # window: the lease is held and nothing is in
                        # the store yet.
                        chaos.maybe_kill_worker(job.key, job.attempts)
                    self._active = job
                    self._registry_beat("busy", force=True)
                    try:
                        if job.parent is not None:
                            self.run_chunk_job(job)
                        else:
                            self.run_job(job)
                    finally:
                        self._active = None
                    done += 1
                    self._jobs_done = done
                    if job.chunk_start is not None:
                        self._reps_done += job.chunk_stop - job.chunk_start
                    else:
                        self._reps_done += int(job.spec.get("reps") or 0)
                    self._registry_beat("idle", force=True)
        finally:
            subscription.close()
            try:
                self.queue.deregister_worker(self.worker_id, "stopped")
            except Exception:  # pragma: no cover - queue file vanished
                pass
        return done
