"""Read-only observability plane for the campaign service.

Four views over one queue database, none of which writes a single row:

* :class:`MonitorServer` — a stdlib :mod:`http.server` thread serving

  - ``/metrics`` — Prometheus text exposition: queue depth by status,
    worker registry liveness (heartbeat ages, derived states), DLQ and
    quarantine counts, store integrity counters, fleet-wide lifecycle
    totals derived from the queue's ``events`` table (crucially
    ``repro_service_worker_deaths_total``, which counts *every*
    worker's deaths, not just ones this process observed), and this
    process's own telemetry :func:`~repro.telemetry.counters_snapshot`;
  - ``/status`` — the ``service status`` JSON plus campaign progress;
  - ``/jobs/<key>`` — one job's row, chunk children, and its full
    lifecycle timeline;
  - ``/healthz`` — 200 when the queue answers and at least one worker
    is live (idle/busy by heartbeat), 503 otherwise — it flips red
    when a supervisor drains its fleet.

  Binds ``127.0.0.1`` by default (port 0 = ephemeral, for tests); the
  handlers share the monitor's single :class:`JobQueue` connection,
  which serialises them on its internal lock.

* :func:`campaign_progress` — done/total cells and an ETA extrapolated
  from the trailing completion rate in the events table.

* :func:`stitch_trace` — joins per-worker telemetry JSONL buffers with
  the lifecycle events into one Chrome/Perfetto trace: each job's wall
  time is attributed to ``queue-wait`` / ``run`` / ``merge`` /
  ``retry-wait`` phases.  Run phases land on the owning worker's pid
  track (lifecycle ``mono`` stamps and telemetry spans share the
  system-wide ``time.perf_counter()`` clock), wait phases on a
  synthetic pid-0 "campaign queue" track with one row per job.

* :func:`render_top` — the ``repro-noise service top`` dashboard text:
  workers (state, heartbeat age, current lease, reps/sec), queue depth
  by status, DLQ size, campaign progress/ETA.

Monitoring is an observer: with the monitor off nothing here is even
imported, and with it on every endpoint is read-only, so result bytes
are identical either way (the service bit-identity suite runs with the
monitor scraping mid-campaign).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterable, Optional, Sequence
from urllib.parse import unquote, urlparse

from repro import telemetry as _telemetry
from repro.service.queue import (
    DEFAULT_LOST_AFTER_S,
    _STATUSES,
    JobQueue,
)
from repro.service.store import SharedResultStore

__all__ = [
    "MonitorServer",
    "metrics_text",
    "health",
    "campaign_progress",
    "stitch_trace",
    "render_top",
]

_telemetry.set_counter_help(
    "service_monitor", "observability-plane activity (scrapes served)"
)

#: trailing window the completion-rate / ETA estimate is fitted over
DEFAULT_RATE_WINDOW_S = 600.0


# ----------------------------------------------------------------------
# campaign progress / ETA
# ----------------------------------------------------------------------
def campaign_progress(
    queue: JobQueue, window_s: float = DEFAULT_RATE_WINDOW_S
) -> dict:
    """Completed-cell progress and an ETA from the trailing rate.

    Counts *cells* (chunk sub-jobs fold into their parent): ``done``
    over ``total``, with the completion rate fitted over the last
    ``window_s`` of ``complete``/``merge`` events.  ``eta_s`` is
    ``None`` while there is no rate to extrapolate from (nothing
    finished recently, or nothing pending).
    """
    cells = queue.counts(cells_only=True)
    total = sum(cells.values())
    done = cells["done"]
    pending = cells["queued"] + cells["leased"] + cells["sharded"]
    now = time.time()
    finishes = [
        e["at"]
        for e in queue.events()
        if e["event"] in ("complete", "merge")
        and ":" not in e["key"]  # chunk completions are not cell finishes
        and now - e["at"] <= window_s
    ]
    rate = 0.0
    if finishes:
        span = max(now - min(finishes), 1.0)
        rate = len(finishes) / span
    eta_s = pending / rate if rate > 0 and pending else None
    return {
        "cells_total": total,
        "cells_done": done,
        "cells_pending": pending,
        "cells_failed": cells["failed"] + cells["quarantined"],
        "percent": 100.0 * done / total if total else 0.0,
        "rate_per_s": rate,
        "eta_s": eta_s,
    }


# ----------------------------------------------------------------------
# /metrics
# ----------------------------------------------------------------------
def metrics_text(
    queue: JobQueue,
    store: Optional[SharedResultStore] = None,
    lost_after_s: float = DEFAULT_LOST_AFTER_S,
) -> str:
    """The full Prometheus exposition for one scrape.

    Queue/worker/DLQ/store series are gauges over live database state;
    the lifecycle totals (including ``worker_deaths_total``) are
    counters derived from the append-only events table, so they are
    fleet-wide facts, not this process's memory.  The scraping
    process's own telemetry counters are appended last via
    :func:`~repro.telemetry.prometheus_text`.
    """
    from repro.telemetry.exporters import prometheus_text, render_value

    lines: list[str] = []

    def family(name: str, help_: str, kind: str, samples: Iterable[tuple[str, object]]):
        samples = list(samples)
        if not samples:
            return
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{labels} {render_value(value)}")

    counts = queue.counts()
    family(
        "repro_service_jobs",
        "jobs in the queue by status (chunk sub-jobs included)",
        "gauge",
        ((f'{{status="{s}"}}', counts[s]) for s in _STATUSES),
    )
    cells = queue.counts(cells_only=True)
    family(
        "repro_service_cells",
        "experiment cells in the queue by status (chunk sub-jobs folded in)",
        "gauge",
        ((f'{{status="{s}"}}', cells[s]) for s in _STATUSES),
    )
    now = time.time()
    workers = queue.workers()
    by_state: dict[str, int] = {}
    for info in workers:
        state = info.derived_state(now, lost_after_s)
        by_state[state] = by_state.get(state, 0) + 1
    family(
        "repro_service_workers",
        "registered workers by heartbeat-derived state",
        "gauge",
        ((f'{{state="{s}"}}', n) for s, n in sorted(by_state.items())),
    )
    family(
        "repro_service_worker_heartbeat_age_seconds",
        "seconds since each worker's last registry heartbeat",
        "gauge",
        (
            (f'{{worker="{info.id}"}}', round(info.heartbeat_age(now), 3))
            for info in workers
        ),
    )
    family(
        "repro_service_worker_jobs_done",
        "jobs completed per worker (registry view)",
        "counter",
        ((f'{{worker="{info.id}"}}', info.jobs_done) for info in workers),
    )
    family(
        "repro_service_dlq_jobs",
        "quarantined jobs in the dead-letter queue",
        "gauge",
        (("", counts["quarantined"]),),
    )
    events = queue.event_counts()
    family(
        "repro_service_lifecycle_events_total",
        "lifecycle transitions recorded in the queue's events table",
        "counter",
        ((f'{{event="{e}"}}', n) for e, n in sorted(events.items())),
    )
    family(
        "repro_service_worker_deaths_total",
        "leases lost to dead or vanished workers, fleet-wide "
        "(expire events in the queue's lifecycle table)",
        "counter",
        (("", events.get("expire", 0)),),
    )
    progress = campaign_progress(queue)
    family(
        "repro_service_campaign_cells_done",
        "completed cells of the current campaign",
        "gauge",
        (("", progress["cells_done"]),),
    )
    family(
        "repro_service_campaign_cells_total",
        "total cells known to the current campaign",
        "gauge",
        (("", progress["cells_total"]),),
    )
    if store is not None:
        family(
            "repro_service_store",
            "shared result store counters (hits, integrity quarantines, ...)",
            "gauge",
            (
                (f'{{counter="{name}"}}', value)
                for name, value in sorted(store.stats().items())
            ),
        )
    text = "\n".join(lines) + ("\n" if lines else "")
    return text + prometheus_text()


# ----------------------------------------------------------------------
# /healthz
# ----------------------------------------------------------------------
def health(
    queue: JobQueue, lost_after_s: float = DEFAULT_LOST_AFTER_S
) -> tuple[bool, dict]:
    """Liveness verdict: queue answers + at least one live worker.

    A worker is live when its heartbeat-derived state is idle or busy;
    a drained/dead fleet flips this to 503 even though the queue file
    itself is perfectly healthy.
    """
    try:
        counts = queue.counts()
    except Exception as exc:  # pragma: no cover - corrupt/locked file
        return False, {"healthy": False, "reason": f"queue error: {exc}"}
    now = time.time()
    live = [
        w.id
        for w in queue.workers()
        if w.derived_state(now, lost_after_s) in ("idle", "busy")
    ]
    if not os.access(queue.path, os.W_OK):
        return False, {"healthy": False, "reason": "queue file not writable"}
    if not live:
        return False, {
            "healthy": False,
            "reason": "no live workers",
            "jobs": counts,
        }
    return True, {
        "healthy": True,
        "reason": f"{len(live)} live worker(s)",
        "workers": live,
        "jobs": counts,
    }


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-monitor"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes every few seconds must not spam the console

    def do_GET(self):  # noqa: N802 - stdlib casing
        monitor: "MonitorServer" = self.server.monitor  # type: ignore[attr-defined]
        path = unquote(urlparse(self.path).path)
        try:
            if path == "/metrics":
                body = monitor.metrics()
                ctype, code = "text/plain; version=0.0.4; charset=utf-8", 200
            elif path in ("/", "/status"):
                body = json.dumps(monitor.status(), default=str) + "\n"
                ctype, code = "application/json", 200
            elif path == "/healthz":
                healthy, payload = health(monitor.queue, monitor.lost_after_s)
                body = json.dumps(payload) + "\n"
                ctype, code = "application/json", 200 if healthy else 503
            elif path.startswith("/jobs/"):
                payload = monitor.job_detail(path[len("/jobs/"):])
                if payload is None:
                    body = json.dumps({"error": "unknown job"}) + "\n"
                    ctype, code = "application/json", 404
                else:
                    body = json.dumps(payload, default=str) + "\n"
                    ctype, code = "application/json", 200
            else:
                body = json.dumps({"error": f"no such endpoint {path!r}"}) + "\n"
                ctype, code = "application/json", 404
        except Exception as exc:  # pragma: no cover - defensive
            body = json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n"
            ctype, code = "application/json", 500
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class MonitorServer:
    """The observability HTTP endpoint, on a daemon thread.

    Strictly read-only over a shared :class:`JobQueue` (whose internal
    lock serialises the handler threads) and optional store.  ``port=0``
    binds an ephemeral port — read :attr:`port`/:attr:`url` after
    construction.  Use as a context manager, or ``start()``/``stop()``.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: Optional[SharedResultStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lost_after_s: float = DEFAULT_LOST_AFTER_S,
    ):
        self.queue = queue
        self.store = store
        self.lost_after_s = lost_after_s
        self._counters = _telemetry.get_group("service_monitor")
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.monitor = self  # type: ignore[attr-defined]
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name="repro-monitor",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def metrics(self) -> str:
        self._counters.inc("scrapes")
        return metrics_text(self.queue, self.store, self.lost_after_s)

    def status(self) -> dict:
        self._counters.inc("status_requests")
        from repro.service.client import ServiceClient

        client = ServiceClient(self.queue, self.store)
        payload = client.status(lost_after_s=self.lost_after_s)
        payload["progress"] = campaign_progress(self.queue)
        payload["queue_path"] = str(self.queue.path)
        if self.store is not None:
            payload["store_root"] = str(self.store.root)
        return payload

    def job_detail(self, key: str) -> Optional[dict]:
        job = self.queue.job(key)
        if job is None:
            return None
        payload = asdict(job)
        payload["events"] = self.queue.events(key=key)
        children = self.queue.children(key)
        if children:
            payload["children"] = [
                {
                    "key": c.key,
                    "status": c.status,
                    "chunk_start": c.chunk_start,
                    "chunk_stop": c.chunk_stop,
                    "attempts": c.attempts,
                    "lease_owner": c.lease_owner,
                }
                for c in children
            ]
        return payload


# ----------------------------------------------------------------------
# trace stitching
# ----------------------------------------------------------------------
def stitch_trace(
    queue: JobQueue,
    telemetry_paths: Sequence[os.PathLike | str] = (),
    keys: Optional[Sequence[str]] = None,
) -> dict:
    """One Chrome/Perfetto trace for a whole campaign.

    Joins the queue's lifecycle events with any number of per-worker
    telemetry logs (``events.jsonl`` files or the directories that
    contain them).  Each job contributes phase spans —

    * ``queue-wait`` — submit → first lease,
    * ``run`` — each lease → complete/fail/expire/release, attributed
      to the owning worker's pid so it lines up with that worker's own
      ``service_job``/``rep`` spans,
    * ``retry-wait`` — a requeue (failure, expiry, release, DLQ retry)
      → the next lease,
    * ``merge`` — last chunk completion → parent finalize,

    — with wait phases on a synthetic pid-0 "campaign queue" track,
    one tid row per job.  Lifecycle ``mono`` stamps and telemetry span
    timestamps share the ``time.perf_counter()`` clock, so the tracks
    align without any offset bookkeeping.  ``keys`` restricts to the
    listed cells (their chunk sub-jobs ride along).
    """
    from repro.telemetry.exporters import chrome_trace, load_events_jsonl

    span_events: list[dict] = []
    for raw in telemetry_paths:
        path = Path(raw)
        if path.is_dir():
            path = path / "events.jsonl"
        if path.exists():
            events, _counters = load_events_jsonl(path)
            span_events.extend(events)

    lifecycle = queue.events()
    if keys is not None:
        wanted = set(keys)
        lifecycle = [
            e for e in lifecycle if e["key"].split(":", 1)[0] in wanted
        ]
    worker_pids = {w.id: w.pid for w in queue.workers()}

    tids: dict[str, int] = {}

    def tid_for(key: str) -> int:
        return tids.setdefault(key, len(tids) + 1)

    phase_spans: list[dict] = []
    seq = 0

    def emit(name, start, end, key, pid=0, worker=None, error=None):
        nonlocal seq
        seq += 1
        span = {
            "type": "span",
            "name": name,
            "ts": start,
            "dur": max(0.0, end - start),
            "pid": pid if pid is not None else 0,
            "tid": tid_for(key),
            "id": f"stitch-{seq}",
            "args": {"key": key, "phase": name},
        }
        if worker is not None:
            span["args"]["worker"] = worker
        if error is not None:
            span["error"] = error
        phase_spans.append(span)

    # per-key wait/lease state machines, driven in commit order
    pending: dict[str, tuple[float, str]] = {}  # key -> (since, wait kind)
    leases: dict[str, tuple[float, Optional[str]]] = {}  # key -> (start, worker)
    last_chunk_done: dict[str, float] = {}  # parent cell -> last complete mono

    for e in lifecycle:
        key, event, mono, worker = e["key"], e["event"], e["mono"], e["worker"]
        cell = key.split(":", 1)[0]
        if event == "submit":
            pending[key] = (mono, "queue-wait")
        elif event == "lease":
            since = pending.pop(key, None)
            if since is not None:
                emit(since[1], since[0], mono, key)
            leases[key] = (mono, worker)
        elif event == "renew":
            continue
        elif event == "complete":
            lease = leases.pop(key, None)
            if lease is not None:
                emit("run", lease[0], mono, key,
                     pid=worker_pids.get(lease[1]), worker=lease[1])
            if key != cell:
                last_chunk_done[cell] = mono
        elif event in ("expire", "release"):
            lease = leases.pop(key, None)
            if lease is not None:
                emit(
                    "run", lease[0], mono, key,
                    pid=worker_pids.get(lease[1]), worker=lease[1],
                    error="lease expired" if event == "expire" else None,
                )
            pending[key] = (mono, "retry-wait")
        elif event in ("fail", "quarantine"):
            lease = leases.pop(key, None)
            if lease is not None:
                emit(
                    "run", lease[0], mono, key,
                    pid=worker_pids.get(lease[1]), worker=lease[1],
                    error=(e["detail"] or event),
                )
            if event == "fail" and (e["detail"] or "").startswith("retryable"):
                pending[key] = (mono, "retry-wait")
            else:
                pending.pop(key, None)
        elif event == "retry":
            pending[key] = (mono, "retry-wait")
        elif event == "merge":
            emit("merge", last_chunk_done.get(key, mono), mono, key)

    trace = chrome_trace(span_events + phase_spans)
    for entry in trace["traceEvents"]:
        if entry.get("ph") == "M" and entry.get("pid") == 0:
            entry["args"]["name"] = "campaign queue"
    trace["traceEvents"].extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": f"job {key[:16]}"},
        }
        for key, tid in tids.items()
    )
    return trace


# ----------------------------------------------------------------------
# live dashboard
# ----------------------------------------------------------------------
def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    eta_s = int(round(eta_s))
    if eta_s >= 3600:
        return f"{eta_s // 3600}h{(eta_s % 3600) // 60:02d}m"
    return f"{eta_s // 60}m{eta_s % 60:02d}s"


def render_top(
    queue: JobQueue,
    store: Optional[SharedResultStore] = None,
    lost_after_s: float = DEFAULT_LOST_AFTER_S,
) -> str:
    """One frame of the ``service top`` dashboard as plain text."""
    from repro.harness.report import TableBuilder

    now = time.time()
    counts = queue.counts()
    progress = campaign_progress(queue)
    parts = [
        f"repro-noise service top — {queue.path} — "
        + time.strftime("%H:%M:%S", time.localtime(now)),
        "jobs: " + ", ".join(f"{counts[s]} {s}" for s in _STATUSES),
        (
            f"campaign: {progress['cells_done']}/{progress['cells_total']} cells "
            f"({progress['percent']:.0f}%), "
            f"{progress['rate_per_s'] * 60:.1f} cells/min, "
            f"ETA {_fmt_eta(progress['eta_s'])}"
        ),
    ]
    workers = queue.workers()
    if workers:
        tb = TableBuilder(
            ["worker", "pid", "state", "hb age", "current lease", "jobs", "reps/s"]
        )
        for info in workers:
            uptime = max(now - info.started_at, 1e-9)
            rate = info.reps_done / uptime if info.reps_done else 0.0
            tb.add_row(
                info.id,
                str(info.pid or "-"),
                info.derived_state(now, lost_after_s),
                f"{info.heartbeat_age(now):.1f}s",
                (info.current_key or "-")[:20],
                str(info.jobs_done),
                f"{rate:.1f}",
            )
        parts.append(tb.render())
    else:
        parts.append("(no workers registered)")
    if counts["quarantined"]:
        parts.append(f"dlq: {counts['quarantined']} quarantined job(s)")
    if store is not None:
        st = store.stats()
        parts.append(
            f"store: {st['hits']} hits, {st['shared_hits']} shared, "
            f"{st['chunk_merges']} merges, "
            f"{st['integrity_quarantined']} integrity quarantines"
        )
    return "\n".join(parts)
