r"""Durable SQLite-backed job queue for the campaign service.

One row per experiment *cell*, keyed by the cell's content-hash result
key (the :class:`~repro.harness.cache.ResultCache` key) — identical
submissions from any number of clients coalesce into a single job, and
a completed job's result is exactly the store entry under that key.
Sweeps are recorded as ordered key lists over the same jobs, so two
overlapping sweeps share cells.

Lease lifecycle::

    queued --lease--> leased --complete--> done
      ^                 |  \--fail(retryable)--> queued
      |                 \--fail(terminal)------> failed
      \--(lease expiry, attempts left)----------/

Cells whose rep count exceeds the client's shard threshold are split
into **chunk sub-jobs** (:meth:`JobQueue.submit_sharded`): a *parent*
row in status ``sharded`` plus one child row per deterministic
``chunk_range`` slice, each an ordinary leasable job any worker can
claim.  Children complete via :meth:`JobQueue.complete_chunk`, which
reports — inside the same transaction — whether that completion was
the *last* one, so exactly one worker merges the per-rep chunk arrays
back into the parent's envelope and :meth:`finalize_parent`\ s the
parent to ``done``.  A terminal chunk failure fails the parent and its
still-queued siblings; a SIGKILLed worker's chunk leases expire and
re-lease like any other job.

A worker renews its lease while running; a worker that dies silently
(SIGKILL, OOM) simply stops renewing, and the next ``lease()`` call
sweeps its expired jobs back to ``queued`` — or to ``failed`` once the
attempt cap is exhausted.  Expiry, like every other transition, runs
inside a ``BEGIN IMMEDIATE`` transaction, so exactly one worker can
hold a job at a time.

**Dead-letter path.**  Every lease lost to a dead or vanished worker is
recorded as a *death* on the job (worker id, pid, attempt, timestamp).
A job whose leases have now killed :data:`POISON_DEATHS` *distinct*
workers is presumed poisonous and moved to status ``quarantined`` —
before it burns the rest of its attempt budget taking out the fleet —
with a structured :class:`~repro.harness.faults.FailureRecord` plus the
full death forensics in its ``failure`` column.  Terminal failures
(attempt cap exhausted) carry the same structured record in ``failed``.
Quarantined jobs are surfaced via ``repro-noise service dlq
list|show|retry|purge``; :meth:`JobQueue.dlq_retry` revives a job with
a fresh budget and cleared forensics, and the revived run is
bit-identical to a clean one (seeding is content-derived).

Workers register themselves in a ``workers`` table and heartbeat it
while alive, so ``service status`` can derive a ``lost`` state from
heartbeat age instead of showing a crashed worker as active until its
lease expires.  A supervisor that *observes* a child die calls
:meth:`JobQueue.report_worker_death` to release the corpse's leases
immediately instead of waiting out the expiry.

**Lifecycle events.**  Every transition (submit / lease / renew /
expire / complete / fail / quarantine / merge / release / retry) is
appended to an ``events`` table *inside the same write transaction*
that performs it — no extra transactions, and the timeline can never
disagree with the jobs table.  Each event carries the worker id, a
wall-clock stamp and a ``time.perf_counter()`` monotonic stamp (the
clock telemetry spans use, system-wide on Linux), which is what lets
``repro-noise telemetry stitch`` attribute a job's wall time to
queue-wait / run / merge / retry phases alongside worker spans.  Set
``REPRO_SERVICE_EVENTS=0`` to disable recording entirely.

Durability follows the journal's conventions: WAL mode, a generous
busy timeout, and every state change committed before the call
returns.  On top of SQLite's own busy timeout, every write transaction
retries a bounded number of times with seeded jittered backoff when the
database is locked (counted as ``busy_retries`` in telemetry), so a
fleet of workers hammering one queue file degrades to waiting, never to
erroring.  The queue file can be inspected with any sqlite3 client.

State changes broadcast on two :class:`~repro.service.notify.NotifyChannel`\ s
(``<queue>.notify/submit`` wakes idle workers, ``<queue>.notify/complete``
wakes waiting clients); delivery is best-effort — waiters re-check on
wake and keep their poll interval as a timeout, so a lost wakeup costs
latency, never correctness.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro import telemetry as _telemetry
from repro.harness.faults import FailureRecord
from repro.service.notify import NotifyChannel

__all__ = [
    "Job",
    "JobQueue",
    "WorkerInfo",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_LEASE_S",
    "DEFAULT_RETENTION_S",
    "DEFAULT_LOST_AFTER_S",
    "POISON_DEATHS",
]

#: lease dispatches (not rep retries) a job gets before it is failed
DEFAULT_MAX_ATTEMPTS = 3
#: seconds a lease lives without renewal
DEFAULT_LEASE_S = 60.0
#: default retention of finished (done/failed) job rows for prune()
DEFAULT_RETENTION_S = 7 * 86400.0
#: heartbeat age past which a registered worker is derived as ``lost``
DEFAULT_LOST_AFTER_S = 10.0
#: distinct workers a job may kill mid-lease before it is presumed
#: poisonous and quarantined to the dead-letter queue
POISON_DEATHS = 2
#: bounded retries of a write transaction on SQLITE_BUSY, on top of the
#: connection's own 30s busy timeout
_BUSY_RETRIES = 5

_telemetry.set_counter_help(
    "service_queue",
    "durable job-queue activity (busy retries, lease expiries, worker "
    "deaths, dead-letter traffic)",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key           TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    noise         TEXT,
    label         TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'queued',
    priority      INTEGER NOT NULL DEFAULT 0,
    expected_s    REAL NOT NULL DEFAULT 0.0,
    cached        INTEGER NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    submitted_at  REAL NOT NULL,
    client        TEXT,
    lease_owner   TEXT,
    lease_expires REAL,
    started_at    REAL,
    finished_at   REAL,
    error         TEXT,
    parent        TEXT,
    chunk_start   INTEGER,
    chunk_stop    INTEGER
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE TABLE IF NOT EXISTS sweeps (
    id            TEXT PRIMARY KEY,
    title         TEXT,
    definition    TEXT NOT NULL,
    submitted_at  REAL NOT NULL,
    client        TEXT
);
CREATE TABLE IF NOT EXISTS sweep_jobs (
    sweep_id  TEXT NOT NULL,
    position  INTEGER NOT NULL,
    key       TEXT NOT NULL,
    PRIMARY KEY (sweep_id, position)
);
CREATE TABLE IF NOT EXISTS workers (
    id            TEXT PRIMARY KEY,
    pid           INTEGER,
    started_at    REAL NOT NULL,
    heartbeat_at  REAL NOT NULL,
    state         TEXT NOT NULL DEFAULT 'idle',
    jobs_done     INTEGER NOT NULL DEFAULT 0,
    current_key   TEXT,
    reps_done     INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS events (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    key     TEXT NOT NULL,
    event   TEXT NOT NULL,
    worker  TEXT,
    at      REAL NOT NULL,
    mono    REAL NOT NULL,
    detail  TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_key ON events(key);
"""

#: columns added after the first released schema; applied by ALTER
#: TABLE when an older queue file is opened
_MIGRATIONS = (
    ("parent", "TEXT"),
    ("chunk_start", "INTEGER"),
    ("chunk_stop", "INTEGER"),
    ("deaths", "TEXT"),
    ("failure", "TEXT"),
)

#: same, for the workers registry table (files from before the
#: observability plane lack the current-lease / rep-progress columns;
#: files from before the registry itself get the whole table from
#: ``_SCHEMA``'s CREATE TABLE IF NOT EXISTS)
_WORKER_MIGRATIONS = (
    ("current_key", "TEXT"),
    ("reps_done", "INTEGER NOT NULL DEFAULT 0"),
)

_STATUSES = ("queued", "leased", "sharded", "done", "failed", "quarantined")


def _chunk_key(key: str, start: int, stop: int) -> str:
    return f"{key}:{start}-{stop}"


@dataclass
class Job:
    """One queued cell (or chunk sub-job), as handed to a worker."""

    key: str
    spec: dict
    noise: Optional[dict]
    label: str
    status: str
    priority: int
    expected_s: float
    cached: bool
    attempts: int
    max_attempts: int
    submitted_at: float
    lease_owner: Optional[str] = None
    lease_expires: Optional[float] = None
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: parent cell key when this row is a chunk sub-job; ``None`` for
    #: whole-cell jobs and for parent rows themselves
    parent: Optional[str] = None
    #: rep-index slice ``[chunk_start, chunk_stop)`` for chunk sub-jobs
    chunk_start: Optional[int] = None
    chunk_stop: Optional[int] = None
    #: sibling chunks already leased or done, filled in by ``lease()``
    #: for the scheduler's finish-in-flight-cells-first bonus (never
    #: persisted — it is a property of the queue snapshot, not the job)
    siblings_active: int = field(default=0, compare=False)
    #: workers that died (or vanished) while holding this job's lease:
    #: ``[{"worker", "pid", "attempt", "at", "detail"}, ...]``
    deaths: list = field(default_factory=list)
    #: structured dead-letter forensics for failed/quarantined jobs
    failure: Optional[dict] = None

    @property
    def distinct_death_workers(self) -> int:
        return len({d.get("worker") for d in self.deaths})

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            key=row["key"],
            spec=json.loads(row["spec"]),
            noise=json.loads(row["noise"]) if row["noise"] else None,
            label=row["label"],
            status=row["status"],
            priority=row["priority"],
            expected_s=row["expected_s"],
            cached=bool(row["cached"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            submitted_at=row["submitted_at"],
            lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            error=row["error"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            parent=row["parent"],
            chunk_start=row["chunk_start"],
            chunk_stop=row["chunk_stop"],
            deaths=json.loads(row["deaths"]) if row["deaths"] else [],
            failure=json.loads(row["failure"]) if row["failure"] else None,
        )


@dataclass
class WorkerInfo:
    """One registered worker, with a heartbeat-derived liveness state.

    ``state`` is what the worker last declared (``idle`` / ``busy`` /
    ``stopped`` / ``dead``); :meth:`JobQueue.workers` derives ``lost``
    for declared-alive workers whose heartbeat is older than the
    threshold — a crashed worker shows as lost immediately, not as
    active until its lease expires.
    """

    id: str
    pid: Optional[int]
    started_at: float
    heartbeat_at: float
    state: str
    jobs_done: int
    #: key of the lease being executed right now (``None`` when idle)
    current_key: Optional[str] = None
    #: cumulative reps executed, for the dashboard's reps/sec column
    reps_done: int = 0

    def heartbeat_age(self, now: float) -> float:
        return max(0.0, now - self.heartbeat_at)

    def derived_state(self, now: float, lost_after_s: float = DEFAULT_LOST_AFTER_S) -> str:
        if self.state in ("idle", "busy") and self.heartbeat_age(now) > lost_after_s:
            return "lost"
        return self.state


class JobQueue:
    """The durable queue; safe for concurrent processes and threads.

    Every instance owns one connection (serialised by an internal
    lock); cross-process consistency comes from SQLite itself — WAL
    mode plus ``BEGIN IMMEDIATE`` write transactions, with a busy
    timeout that rides out lock contention instead of erroring, and a
    bounded seeded-backoff retry above that for the pathological case
    where the timeout itself expires under a worker stampede.
    """

    def __init__(
        self,
        path: os.PathLike | str,
        busy_timeout_s: float = 30.0,
        busy_retries: int = _BUSY_RETRIES,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.busy_retries = busy_retries
        self._lock = threading.Lock()
        self._counters = _telemetry.get_group("service_queue")
        #: lifecycle-event recording; ``REPRO_SERVICE_EVENTS=0`` turns
        #: the append-only events table off entirely (the monitor then
        #: shows live state but no per-job timeline)
        self.events_enabled = os.environ.get("REPRO_SERVICE_EVENTS", "1") != "0"
        # Deterministic per-instance backoff jitter: seeded from the
        # queue path and pid so two workers of one stampede desynchronise
        # the same way on every run.
        self._busy_rng = random.Random(f"{self.path}:{os.getpid()}")
        self._conn = sqlite3.connect(
            self.path,
            timeout=busy_timeout_s,
            check_same_thread=False,
            isolation_level=None,
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
        notify_root = self.path.parent / f"{self.path.name}.notify"
        #: wakes idle workers: fired whenever a row becomes leasable
        self.notify_submit = NotifyChannel(notify_root / "submit")
        #: wakes waiting clients: fired whenever a row leaves the
        #: pending (queued/leased) set
        self.notify_complete = NotifyChannel(notify_root / "complete")

    def _migrate(self) -> None:
        """Add post-v1 columns to queue files created before them."""
        cols = {r["name"] for r in self._conn.execute("PRAGMA table_info(jobs)")}
        for name, decl in _MIGRATIONS:
            if name not in cols:
                self._conn.execute(f"ALTER TABLE jobs ADD COLUMN {name} {decl}")
        wcols = {r["name"] for r in self._conn.execute("PRAGMA table_info(workers)")}
        for name, decl in _WORKER_MIGRATIONS:
            if name not in wcols:
                self._conn.execute(f"ALTER TABLE workers ADD COLUMN {name} {decl}")
        # After the columns exist (the index of a migrated column cannot
        # be part of _SCHEMA: it would fail on a pre-migration file).
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_jobs_parent ON jobs(parent)"
        )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # write-transaction plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _is_busy(exc: BaseException) -> bool:
        if not isinstance(exc, sqlite3.OperationalError):
            return False
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _busy_backoff(self, attempt: int) -> float:
        """Jittered exponential backoff, deterministic per instance."""
        base = 0.005 * (2 ** (attempt - 1))
        return min(0.25, base * (0.5 + 0.5 * self._busy_rng.random()))

    def _write_txn(self, body: Callable[[sqlite3.Connection], object]):
        """Run ``body(conn)`` inside ``BEGIN IMMEDIATE``, retrying the
        whole transaction (bounded, seeded backoff) when SQLite reports
        the database busy/locked despite the connection's own timeout.
        ``body`` must be a pure function of the connection state — it
        re-reads whatever it needs on every attempt.

        The ``busy-storm`` chaos profile injects synthetic
        busy errors here (never past the retry budget, so chaos storms
        degrade to backoff waits exactly like real lock contention)."""
        from repro.harness.chaos import get_chaos

        chaos = get_chaos()
        attempt = 0
        while True:
            try:
                if (
                    chaos is not None
                    and attempt < self.busy_retries
                    and chaos.busy_storm_fault()
                ):
                    raise sqlite3.OperationalError("database is locked (chaos busy storm)")
                with self._lock:
                    self._conn.execute("BEGIN IMMEDIATE")
                    try:
                        out = body(self._conn)
                        self._conn.execute("COMMIT")
                        return out
                    except BaseException:
                        try:
                            self._conn.execute("ROLLBACK")
                        except sqlite3.OperationalError:
                            pass  # BEGIN itself failed: no txn to roll back
                        raise
            except sqlite3.OperationalError as exc:
                if not self._is_busy(exc) or attempt >= self.busy_retries:
                    raise
                attempt += 1
                self._counters.inc("busy_retries")
                time.sleep(self._busy_backoff(attempt))

    def _event(
        self,
        conn: sqlite3.Connection,
        key: str,
        event: str,
        worker: Optional[str] = None,
        at: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one lifecycle event.  Caller holds the transaction —
        events ride inside the state change that caused them, so the
        timeline can never disagree with the jobs table and recording
        adds no extra transactions.  ``mono`` is ``time.perf_counter()``
        (system-wide monotonic), the clock telemetry spans use, so
        stitched traces align events with worker spans across pids."""
        if not self.events_enabled:
            return
        conn.execute(
            "INSERT INTO events (key, event, worker, at, mono, detail)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                event,
                worker,
                at if at is not None else time.time(),
                time.perf_counter(),
                detail,
            ),
        )

    def stats(self) -> dict:
        """Queue-level telemetry counters (shared registry view)."""
        counts = self._counters.as_dict()
        return {
            key: int(counts.get(key, 0))
            for key in (
                "busy_retries",
                "pruned",
                "expired_requeues",
                "worker_deaths",
                "quarantined",
                "released",
                "merge_requeues",
                "dlq_retried",
            )
        }

    def data_version(self) -> int:
        """SQLite's change counter for *other* connections' commits —
        the notify channels' poll-fallback probe."""
        with self._lock:
            return int(self._conn.execute("PRAGMA data_version").fetchone()[0])

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        key: str,
        spec: dict,
        noise: Optional[dict],
        label: str,
        priority: int = 0,
        expected_s: float = 0.0,
        cached: bool = False,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        client: Optional[str] = None,
    ) -> bool:
        """Enqueue one cell; returns ``True`` if a new job was created.

        Idempotent by key: re-submitting an existing queued / leased /
        sharded / done job is a no-op (the caller shares the existing
        job's fate), while re-submitting a *failed* job revives it with
        a fresh attempt budget (stale chunk children of a previously
        sharded attempt are dropped).
        """
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                """INSERT INTO jobs (key, spec, noise, label, priority, expected_s,
                                     cached, max_attempts, submitted_at, client)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                   ON CONFLICT(key) DO UPDATE SET
                       status = 'queued', attempts = 0, error = NULL,
                       lease_owner = NULL, lease_expires = NULL,
                       submitted_at = excluded.submitted_at,
                       priority = excluded.priority,
                       max_attempts = excluded.max_attempts
                   WHERE jobs.status = 'failed'""",
                (
                    key,
                    json.dumps(spec, sort_keys=True),
                    json.dumps(noise, sort_keys=True) if noise is not None else None,
                    label,
                    priority,
                    expected_s,
                    int(cached),
                    max_attempts,
                    now,
                    client,
                ),
            )
            if cur.rowcount > 0:
                # Revived after a failed *sharded* attempt: the cell now
                # runs whole, so its stale chunk children must not linger
                # as leasable work.
                conn.execute("DELETE FROM jobs WHERE parent = ?", (key,))
                self._event(conn, key, "submit", worker=client, at=now)
            return cur.rowcount > 0

        created = self._write_txn(body)
        if created:
            self.notify_submit.notify()
        return created

    def submit_sharded(
        self,
        key: str,
        spec: dict,
        noise: Optional[dict],
        label: str,
        chunks: Sequence[tuple[int, int]],
        priority: int = 0,
        expected_s: float = 0.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        client: Optional[str] = None,
    ) -> bool:
        """Enqueue one cell as a ``sharded`` parent plus one leasable
        chunk sub-job per ``(start, stop)`` rep slice.

        ``chunks`` must partition ``range(reps)`` in order — the caller
        derives them from the deterministic ``chunk_range`` boundaries.
        Idempotency matches :meth:`submit`: an existing non-failed job
        under ``key`` wins (returns ``False``); a failed one is revived
        as a fresh sharded attempt with fresh children.  Parent rows are
        never leasable (status ``sharded``); they hold the cell's spec
        and collect the merge. ``expected_s`` is the *whole cell's*
        estimate; children get the rep-proportional slice of it so the
        scheduler compares shards and whole cells on one scale.
        """
        if not chunks:
            raise ValueError("submit_sharded needs at least one chunk")
        spans = [(int(start), int(stop)) for start, stop in chunks]
        total = sum(stop - start for start, stop in spans)
        if total <= 0 or any(stop <= start for start, stop in spans):
            raise ValueError(f"degenerate chunk spans: {spans}")
        now = time.time()
        spec_json = json.dumps(spec, sort_keys=True)
        noise_json = json.dumps(noise, sort_keys=True) if noise is not None else None

        def body(conn: sqlite3.Connection) -> bool:
            row = conn.execute(
                "SELECT status FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if row is not None and row["status"] != "failed":
                return False
            conn.execute("DELETE FROM jobs WHERE parent = ?", (key,))
            if row is None:
                conn.execute(
                    """INSERT INTO jobs (key, spec, noise, label, status, priority,
                                         expected_s, max_attempts, submitted_at, client)
                       VALUES (?, ?, ?, ?, 'sharded', ?, ?, ?, ?, ?)""",
                    (key, spec_json, noise_json, label, priority, expected_s,
                     max_attempts, now, client),
                )
            else:
                conn.execute(
                    """UPDATE jobs SET status = 'sharded', attempts = 0, error = NULL,
                           lease_owner = NULL, lease_expires = NULL, finished_at = NULL,
                           submitted_at = ?, priority = ?, expected_s = ?,
                           max_attempts = ? WHERE key = ?""",
                    (now, priority, expected_s, max_attempts, key),
                )
            conn.executemany(
                """INSERT INTO jobs (key, spec, noise, label, priority, expected_s,
                                     max_attempts, submitted_at, client,
                                     parent, chunk_start, chunk_stop)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                [
                    (
                        _chunk_key(key, start, stop),
                        spec_json,
                        noise_json,
                        f"{label}[{start}:{stop}]",
                        priority,
                        expected_s * (stop - start) / total,
                        max_attempts,
                        now,
                        client,
                        key,
                        start,
                        stop,
                    )
                    for start, stop in spans
                ],
            )
            self._event(
                conn, key, "submit", worker=client, at=now,
                detail=f"sharded into {len(spans)} chunk(s)",
            )
            for start, stop in spans:
                self._event(
                    conn, _chunk_key(key, start, stop), "submit",
                    worker=client, at=now, detail=f"chunk [{start}:{stop})",
                )
            return True

        created = self._write_txn(body)
        if created:
            self.notify_submit.notify()
        return created

    def record_sweep(
        self,
        sweep_id: str,
        definition: dict,
        keys: Sequence[str],
        title: Optional[str] = None,
        client: Optional[str] = None,
    ) -> None:
        """Register a sweep as an ordered key list over existing jobs."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO sweeps (id, title, definition, submitted_at, client)"
                " VALUES (?, ?, ?, ?, ?)",
                (sweep_id, title, json.dumps(definition, sort_keys=True), now, client),
            )
            conn.execute("DELETE FROM sweep_jobs WHERE sweep_id = ?", (sweep_id,))
            conn.executemany(
                "INSERT INTO sweep_jobs (sweep_id, position, key) VALUES (?, ?, ?)",
                [(sweep_id, i, k) for i, k in enumerate(keys)],
            )

        self._write_txn(body)

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------
    def _expire_stale(self, conn: sqlite3.Connection, now: float) -> int:
        """Sweep expired leases back to queued (or failed/quarantined).
        Caller holds the transaction.  Returns how many became leasable
        again.

        An expired lease means its holder stopped renewing — dead, or
        stalled long enough to be indistinguishable from dead — so every
        expiry is recorded as a *death* on the job and fed through
        poison detection."""
        rows = conn.execute(
            "SELECT * FROM jobs WHERE status = 'leased' AND lease_expires < ?",
            (now,),
        ).fetchall()
        requeued = 0
        for row in rows:
            outcome = self._record_death(
                conn, row, now, detail="lease expired (worker presumed dead)"
            )
            if outcome == "requeued":
                requeued += 1
        return requeued

    @staticmethod
    def _worker_pid(conn: sqlite3.Connection, worker_id) -> Optional[int]:
        row = conn.execute(
            "SELECT pid FROM workers WHERE id = ?", (worker_id,)
        ).fetchone()
        return row["pid"] if row is not None else None

    def _record_death(
        self,
        conn: sqlite3.Connection,
        row: sqlite3.Row,
        now: float,
        detail: str,
        pid: Optional[int] = None,
    ) -> str:
        """One dead worker's leased job: append the death record, then
        quarantine (poison), fail terminally (attempt cap), or requeue.
        Caller holds the transaction.  Returns the outcome, one of
        ``"quarantined"`` / ``"failed"`` / ``"requeued"``."""
        owner = row["lease_owner"]
        if pid is None:
            pid = self._worker_pid(conn, owner)
        deaths = json.loads(row["deaths"]) if row["deaths"] else []
        deaths.append(
            {
                "worker": owner,
                "pid": pid,
                "attempt": row["attempts"],
                "at": now,
                "detail": detail,
            }
        )
        deaths_json = json.dumps(deaths)
        self._counters.inc("worker_deaths")
        self._event(conn, row["key"], "expire", worker=owner, at=now, detail=detail)
        distinct = {d.get("worker") for d in deaths}
        if len(distinct) >= POISON_DEATHS:
            error = (
                f"poison: killed {len(distinct)} distinct worker(s) mid-lease"
                f" ({', '.join(sorted(str(w) for w in distinct))})"
            )
            self._to_dlq(conn, row, now, deaths_json, error, reason="poison")
            return "quarantined"
        if row["attempts"] >= row["max_attempts"]:
            error = (
                f"lease expired after {row['attempts']} attempt(s); "
                f"last owner {owner}"
            )
            self._to_dlq(
                conn, row, now, deaths_json, error,
                reason="attempts-exhausted", status="failed",
            )
            return "failed"
        conn.execute(
            "UPDATE jobs SET status = 'queued', lease_owner = NULL,"
            " lease_expires = NULL, deaths = ? WHERE key = ?",
            (deaths_json, row["key"]),
        )
        return "requeued"

    def _to_dlq(
        self,
        conn: sqlite3.Connection,
        row: sqlite3.Row,
        now: float,
        deaths_json: str,
        error: str,
        reason: str,
        status: str = "quarantined",
    ) -> None:
        """Park a job terminally with structured dead-letter forensics:
        a :class:`FailureRecord` plus the spec/chunk/death history that
        ``dlq show`` renders.  Caller holds the transaction."""
        record = FailureRecord(
            index=row["chunk_start"] if row["chunk_start"] is not None else -1,
            phase="service",
            error="PoisonJob" if reason == "poison" else "LeaseExhausted",
            message=error[:500],
            traceback_digest="-",
            attempts=row["attempts"],
            wall_time=max(0.0, now - (row["started_at"] or now)),
        )
        failure = {
            "reason": reason,
            "record": record.to_dict(),
            "label": row["label"],
            "spec": json.loads(row["spec"]),
            "chunk": (
                [row["chunk_start"], row["chunk_stop"]]
                if row["chunk_start"] is not None
                else None
            ),
            "deaths": json.loads(deaths_json) if deaths_json else [],
            "at": now,
        }
        conn.execute(
            "UPDATE jobs SET status = ?, finished_at = ?, error = ?,"
            " deaths = ?, failure = ?, lease_owner = NULL, lease_expires = NULL"
            " WHERE key = ?",
            (status, now, error, deaths_json, json.dumps(failure), row["key"]),
        )
        if status == "quarantined":
            self._counters.inc("quarantined")
        self._event(
            conn,
            row["key"],
            "quarantine" if status == "quarantined" else "fail",
            worker=row["lease_owner"],
            at=now,
            detail=f"{reason}: {error[:200]}",
        )
        if row["parent"] is not None:
            self._fail_parent_of(conn, row["parent"], row["key"], error, now)

    def _fail_parent_of(
        self, conn: sqlite3.Connection, parent: str, chunk_key: str, error: str, now: float
    ) -> None:
        """A chunk failed terminally: fail its parent cell and every
        still-queued sibling (leased siblings finish harmlessly — their
        chunk entries are ignored once the parent is failed)."""
        cur = conn.execute(
            "UPDATE jobs SET status = 'failed', finished_at = ?, error = ?"
            " WHERE key = ? AND status = 'sharded'",
            (now, f"chunk {chunk_key} failed: {error}", parent),
        )
        if cur.rowcount:
            self._event(
                conn, parent, "fail", at=now,
                detail=f"terminal: chunk {chunk_key} failed",
            )
        conn.execute(
            "UPDATE jobs SET status = 'failed', finished_at = ?, error = ?"
            " WHERE parent = ? AND status = 'queued'",
            (now, f"sibling chunk of {parent} failed", parent),
        )

    def lease(
        self,
        owner: str,
        limit: int = 1,
        lease_s: float = DEFAULT_LEASE_S,
        scheduler=None,
    ) -> list[Job]:
        """Atomically claim up to ``limit`` queued jobs for ``owner``.

        Expired leases are swept first, so a dead worker's jobs become
        claimable here without any separate reaper process.  Candidate
        order is the :class:`~repro.service.scheduler.Scheduler`'s
        ranking when one is supplied, else FIFO by submission time
        (deterministically tie-broken by key either way).  Chunk
        sub-jobs carry ``siblings_active`` (leased + done siblings) so
        the scheduler can prefer finishing in-flight cells.
        """
        now = time.time()

        def body(conn: sqlite3.Connection):
            requeued = self._expire_stale(conn, now)
            rows = conn.execute(
                "SELECT * FROM jobs WHERE status = 'queued'"
                " ORDER BY submitted_at, key"
            ).fetchall()
            jobs = [Job.from_row(r) for r in rows]
            if any(job.parent is not None for job in jobs):
                progress = {
                    r["parent"]: r["n"]
                    for r in conn.execute(
                        "SELECT parent, COUNT(*) AS n FROM jobs"
                        " WHERE parent IS NOT NULL AND status IN ('leased', 'done')"
                        " GROUP BY parent"
                    )
                }
                for job in jobs:
                    if job.parent is not None:
                        job.siblings_active = progress.get(job.parent, 0)
            if scheduler is not None:
                jobs = scheduler.rank(jobs, now)
            claimed = jobs[: max(0, limit)]
            for job in claimed:
                conn.execute(
                    "UPDATE jobs SET status = 'leased', lease_owner = ?,"
                    " lease_expires = ?, attempts = attempts + 1,"
                    " started_at = COALESCE(started_at, ?) WHERE key = ?",
                    (owner, now + lease_s, now, job.key),
                )
                job.status = "leased"
                job.lease_owner = owner
                job.lease_expires = now + lease_s
                job.attempts += 1
                self._event(
                    conn, job.key, "lease", worker=owner, at=now,
                    detail=f"attempt {job.attempts}",
                )
            return claimed, requeued

        claimed, requeued = self._write_txn(body)
        if requeued:
            self._counters.inc("expired_requeues", requeued)
            self.notify_submit.notify()
        return claimed

    def renew(self, key: str, owner: str, lease_s: float = DEFAULT_LEASE_S) -> bool:
        """Extend ``owner``'s lease; ``False`` if the lease was lost."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE key = ? AND"
                " status = 'leased' AND lease_owner = ?",
                (now + lease_s, key, owner),
            )
            if cur.rowcount > 0:
                self._event(conn, key, "renew", worker=owner, at=now)
            return cur.rowcount > 0

        return self._write_txn(body)

    def complete(self, key: str, owner: str) -> bool:
        """Mark ``owner``'s leased job done; ``False`` if lease was lost."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, error = NULL"
                " WHERE key = ? AND status = 'leased' AND lease_owner = ?",
                (now, key, owner),
            )
            if cur.rowcount > 0:
                self._event(conn, key, "complete", worker=owner, at=now)
            return cur.rowcount > 0

        done = self._write_txn(body)
        if done:
            self.notify_complete.notify()
        return done

    def complete_chunk(self, key: str, owner: str) -> tuple[bool, Optional[str]]:
        """Mark ``owner``'s leased chunk done; returns ``(last, parent)``.

        ``last`` is ``True`` iff this completion left the parent in
        status ``sharded`` with zero unfinished children — decided
        inside the write transaction, so under any interleaving exactly
        one completer observes it and performs the merge.  A lost lease
        returns ``(False, None)``; the re-leased twin will store the
        identical chunk bytes anyway.
        """
        now = time.time()

        def body(conn: sqlite3.Connection) -> tuple[bool, Optional[str]]:
            row = conn.execute(
                "SELECT parent FROM jobs WHERE key = ? AND status = 'leased'"
                " AND lease_owner = ?",
                (key, owner),
            ).fetchone()
            if row is None or row["parent"] is None:
                return False, None
            conn.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, error = NULL"
                " WHERE key = ?",
                (now, key),
            )
            self._event(conn, key, "complete", worker=owner, at=now)
            parent = row["parent"]
            prow = conn.execute(
                "SELECT status FROM jobs WHERE key = ?", (parent,)
            ).fetchone()
            remaining = conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE parent = ? AND status != 'done'",
                (parent,),
            ).fetchone()["n"]
            last = prow is not None and prow["status"] == "sharded" and remaining == 0
            return last, parent

        last, parent = self._write_txn(body)
        if parent is not None:
            self.notify_complete.notify()
        return last, parent

    def finalize_parent(self, key: str) -> bool:
        """Move a fully-merged ``sharded`` parent to ``done``."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, error = NULL"
                " WHERE key = ? AND status = 'sharded'",
                (now, key),
            )
            if cur.rowcount > 0:
                self._event(conn, key, "merge", at=now)
            return cur.rowcount > 0

        done = self._write_txn(body)
        if done:
            self.notify_complete.notify()
        return done

    def fail_parent(self, key: str, error: str) -> bool:
        """Fail a ``sharded`` parent directly (merge could not complete)
        along with its still-queued children."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET status = 'failed', finished_at = ?, error = ?"
                " WHERE key = ? AND status = 'sharded'",
                (now, error, key),
            )
            if cur.rowcount:
                self._event(conn, key, "fail", at=now, detail=f"terminal: {error[:200]}")
                conn.execute(
                    "UPDATE jobs SET status = 'failed', finished_at = ?, error = ?"
                    " WHERE parent = ? AND status = 'queued'",
                    (now, f"sibling merge of {key} failed", key),
                )
            return cur.rowcount > 0

        failed = self._write_txn(body)
        if failed:
            self.notify_complete.notify()
        return failed

    def fail(self, key: str, owner: str, error: str, retryable: bool = True) -> bool:
        """Record a failed execution: requeue if attempts remain (and the
        failure is retryable), else fail terminally with a structured
        :class:`FailureRecord` in the ``failure`` column.  A terminal
        chunk failure propagates to its parent cell and queued siblings."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> Optional[bool]:
            row = conn.execute(
                "SELECT * FROM jobs WHERE key = ? AND"
                " status = 'leased' AND lease_owner = ?",
                (key, owner),
            ).fetchone()
            if row is None:
                return None
            if retryable and row["attempts"] < row["max_attempts"]:
                conn.execute(
                    "UPDATE jobs SET status = 'queued', lease_owner = NULL,"
                    " lease_expires = NULL, error = ? WHERE key = ?",
                    (error, key),
                )
                self._event(
                    conn, key, "fail", worker=owner, at=now,
                    detail=f"retryable: {error[:200]}",
                )
                return True  # requeued
            record = FailureRecord(
                index=row["chunk_start"] if row["chunk_start"] is not None else -1,
                phase="service",
                error="JobFailed",
                message=error[:500],
                traceback_digest="-",
                attempts=row["attempts"],
                wall_time=max(0.0, now - (row["started_at"] or now)),
            )
            failure = {
                "reason": "execution" if retryable else "terminal",
                "record": record.to_dict(),
                "label": row["label"],
                "spec": json.loads(row["spec"]),
                "chunk": (
                    [row["chunk_start"], row["chunk_stop"]]
                    if row["chunk_start"] is not None
                    else None
                ),
                "deaths": json.loads(row["deaths"]) if row["deaths"] else [],
                "at": now,
            }
            conn.execute(
                "UPDATE jobs SET status = 'failed', finished_at = ?,"
                " error = ?, failure = ? WHERE key = ?",
                (now, error, json.dumps(failure), key),
            )
            self._event(
                conn, key, "fail", worker=owner, at=now,
                detail=f"terminal: {error[:200]}",
            )
            if row["parent"] is not None:
                self._fail_parent_of(conn, row["parent"], key, error, now)
            return False  # terminal

        requeued = self._write_txn(body)
        if requeued is None:
            return False
        if requeued:
            self.notify_submit.notify()
        else:
            self.notify_complete.notify()
        return True

    def report_worker_death(
        self, owner: str, pid: Optional[int] = None, detail: str = "worker died"
    ) -> list[str]:
        """A supervisor observed ``owner`` die: release its leases *now*
        (recording a death on each, with poison detection) instead of
        waiting out the lease expiry, and tombstone its registry row.
        Returns the keys whose leases were released."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> tuple[list[str], int]:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE status = 'leased' AND lease_owner = ?",
                (owner,),
            ).fetchall()
            requeued = 0
            for row in rows:
                if self._record_death(conn, row, now, detail, pid=pid) == "requeued":
                    requeued += 1
            conn.execute(
                "UPDATE workers SET state = 'dead', heartbeat_at = ? WHERE id = ?",
                (now, owner),
            )
            return [r["key"] for r in rows], requeued

        keys, requeued = self._write_txn(body)
        if requeued:
            self.notify_submit.notify()
        if len(keys) > requeued:
            self.notify_complete.notify()  # something went terminal/DLQ
        return keys

    def release(self, key: str, owner: str) -> bool:
        """Voluntarily hand back a healthy lease (graceful drain): the
        job returns to ``queued`` with the attempt refunded — a clean
        shutdown must not burn the job's attempt budget or count as a
        death.  ``False`` if the lease was already lost."""
        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET status = 'queued', lease_owner = NULL,"
                " lease_expires = NULL, attempts = MAX(0, attempts - 1)"
                " WHERE key = ? AND status = 'leased' AND lease_owner = ?",
                (key, owner),
            )
            if cur.rowcount > 0:
                self._event(conn, key, "release", worker=owner)
            return cur.rowcount > 0

        released = self._write_txn(body)
        if released:
            self._counters.inc("released")
            self.notify_submit.notify()
        return released

    def requeue_children(self, parent: str, keys: Sequence[str]) -> int:
        """Self-healing merge: re-queue specific chunk children of a
        still-``sharded`` parent whose store entries went missing or
        corrupt (the merger re-simulates them instead of failing the
        cell).  Attempt budgets still apply — children already at their
        cap are left alone, so a truly broken cell cannot loop forever.
        Returns how many became leasable again."""
        if not keys:
            return 0

        def body(conn: sqlite3.Connection) -> int:
            prow = conn.execute(
                "SELECT status FROM jobs WHERE key = ?", (parent,)
            ).fetchone()
            if prow is None or prow["status"] != "sharded":
                return 0
            marks = ",".join("?" for _ in keys)
            cur = conn.execute(
                f"UPDATE jobs SET status = 'queued', lease_owner = NULL,"
                f" lease_expires = NULL, finished_at = NULL, error = NULL"
                f" WHERE parent = ? AND key IN ({marks})"
                f" AND status = 'done' AND attempts < max_attempts",
                (parent, *keys),
            )
            if cur.rowcount:
                self._event(
                    conn, parent, "retry",
                    detail=f"merge re-queued {cur.rowcount} lost chunk(s)",
                )
            return cur.rowcount

        requeued = self._write_txn(body)
        if requeued:
            self._counters.inc("merge_requeues", requeued)
            self.notify_submit.notify()
        return requeued

    # ------------------------------------------------------------------
    # worker registry
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str, pid: Optional[int] = None) -> None:
        """Record a worker's existence (idempotent; re-registration
        resets its heartbeat and state)."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO workers (id, pid, started_at, heartbeat_at, state)"
                " VALUES (?, ?, ?, ?, 'idle')"
                " ON CONFLICT(id) DO UPDATE SET pid = excluded.pid,"
                " started_at = excluded.started_at,"
                " heartbeat_at = excluded.heartbeat_at, state = 'idle'",
                (worker_id, pid if pid is not None else os.getpid(), now, now),
            )

        self._write_txn(body)

    def worker_heartbeat(
        self,
        worker_id: str,
        state: str = "idle",
        jobs_done: Optional[int] = None,
        current_key: Optional[str] = None,
        reps_done: Optional[int] = None,
    ) -> None:
        """Refresh a worker's liveness stamp and declared state.

        ``current_key`` is the lease the worker is executing right now
        (``None`` clears it — an idle worker holds nothing) and
        ``reps_done`` its cumulative rep count; together they power the
        dashboard's current-lease and reps/sec columns."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> None:
            sets = ["heartbeat_at = ?", "state = ?", "current_key = ?"]
            params: list = [now, state, current_key]
            if jobs_done is not None:
                sets.append("jobs_done = ?")
                params.append(jobs_done)
            if reps_done is not None:
                sets.append("reps_done = ?")
                params.append(reps_done)
            conn.execute(
                f"UPDATE workers SET {', '.join(sets)} WHERE id = ?",
                (*params, worker_id),
            )

        self._write_txn(body)

    def deregister_worker(self, worker_id: str, state: str = "stopped") -> None:
        """Mark a worker's registry row terminal (``stopped`` on clean
        exit, ``dead`` when reported by a supervisor).  The row is kept
        — it is the pid provenance for death forensics."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> None:
            conn.execute(
                "UPDATE workers SET heartbeat_at = ?, state = ? WHERE id = ?",
                (now, state, worker_id),
            )

        self._write_txn(body)

    def workers(self) -> list[WorkerInfo]:
        """All registered workers, most recent heartbeat first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workers ORDER BY heartbeat_at DESC, id"
            ).fetchall()
        return [
            WorkerInfo(
                id=r["id"],
                pid=r["pid"],
                started_at=r["started_at"],
                heartbeat_at=r["heartbeat_at"],
                state=r["state"],
                jobs_done=r["jobs_done"],
                current_key=r["current_key"],
                reps_done=r["reps_done"] or 0,
            )
            for r in rows
        ]

    # ------------------------------------------------------------------
    # dead-letter queue
    # ------------------------------------------------------------------
    def dlq_list(self) -> list[Job]:
        """Quarantined jobs, oldest quarantine first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status = 'quarantined'"
                " ORDER BY finished_at, key"
            ).fetchall()
        return [Job.from_row(r) for r in rows]

    def dlq_retry(self, key: str) -> bool:
        """Revive a quarantined (or terminally failed) job with a fresh
        attempt budget and cleared forensics.  The revived run is
        bit-identical to a clean one — seeding is content-derived, so
        quarantine history cannot leak into results.  ``False`` if the
        key is unknown or not in a dead-letter state."""
        now = time.time()

        def body(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "UPDATE jobs SET status = 'queued', attempts = 0, error = NULL,"
                " deaths = NULL, failure = NULL, lease_owner = NULL,"
                " lease_expires = NULL, finished_at = NULL, submitted_at = ?"
                " WHERE key = ? AND status IN ('quarantined', 'failed')",
                (now, key),
            )
            if cur.rowcount == 0:
                return False
            # A revived cell runs whole even if its doomed attempt was
            # sharded — stale chunk children must not linger as work.
            conn.execute("DELETE FROM jobs WHERE parent = ?", (key,))
            self._event(conn, key, "retry", at=now, detail="dlq retry: fresh budget")
            return True

        revived = self._write_txn(body)
        if revived:
            self._counters.inc("dlq_retried")
            self.notify_submit.notify()
        return revived

    def dlq_purge(self, key: Optional[str] = None) -> int:
        """Drop quarantined rows (one key, or all); returns the count.
        Purging abandons the work — collect will re-simulate in-process
        or a resubmission will start a fresh job."""
        def body(conn: sqlite3.Connection) -> int:
            if key is not None:
                return conn.execute(
                    "DELETE FROM jobs WHERE key = ? AND status = 'quarantined'",
                    (key,),
                ).rowcount
            return conn.execute(
                "DELETE FROM jobs WHERE status = 'quarantined'"
            ).rowcount

        return self._write_txn(body)

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def prune(self, older_than_s: Optional[float] = None) -> int:
        """Delete done/failed job rows finished before the retention
        window; returns how many rows went.

        The default window comes from ``REPRO_PRUNE_S`` (seconds; unset
        means 7 days).  Chunk children go with their parent; a parent is
        only pruned once none of its children are queued or leased.
        Results are untouched — they live in the store under the same
        key, so a pruned cell is still collectable and a re-submission
        is served without re-simulation.  Sweep records are kept (a few
        bytes each) so old sweeps remain renderable from the store.
        """
        if older_than_s is None:
            raw = os.environ.get("REPRO_PRUNE_S", "")
            older_than_s = float(raw) if raw else DEFAULT_RETENTION_S
        cutoff = time.time() - max(0.0, older_than_s)

        def body(conn: sqlite3.Connection) -> int:
            keys = [
                r["key"]
                for r in conn.execute(
                    "SELECT key FROM jobs j WHERE parent IS NULL"
                    " AND status IN ('done', 'failed')"
                    " AND COALESCE(finished_at, submitted_at) < ?"
                    " AND NOT EXISTS (SELECT 1 FROM jobs c WHERE c.parent = j.key"
                    "                 AND c.status IN ('queued', 'leased'))",
                    (cutoff,),
                )
            ]
            pruned = 0
            for key in keys:
                pruned += conn.execute(
                    "DELETE FROM jobs WHERE key = ? OR parent = ?", (key, key)
                ).rowcount
                # The timeline goes with the job (chunk events share the
                # parent's key prefix) — events never outlive their rows.
                conn.execute(
                    "DELETE FROM events WHERE key = ? OR key LIKE ?",
                    (key, f"{key}:%"),
                )
            return pruned

        pruned = self._write_txn(body)
        if pruned:
            self._counters.inc("pruned", pruned)
        return pruned

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def job(self, key: str) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute("SELECT * FROM jobs WHERE key = ?", (key,)).fetchone()
        return Job.from_row(row) if row is not None else None

    def jobs(self, status: Optional[str] = None) -> list[Job]:
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY submitted_at, key"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status = ? ORDER BY submitted_at, key",
                    (status,),
                ).fetchall()
        return [Job.from_row(r) for r in rows]

    def children(self, key: str) -> list[Job]:
        """A sharded parent's chunk sub-jobs, in rep-index order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE parent = ? ORDER BY chunk_start", (key,)
            ).fetchall()
        return [Job.from_row(r) for r in rows]

    def counts(self, cells_only: bool = False) -> dict:
        """Job counts by status (every known status always present).
        ``cells_only`` drops chunk sub-jobs — the campaign-progress
        denominator counts cells, not slices."""
        sql = "SELECT status, COUNT(*) AS n FROM jobs"
        if cells_only:
            sql += " WHERE parent IS NULL"
        with self._lock:
            rows = self._conn.execute(sql + " GROUP BY status").fetchall()
        out = dict.fromkeys(_STATUSES, 0)
        for row in rows:
            out[row["status"]] = row["n"]
        return out

    def events(
        self,
        key: Optional[str] = None,
        since_seq: int = 0,
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Lifecycle events in commit order, each
        ``{"seq", "key", "event", "worker", "at", "mono", "detail"}``.
        ``key`` filters to one job; ``since_seq`` resumes an earlier
        read (pass the last seq seen)."""
        sql = "SELECT * FROM events WHERE seq > ?"
        params: list = [since_seq]
        if key is not None:
            sql += " AND key = ?"
            params.append(key)
        sql += " ORDER BY seq"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [dict(r) for r in rows]

    def event_counts(self) -> dict:
        """Total recorded events per transition type — the fleet-wide
        counters the monitor exports (unlike :meth:`stats`, these are
        derived from the shared database, not this process's memory)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT event, COUNT(*) AS n FROM events GROUP BY event"
            ).fetchall()
        return {r["event"]: r["n"] for r in rows}

    def drained(self, keys: Optional[Sequence[str]] = None) -> bool:
        """No queued or leased work left (optionally among ``keys`` —
        chunk sub-jobs of a listed parent count as its work)."""
        with self._lock:
            if keys is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM jobs WHERE status IN ('queued', 'leased')"
                ).fetchone()
                return row["n"] == 0
            marks = ",".join("?" for _ in keys)
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM jobs WHERE"
                f" (key IN ({marks}) OR parent IN ({marks}))"
                " AND status IN ('queued', 'leased')",
                tuple(keys) + tuple(keys),
            ).fetchone()
            return row["n"] == 0

    def sweep(self, sweep_id: str) -> Optional[dict]:
        """The sweep's definition plus its ordered job keys."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM sweeps WHERE id = ?", (sweep_id,)
            ).fetchone()
            if row is None:
                return None
            keys = [
                r["key"]
                for r in self._conn.execute(
                    "SELECT key FROM sweep_jobs WHERE sweep_id = ? ORDER BY position",
                    (sweep_id,),
                ).fetchall()
            ]
        return {
            "id": row["id"],
            "title": row["title"],
            "definition": json.loads(row["definition"]),
            "submitted_at": row["submitted_at"],
            "client": row["client"],
            "keys": keys,
        }

    def sweep_ids(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT id FROM sweeps ORDER BY submitted_at, id"
            ).fetchall()
        return [r["id"] for r in rows]
