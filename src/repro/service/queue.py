r"""Durable SQLite-backed job queue for the campaign service.

One row per experiment *cell*, keyed by the cell's content-hash result
key (the :class:`~repro.harness.cache.ResultCache` key) — identical
submissions from any number of clients coalesce into a single job, and
a completed job's result is exactly the store entry under that key.
Sweeps are recorded as ordered key lists over the same jobs, so two
overlapping sweeps share cells.

Lease lifecycle::

    queued --lease--> leased --complete--> done
      ^                 |  \--fail(retryable)--> queued
      |                 \--fail(terminal)------> failed
      \--(lease expiry, attempts left)----------/

A worker renews its lease while running; a worker that dies silently
(SIGKILL, OOM) simply stops renewing, and the next ``lease()`` call
sweeps its expired jobs back to ``queued`` — or to ``failed`` once the
attempt cap is exhausted.  Expiry, like every other transition, runs
inside a ``BEGIN IMMEDIATE`` transaction, so exactly one worker can
hold a job at a time.

Durability follows the journal's conventions: WAL mode, a generous
busy timeout, and every state change committed before the call
returns.  The queue file can be inspected with any sqlite3 client.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["Job", "JobQueue", "DEFAULT_MAX_ATTEMPTS", "DEFAULT_LEASE_S"]

#: lease dispatches (not rep retries) a job gets before it is failed
DEFAULT_MAX_ATTEMPTS = 3
#: seconds a lease lives without renewal
DEFAULT_LEASE_S = 60.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key           TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    noise         TEXT,
    label         TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'queued',
    priority      INTEGER NOT NULL DEFAULT 0,
    expected_s    REAL NOT NULL DEFAULT 0.0,
    cached        INTEGER NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    submitted_at  REAL NOT NULL,
    client        TEXT,
    lease_owner   TEXT,
    lease_expires REAL,
    started_at    REAL,
    finished_at   REAL,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE TABLE IF NOT EXISTS sweeps (
    id            TEXT PRIMARY KEY,
    title         TEXT,
    definition    TEXT NOT NULL,
    submitted_at  REAL NOT NULL,
    client        TEXT
);
CREATE TABLE IF NOT EXISTS sweep_jobs (
    sweep_id  TEXT NOT NULL,
    position  INTEGER NOT NULL,
    key       TEXT NOT NULL,
    PRIMARY KEY (sweep_id, position)
);
"""


@dataclass
class Job:
    """One queued cell, as handed to a worker or a status listing."""

    key: str
    spec: dict
    noise: Optional[dict]
    label: str
    status: str
    priority: int
    expected_s: float
    cached: bool
    attempts: int
    max_attempts: int
    submitted_at: float
    lease_owner: Optional[str] = None
    lease_expires: Optional[float] = None
    error: Optional[str] = None

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            key=row["key"],
            spec=json.loads(row["spec"]),
            noise=json.loads(row["noise"]) if row["noise"] else None,
            label=row["label"],
            status=row["status"],
            priority=row["priority"],
            expected_s=row["expected_s"],
            cached=bool(row["cached"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            submitted_at=row["submitted_at"],
            lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            error=row["error"],
        )


class JobQueue:
    """The durable queue; safe for concurrent processes and threads.

    Every instance owns one connection (serialised by an internal
    lock); cross-process consistency comes from SQLite itself — WAL
    mode plus ``BEGIN IMMEDIATE`` write transactions, with a busy
    timeout that rides out lock contention instead of erroring.
    """

    def __init__(self, path: os.PathLike | str):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        key: str,
        spec: dict,
        noise: Optional[dict],
        label: str,
        priority: int = 0,
        expected_s: float = 0.0,
        cached: bool = False,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        client: Optional[str] = None,
    ) -> bool:
        """Enqueue one cell; returns ``True`` if a new job was created.

        Idempotent by key: re-submitting an existing queued / leased /
        done job is a no-op (the caller shares the existing job's
        fate), while re-submitting a *failed* job revives it with a
        fresh attempt budget.
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    """INSERT INTO jobs (key, spec, noise, label, priority, expected_s,
                                         cached, max_attempts, submitted_at, client)
                       VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                       ON CONFLICT(key) DO UPDATE SET
                           status = 'queued', attempts = 0, error = NULL,
                           lease_owner = NULL, lease_expires = NULL,
                           submitted_at = excluded.submitted_at,
                           priority = excluded.priority,
                           max_attempts = excluded.max_attempts
                       WHERE jobs.status = 'failed'""",
                    (
                        key,
                        json.dumps(spec, sort_keys=True),
                        json.dumps(noise, sort_keys=True) if noise is not None else None,
                        label,
                        priority,
                        expected_s,
                        int(cached),
                        max_attempts,
                        now,
                        client,
                    ),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return cur.rowcount > 0

    def record_sweep(
        self,
        sweep_id: str,
        definition: dict,
        keys: Sequence[str],
        title: Optional[str] = None,
        client: Optional[str] = None,
    ) -> None:
        """Register a sweep as an ordered key list over existing jobs."""
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO sweeps (id, title, definition, submitted_at, client)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (sweep_id, title, json.dumps(definition, sort_keys=True), now, client),
                )
                self._conn.execute("DELETE FROM sweep_jobs WHERE sweep_id = ?", (sweep_id,))
                self._conn.executemany(
                    "INSERT INTO sweep_jobs (sweep_id, position, key) VALUES (?, ?, ?)",
                    [(sweep_id, i, k) for i, k in enumerate(keys)],
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------
    def _expire_stale(self, now: float) -> None:
        """Sweep expired leases back to queued (or failed). Caller holds
        the transaction."""
        rows = self._conn.execute(
            "SELECT key, attempts, max_attempts, lease_owner FROM jobs"
            " WHERE status = 'leased' AND lease_expires < ?",
            (now,),
        ).fetchall()
        for row in rows:
            if row["attempts"] >= row["max_attempts"]:
                self._conn.execute(
                    "UPDATE jobs SET status = 'failed', finished_at = ?,"
                    " error = ? WHERE key = ?",
                    (
                        now,
                        f"lease expired after {row['attempts']} attempt(s); "
                        f"last owner {row['lease_owner']}",
                        row["key"],
                    ),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET status = 'queued', lease_owner = NULL,"
                    " lease_expires = NULL WHERE key = ?",
                    (row["key"],),
                )

    def lease(
        self,
        owner: str,
        limit: int = 1,
        lease_s: float = DEFAULT_LEASE_S,
        scheduler=None,
    ) -> list[Job]:
        """Atomically claim up to ``limit`` queued jobs for ``owner``.

        Expired leases are swept first, so a dead worker's jobs become
        claimable here without any separate reaper process.  Candidate
        order is the :class:`~repro.service.scheduler.Scheduler`'s
        ranking when one is supplied, else FIFO by submission time
        (deterministically tie-broken by key either way).
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._expire_stale(now)
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status = 'queued'"
                    " ORDER BY submitted_at, key"
                ).fetchall()
                jobs = [Job.from_row(r) for r in rows]
                if scheduler is not None:
                    jobs = scheduler.rank(jobs, now)
                claimed = jobs[: max(0, limit)]
                for job in claimed:
                    self._conn.execute(
                        "UPDATE jobs SET status = 'leased', lease_owner = ?,"
                        " lease_expires = ?, attempts = attempts + 1,"
                        " started_at = COALESCE(started_at, ?) WHERE key = ?",
                        (owner, now + lease_s, now, job.key),
                    )
                    job.status = "leased"
                    job.lease_owner = owner
                    job.lease_expires = now + lease_s
                    job.attempts += 1
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return claimed

    def renew(self, key: str, owner: str, lease_s: float = DEFAULT_LEASE_S) -> bool:
        """Extend ``owner``'s lease; ``False`` if the lease was lost."""
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE key = ? AND"
                " status = 'leased' AND lease_owner = ?",
                (now + lease_s, key, owner),
            )
        return cur.rowcount > 0

    def complete(self, key: str, owner: str) -> bool:
        """Mark ``owner``'s leased job done; ``False`` if lease was lost."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, error = NULL"
                " WHERE key = ? AND status = 'leased' AND lease_owner = ?",
                (time.time(), key, owner),
            )
        return cur.rowcount > 0

    def fail(self, key: str, owner: str, error: str, retryable: bool = True) -> bool:
        """Record a failed execution: requeue if attempts remain (and the
        failure is retryable), else fail terminally."""
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT attempts, max_attempts FROM jobs WHERE key = ? AND"
                    " status = 'leased' AND lease_owner = ?",
                    (key, owner),
                ).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return False
                if retryable and row["attempts"] < row["max_attempts"]:
                    self._conn.execute(
                        "UPDATE jobs SET status = 'queued', lease_owner = NULL,"
                        " lease_expires = NULL, error = ? WHERE key = ?",
                        (error, key),
                    )
                else:
                    self._conn.execute(
                        "UPDATE jobs SET status = 'failed', finished_at = ?,"
                        " error = ? WHERE key = ?",
                        (now, error, key),
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def job(self, key: str) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute("SELECT * FROM jobs WHERE key = ?", (key,)).fetchone()
        return Job.from_row(row) if row is not None else None

    def jobs(self, status: Optional[str] = None) -> list[Job]:
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY submitted_at, key"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status = ? ORDER BY submitted_at, key",
                    (status,),
                ).fetchall()
        return [Job.from_row(r) for r in rows]

    def counts(self) -> dict:
        """Job counts by status (all four statuses always present)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        out = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
        for row in rows:
            out[row["status"]] = row["n"]
        return out

    def drained(self, keys: Optional[Sequence[str]] = None) -> bool:
        """No queued or leased work left (optionally among ``keys``)."""
        with self._lock:
            if keys is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM jobs WHERE status IN ('queued', 'leased')"
                ).fetchone()
                return row["n"] == 0
            marks = ",".join("?" for _ in keys)
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM jobs WHERE key IN ({marks})"
                " AND status IN ('queued', 'leased')",
                tuple(keys),
            ).fetchone()
            return row["n"] == 0

    def sweep(self, sweep_id: str) -> Optional[dict]:
        """The sweep's definition plus its ordered job keys."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM sweeps WHERE id = ?", (sweep_id,)
            ).fetchone()
            if row is None:
                return None
            keys = [
                r["key"]
                for r in self._conn.execute(
                    "SELECT key FROM sweep_jobs WHERE sweep_id = ? ORDER BY position",
                    (sweep_id,),
                ).fetchall()
            ]
        return {
            "id": row["id"],
            "title": row["title"],
            "definition": json.loads(row["definition"]),
            "submitted_at": row["submitted_at"],
            "client": row["client"],
            "keys": keys,
        }

    def sweep_ids(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT id FROM sweeps ORDER BY submitted_at, id"
            ).fetchall()
        return [r["id"] for r in rows]
