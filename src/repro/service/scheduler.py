"""Scheduler: ranks queued cells for lease order.

Scoring is a pure function of the job row and the clock, so the
ranking is reproducible from the queue database alone::

    score = priority * w.priority
          + age_s    * w.aging
          - expected_s * w.runtime
          + (1 if store had the key at submit) * w.cache_hit
          + (1 if a chunk of an in-flight cell)  * w.shard_progress
          - distinct_dead_workers * w.hazard

* **priority** — client-assigned urgency, the dominant term;
* **aging** — seconds since submission, so starved low-priority work
  eventually overtakes fresh high-priority work;
* **expected runtime** — the resolved-context duration estimate times
  the rep count, recorded at submit; shorter cells first empties the
  queue fastest (smallest-job-first) without starving long ones
  (aging wins eventually);
* **cache-hit probability** — cells whose key already had a store
  entry at submit are near-free (the worker serves them from the
  store), so they jump the queue and unblock waiting clients early;
* **shard progress** — a chunk whose sibling chunks are already leased
  or done belongs to a cell that is *partially computed*: finishing it
  releases a whole merged result, while starting a fresh cell merely
  begins another.  Preferring in-flight cells bounds the number of
  half-done parents and cuts sweep tail latency;
* **hazard** — a job that has already killed a worker mid-lease
  (recorded in its death history) is demoted below fresh work: if it
  is poisonous, healthy cells finish first and fewer workers die
  confirming it before the dead-letter quarantine trips.

Ties break deterministically by submission time then key, so two
schedulers over the same snapshot produce the same order.  Scheduling
affects *when* a cell runs, never *what* it computes — results are
content-keyed and bit-identical in any execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.queue import Job

__all__ = ["Scheduler", "SchedulerWeights"]


@dataclass(frozen=True)
class SchedulerWeights:
    """Relative weights of the five scoring terms (score units are
    arbitrary; only differences matter)."""

    #: per unit of client-assigned priority
    priority: float = 100.0
    #: per second of queue age — a cell gains one priority unit's worth
    #: of score every ``priority / aging`` seconds of waiting
    aging: float = 1.0
    #: per second of expected runtime (subtracted: shortest-first)
    runtime: float = 10.0
    #: flat bonus for cells already present in the shared store
    cache_hit: float = 1000.0
    #: flat bonus for chunk sub-jobs whose cell is already in flight
    #: (some sibling chunk leased or done) — finish before starting.
    #: Below ``cache_hit`` (store-served cells stay near-free) and above
    #: five priority units, so only an explicitly urgent fresh cell
    #: preempts completing a half-done one.
    shard_progress: float = 500.0
    #: penalty per *distinct worker* a job has already killed mid-lease
    #: — suspected-poisonous work runs after healthy work, so a bad cell
    #: takes out the fleet as late and as rarely as possible.  Scaled
    #: like ``shard_progress`` so one death roughly cancels the
    #: in-flight bonus and outweighs five priority units.
    hazard: float = 500.0


class Scheduler:
    """Deterministic scorer/ranker over queued jobs."""

    def __init__(self, weights: SchedulerWeights | None = None):
        self.weights = weights if weights is not None else SchedulerWeights()

    def score(self, job: "Job", now: float) -> float:
        w = self.weights
        age = max(0.0, now - job.submitted_at)
        return (
            job.priority * w.priority
            + age * w.aging
            - job.expected_s * w.runtime
            + (w.cache_hit if job.cached else 0.0)
            + (
                w.shard_progress
                if job.parent is not None and job.siblings_active > 0
                else 0.0
            )
            - job.distinct_death_workers * w.hazard
        )

    def rank(self, jobs: list["Job"], now: float) -> list["Job"]:
        """Jobs in lease order: descending score, stable deterministic
        tie-break (submission time, then key)."""
        return sorted(
            jobs, key=lambda j: (-self.score(j, now), j.submitted_at, j.key)
        )
