"""Campaign service: durable job queue, leased workers, shared store.

Promotes campaigns from one-shot CLI invocations to a long-running
service many clients can share:

* :class:`~repro.service.queue.JobQueue` — a durable SQLite submission
  queue (submit / lease / renew / complete / fail) with lease expiry
  and attempt caps; jobs are keyed by the cell's content-hash result
  key, so identical submissions from different clients coalesce into
  one job.
* :class:`~repro.service.scheduler.Scheduler` — ranks queued cells by
  priority, aging, expected runtime (the resolved-context duration
  estimate), and cache-hit probability.
* :class:`~repro.service.store.SharedResultStore` — the
  :class:`~repro.harness.cache.ResultCache` generalised for concurrent
  multi-process access: per-key file locks serialise the
  miss-run-store section, atomic writes keep envelopes untorn, and
  duplicate submissions are served from the store with zero
  re-simulation.
* :class:`~repro.service.worker.Worker` — a process that leases jobs,
  runs them through the existing executor / fault-policy / telemetry
  stack unchanged, and heartbeats its leases; a SIGKILLed worker's
  jobs are re-leased after expiry and re-run bit-identically (per-rep
  seeding is content-derived, never worker-derived).
* :class:`~repro.service.client.ServiceClient` — the submit/poll front
  end behind ``repro-noise service`` and the campaign
  ``submit_or_run`` seam; a shard threshold splits big cells into
  chunk sub-jobs so several workers chew one cell concurrently.
* :class:`~repro.service.notify.NotifyChannel` — fifo-based wakeups
  (submit → idle workers, complete → waiting clients) that collapse
  the poll-interval queue tax; waiters keep polling as a fallback, so
  a lost wakeup costs latency, never correctness.

The self-healing tier on top:

* :class:`~repro.service.supervisor.Supervisor` — spawns and monitors
  a fleet of worker processes: observed crashes release leases
  immediately (``report_worker_death``), restarts follow seeded
  exponential backoff with crash-loop parking, and SIGTERM drains
  gracefully (second signal = fail-fast lease release).
* **Dead-letter queue** — a job that kills two distinct workers
  mid-lease is quarantined with structured
  :class:`~repro.harness.faults.FailureRecord` forensics before it
  burns the fleet (``repro-noise service dlq list|show|retry|purge``).
* **Store integrity** — every envelope and chunk entry is sealed with
  a sha256 at publish and verified on read; corrupt entries are
  quarantined to ``.corrupt`` and transparently re-simulated.
* :func:`~repro.service.fsck.fsck` — cross-checks queue↔store
  invariants (lost results, unmergeable sharded parents, orphan chunk
  entries, leases held by dead workers) and, with ``repair=True``,
  re-queues lost work.
* :class:`~repro.service.monitor.MonitorServer` — the read-only
  observability plane: ``/metrics`` (Prometheus text exposition),
  ``/status`` and ``/jobs/<key>`` (JSON), and ``/healthz``; built on
  the queue's append-only lifecycle-events table.  The same module
  stitches per-worker telemetry with lifecycle events into a single
  Perfetto trace (:func:`~repro.service.monitor.stitch_trace`) and
  renders the ``repro-noise service top`` dashboard
  (:func:`~repro.service.monitor.render_top`).  Everything here is
  read-only by construction — monitoring cannot perturb results.

Bit-identity is the design constraint throughout: a sweep drained
through the service — including after a mid-lease worker kill, a
corrupted store entry, and a supervisor-restarted fleet — renders
byte-identical to the same sweep run in-process.
"""

from repro.service.client import ServiceClient
from repro.service.fsck import FsckReport, fsck
from repro.service.monitor import (
    MonitorServer,
    campaign_progress,
    metrics_text,
    render_top,
    stitch_trace,
)
from repro.service.notify import NotifyChannel, Subscription, notify_enabled
from repro.service.queue import Job, JobQueue, WorkerInfo
from repro.service.scheduler import Scheduler, SchedulerWeights
from repro.service.store import SharedResultStore
from repro.service.supervisor import Supervisor, WorkerSlot
from repro.service.worker import Worker

__all__ = [
    "Job",
    "JobQueue",
    "WorkerInfo",
    "NotifyChannel",
    "Subscription",
    "notify_enabled",
    "Scheduler",
    "SchedulerWeights",
    "SharedResultStore",
    "ServiceClient",
    "Supervisor",
    "WorkerSlot",
    "Worker",
    "FsckReport",
    "fsck",
    "MonitorServer",
    "campaign_progress",
    "metrics_text",
    "render_top",
    "stitch_trace",
]
