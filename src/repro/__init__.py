"""repro — reproducible performance evaluation under noise injection.

A full reproduction of *"Reproducible Performance Evaluation of OpenMP
and SYCL Workloads under Noise Injection"* (SC Workshops '25) as a
Python library: a simulated multicore substrate, OpenMP-like and
SYCL-like runtime models, the paper's three workloads, and — the
paper's contribution — a trace-replay noise injector with its full
collect → refine → configure → inject pipeline.

Quickstart::

    from repro import NoiseInjectionPipeline, ExperimentSpec, run_experiment

    spec = ExperimentSpec(platform="intel-9700kf", workload="nbody",
                          model="omp", strategy="Rm", reps=50, seed=7)
    baseline = run_experiment(spec)
    pipe = NoiseInjectionPipeline.from_spec(spec)
    result = pipe.run()           # collect, refine, inject, measure
    print(result.summary())
"""

from repro._version import __version__
from repro.core import (
    NoiseConfig,
    NoiseInjectionPipeline,
    NoiseInjector,
    Trace,
    TraceSet,
    build_profile,
    collect_traces,
    generate_config,
    refine_worst_case,
    replication_accuracy,
)
from repro.harness.executor import ParallelExecutor, SerialExecutor, get_executor
from repro.harness.experiment import ExperimentSpec, ResultSet, run_experiment
from repro.harness.sweep import SweepResult, sweep
from repro.mitigation.strategies import MitigationStrategy, get_strategy, STRATEGY_NAMES
from repro.sim.platform import available_platforms, get_platform

__all__ = [
    "__version__",
    "Trace",
    "TraceSet",
    "NoiseConfig",
    "NoiseInjector",
    "NoiseInjectionPipeline",
    "build_profile",
    "collect_traces",
    "generate_config",
    "refine_worst_case",
    "replication_accuracy",
    "ExperimentSpec",
    "ResultSet",
    "run_experiment",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "sweep",
    "SweepResult",
    "MitigationStrategy",
    "get_strategy",
    "STRATEGY_NAMES",
    "available_platforms",
    "get_platform",
]
