"""Deterministic chaos harness: seeded fault injection for the injector.

The noise-injection framework exists to study how systems behave under
disturbance — this module turns that lens on the harness itself.  With

    REPRO_CHAOS=PROFILE:SEED[:RATE]

set, seeded fault injectors fire inside the rep execution path and the
result-cache write path, exercising every recovery mechanism of
:mod:`repro.harness.faults` / the executors:

========== ==========================================================
profile    injected fault
========== ==========================================================
``raise``  an exception raised before the rep's simulation starts
``timeout``an induced stall (sleep past the policy's per-rep timeout)
``crash``  worker death via ``os._exit`` (pool-breakage recovery);
           downgraded to an exception outside pool workers
``corrupt``cache-file corruption after a completed write (torn-entry
           salvage)
``all``    a deterministic mix of the above
========== ==========================================================

**Service-tier profiles** exercise the campaign service's self-healing
machinery (:mod:`repro.service`) instead of the rep path:

================ ====================================================
profile          injected fault
================ ====================================================
``kill-worker``  ``os._exit`` a *service* worker right after it leases
                 a job (lease release / poison detection / supervisor
                 restart); only fires in processes that declared
                 themselves via :func:`mark_service_worker`
``corrupt-store``flip one byte mid-file after a completed store write
                 (sha256 verification, ``.corrupt`` quarantine,
                 re-simulation)
``torn-fifo``    drop/tear notify-fifo wakeup writes (latency, never
                 correctness — waiters re-check on their poll timeout)
``busy-storm``   synthetic SQLITE_BUSY on queue write transactions
                 (bounded seeded-backoff retry; never past the retry
                 budget, so storms degrade to waits, not errors)
================ ====================================================

Service faults are keyed on job keys / per-process draw counters, so
they are deterministic per (chaos seed, workload) like everything else
here; ``all`` deliberately excludes them — killing service workers is
opt-in per profile.

Faults are pure functions of ``(chaos seed, experiment seed, rep
index, attempt)`` — independent of worker count, chunking, or timing —
and by default fire only on a rep's *first* attempt, so every injected
fault is recoverable and a chaos run converges to results bit-identical
to an undisturbed run.  Appending ``!`` to the profile (e.g.
``crash!``) makes faults persist across attempts, which is how tests
drive the executor's terminal paths (degrade-to-serial, skip policy).

Nothing in this module runs unless ``REPRO_CHAOS`` is set; the hot
path pays one cached environment lookup.
"""

from __future__ import annotations

import hashlib
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro import telemetry as _telemetry

__all__ = ["ChaosError", "ChaosSpec", "get_chaos", "parse_chaos", "CHAOS_PROFILES"]

_log = logging.getLogger(__name__)

#: profiles targeting the rep execution / cache-write paths
_REP_PROFILES = ("raise", "timeout", "crash", "corrupt", "all")
#: profiles targeting the campaign service tier
_SERVICE_PROFILES = ("kill-worker", "corrupt-store", "torn-fifo", "busy-storm")
CHAOS_PROFILES = _REP_PROFILES + _SERVICE_PROFILES

#: exit code of chaos-crashed workers (recognisable in pool post-mortems)
CRASH_EXIT_CODE = 87

#: default per-rep / per-write fault probability
_DEFAULT_RATE = 0.25

#: set by the pool-worker chunk entry point: ``crash`` may only
#: ``os._exit`` a process whose death the parent can recover from
_IN_WORKER = False

#: set by the *service* worker entry point (``repro-noise service
#: start`` / supervisor children): ``kill-worker`` may only take down a
#: process whose lease the queue can recover — never a test runner or
#: an in-process client that merely opened a JobQueue
_IN_SERVICE_WORKER = False


class ChaosError(RuntimeError):
    """The fault injected by the ``raise`` profile."""


def mark_worker(active: bool = True) -> None:
    """Declare this process a pool worker (crash faults become real)."""
    global _IN_WORKER
    _IN_WORKER = active


def in_worker() -> bool:
    """Whether this process may be killed by the ``crash`` profile."""
    return _IN_WORKER


def mark_service_worker(active: bool = True) -> None:
    """Declare this process a service worker (kill-worker faults become
    real).  Distinct from :func:`mark_worker`: a service worker hosts
    its own pool workers, and only the outer process's death exercises
    lease release and supervisor restarts."""
    global _IN_SERVICE_WORKER
    _IN_SERVICE_WORKER = active


def in_service_worker() -> bool:
    """Whether this process may be killed by ``kill-worker``."""
    return _IN_SERVICE_WORKER


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed ``REPRO_CHAOS`` directive."""

    profile: str
    seed: int
    rate: float = _DEFAULT_RATE
    #: fire on every attempt instead of only the first (``profile!``);
    #: used to drive terminal failure paths in tests
    persist: bool = False

    # ------------------------------------------------------------------
    def _draw(self, *key) -> float:
        """Uniform [0, 1) deterministic in (chaos seed, key)."""
        blob = "|".join(str(k) for k in (self.seed, *key)).encode()
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2**64

    def _mode(self, spec_seed: int, index: int) -> Optional[str]:
        """Which fault (if any) fires for this rep, independent of attempt."""
        if self._draw("fire", spec_seed, index) >= self.rate:
            return None
        if self.profile != "all":
            return self.profile
        modes = ("raise", "timeout", "crash")
        return modes[int(self._draw("mode", spec_seed, index) * len(modes))]

    # ------------------------------------------------------------------
    def rep_fault(
        self,
        spec_seed: int,
        index: int,
        attempt: int,
        timeout: Optional[float] = None,
    ) -> None:
        """Maybe inject a fault into rep ``index`` (called pre-simulation).

        Fires before any simulation state or RNG draw exists, so a rep
        that survives (or retries past) an injected fault produces a
        result bit-identical to an undisturbed run.
        """
        if self.profile in _SERVICE_PROFILES:
            return  # service faults never fire inside the rep path
        if attempt > 0 and not self.persist:
            return
        mode = self._mode(spec_seed, index)
        if mode is None or mode == "corrupt":
            return
        # Counted before injecting: a crash fault never returns.  Shared
        # group, so worker-side injections flush back with the chunk.
        group = _telemetry.get_group("chaos")
        group.inc("injected_faults")
        group.inc(mode)
        if mode == "crash":
            if in_worker():
                _log.warning("chaos: killing worker %d at rep %d", os.getpid(), index)
                os._exit(CRASH_EXIT_CODE)
            # No pool to break outside a worker: degrade to an exception
            # the retry machinery can contain.
            raise ChaosError(f"chaos: injected crash (serial downgrade) at rep {index}")
        if mode == "timeout":
            # Stall past the policy's budget so SIGALRM enforcement (or
            # the parent's chunk deadline) fires; finite, so unenforced
            # contexts merely run slow and still succeed cleanly.
            time.sleep((timeout if timeout is not None else 0.05) + 0.05)
            return
        raise ChaosError(f"chaos: injected exception at rep {index}")

    # ------------------------------------------------------------------
    def maybe_corrupt_file(self, path: Path) -> bool:
        """Maybe tear a freshly written file (once per path per process).

        Simulates a crash mid-write from a *previous* session: the next
        reader finds a truncated entry and must salvage (evict + re-run).
        Only the first write of a path is eligible, so the re-written
        entry stands and chaos runs converge.

        The ``corrupt-store`` service profile flips one mid-file byte
        instead of truncating — the entry stays parseable JSON-shaped
        noise, so only sha256 verification can catch it.
        """
        if self.profile not in ("corrupt", "all", "corrupt-store"):
            return False
        path = Path(path)
        seen = _corrupted_paths()
        if str(path) in seen:
            return False
        seen.add(str(path))
        if self._draw("corrupt", path.name) >= self.rate:
            return False
        try:
            raw = path.read_bytes()
            if self.profile == "corrupt-store":
                if len(raw) < 4:
                    return False
                mid = len(raw) // 2
                flipped = bytes([raw[mid] ^ 0x20])  # case-flip: stays printable
                path.write_bytes(raw[:mid] + flipped + raw[mid + 1:])
            else:
                path.write_bytes(raw[: max(1, len(raw) // 2)])
        except OSError:
            return False
        group = _telemetry.get_group("chaos")
        group.inc("injected_faults")
        group.inc("corrupt_files")
        _log.warning("chaos: tore freshly written file %s", path)
        return True

    # ------------------------------------------------------------------
    # service-tier faults
    # ------------------------------------------------------------------
    def maybe_kill_worker(self, key: str, attempt: int) -> None:
        """Maybe ``os._exit`` a *service* worker that just leased ``key``.

        Keyed on the job key, so the same cells are poisonous on every
        run; fires only on the job's first lease unless ``!`` persist —
        a persistent ``kill-worker!`` at rate 1.0 is the canonical
        poison job (kills every worker that touches it until the queue
        quarantines it).  No-op outside processes marked via
        :func:`mark_service_worker`.
        """
        if self.profile != "kill-worker" or not in_service_worker():
            return
        if attempt > 1 and not self.persist:
            return
        if self._draw("kill-worker", key) >= self.rate:
            return
        group = _telemetry.get_group("chaos")
        group.inc("injected_faults")
        group.inc("killed_workers")
        _log.warning(
            "chaos: killing service worker %d holding %s", os.getpid(), key
        )
        os._exit(CRASH_EXIT_CODE)

    def torn_fifo_fault(self) -> bool:
        """Whether to drop this notify-fifo wakeup write (torn write).

        Deterministic per process in draw order; a dropped wakeup is
        the worst a real torn fifo write can do (readers drain bytes,
        they never parse them), so correctness is untouched and waiters
        fall back to their poll timeout.
        """
        if self.profile != "torn-fifo":
            return False
        n = _service_draws("fifo")
        if self._draw("torn-fifo", n) >= self.rate:
            return False
        group = _telemetry.get_group("chaos")
        group.inc("injected_faults")
        group.inc("torn_fifo_writes")
        return True

    def busy_storm_fault(self) -> bool:
        """Whether to inject a synthetic SQLITE_BUSY into this queue
        write attempt.  The caller keeps storms inside its bounded
        retry budget, so the worst case is backoff latency."""
        if self.profile != "busy-storm":
            return False
        n = _service_draws("busy")
        if self._draw("busy-storm", n) >= self.rate:
            return False
        group = _telemetry.get_group("chaos")
        group.inc("injected_faults")
        group.inc("busy_storms")
        return True


#: per-process memory of write-eligibility (first write per path)
_CORRUPTED: set = set()


def _corrupted_paths() -> set:
    return _CORRUPTED


#: per-process draw counters for service faults without a natural key
_SERVICE_DRAWS: dict = {}


def _service_draws(kind: str) -> int:
    n = _SERVICE_DRAWS.get(kind, 0)
    _SERVICE_DRAWS[kind] = n + 1
    return n


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_chaos(text: str) -> ChaosSpec:
    """Parse a ``PROFILE[!]:SEED[:RATE]`` directive."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"REPRO_CHAOS must be PROFILE:SEED[:RATE], got {text!r} "
            f"(profiles: {', '.join(CHAOS_PROFILES)})"
        )
    profile = parts[0].strip()
    persist = profile.endswith("!")
    if persist:
        profile = profile[:-1]
    if profile not in CHAOS_PROFILES:
        raise ValueError(
            f"unknown chaos profile {profile!r} (known: {', '.join(CHAOS_PROFILES)})"
        )
    try:
        seed = int(parts[1])
    except ValueError:
        raise ValueError(f"chaos seed must be an integer, got {parts[1]!r}") from None
    rate = _DEFAULT_RATE
    if len(parts) == 3:
        try:
            rate = float(parts[2])
        except ValueError:
            raise ValueError(f"chaos rate must be a float, got {parts[2]!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {rate}")
    return ChaosSpec(profile=profile, seed=seed, rate=rate, persist=persist)


_cached: tuple[Optional[str], Optional[ChaosSpec]] = (None, None)


def get_chaos() -> Optional[ChaosSpec]:
    """The active chaos directive, or ``None`` (re-reads the env).

    The parsed spec is cached per env value, so the common case (no
    chaos) costs one dict lookup per call.
    """
    global _cached
    raw = os.environ.get("REPRO_CHAOS") or None
    if raw == _cached[0]:
        return _cached[1]
    spec = parse_chaos(raw) if raw else None
    _cached = (raw, spec)
    return spec
