"""Adaptive repetition counts driven by bootstrap-CI precision.

The paper's tables report bootstrap-CI summary statistics per cell
(mean execution time with a percentile interval).  For most cells the
interval is tight long before the fixed repetition budget is spent —
low-noise baselines converge in tens of reps while heavy-injection
cells genuinely need hundreds.  An :class:`AdaptivePolicy` makes the
rep loop precision-driven: run repetitions in deterministic batches and
stop as soon as the relative CI half-width of the mean drops below a
target, never exceeding the policy's rep budget (by default the
spec's fixed count).

Determinism contract
--------------------
Adaptive stopping is exactly as reproducible as the fixed-rep path:

* rep ``i`` is still seeded from ``SeedSequence(seed, spawn_key=(i,))``
  — the first ``n`` adaptive reps are bit-identical to the first ``n``
  reps of a fixed-rep run of the same spec;
* batch boundaries are a pure function of the policy
  (``min_reps``, then ``+batch`` up to ``max_reps``), never of timing;
* the bootstrap CI after ``n`` reps draws from a dedicated RNG keyed by
  ``(seed, n)`` (:func:`ci_rng`), so the stop decision is identical at
  any worker count, chunk size, or backend.

Same spec + seed + policy therefore always yields the same rep count
and the same per-rep results.  ``tests/test_adaptive.py`` pins this
against ``tests/fixtures/adaptive_reps.json``.

What changes — and must be cached separately — is the *sample size*:
an adaptively stopped cell carries fewer reps than its fixed-rep twin,
so its summary statistics are estimates of the same quantity at lower
(but bounded, by construction) precision.  The result cache therefore
keys adaptive results under a distinct, versioned key block
(see :mod:`repro.harness.cache`), and the CLI exposes the policy as the
opt-in ``--adaptive-ci`` flag.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

__all__ = ["AdaptivePolicy", "ci_rng", "ADAPTIVE_FIXTURE_VERSION"]

#: version of the adaptive stop rule; bumped when the decision
#: procedure changes (hashed into cache keys and fixture files)
ADAPTIVE_FIXTURE_VERSION = 1

#: spawn-key tag separating the CI-decision RNG stream from per-rep
#: streams (reps use ``spawn_key=(i,)``) and backoff streams
_CI_TAG = 0xADA


def ci_rng(seed: int, n: int) -> np.random.Generator:
    """The bootstrap RNG for the stop decision after ``n`` reps.

    Keyed by ``(n, tag)`` under the experiment seed, so the decision
    is a pure function of the observed sample — independent of worker
    count, chunk size, and wall-clock.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(n, _CI_TAG)))


@dataclass(frozen=True)
class AdaptivePolicy:
    """Opt-in early stopping for experiment repetitions.

    ``target_rel_hw`` is the goal: stop once the bootstrap CI
    half-width of the mean is at most ``target_rel_hw * |mean|``
    (e.g. ``0.02`` = ±2 %).  ``min_reps`` guards against stopping on a
    fluke of the first few reps, ``batch`` sets the increment between
    decisions, and ``max_reps`` caps the budget (``0`` → the spec's
    resolved fixed-rep count, so adaptive mode can only ever run fewer
    reps than fixed mode).
    """

    target_rel_hw: float
    confidence: float = 0.95
    min_reps: int = 8
    max_reps: int = 0
    batch: int = 8
    n_boot: int = 500

    def __post_init__(self) -> None:
        if not self.target_rel_hw > 0.0:
            raise ValueError(f"target_rel_hw must be > 0, got {self.target_rel_hw!r}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence!r}")
        if self.min_reps < 2:
            raise ValueError(f"min_reps must be >= 2 (a CI needs 2 samples), got {self.min_reps}")
        if self.max_reps < 0:
            raise ValueError(f"max_reps must be >= 0 (0 = spec budget), got {self.max_reps}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.n_boot < 50:
            raise ValueError(f"n_boot must be >= 50, got {self.n_boot}")

    def resolve_cap(self, spec_reps: int) -> int:
        """Hard rep budget for a spec whose fixed count is ``spec_reps``.

        An explicit ``max_reps`` wins (it may exceed the spec's fixed
        count when extra precision is worth it); ``0`` adopts the
        spec's budget, making adaptive mode a strict subset of fixed.
        """
        return self.max_reps if self.max_reps > 0 else spec_reps

    def batch_edges(self, cap: int) -> list[int]:
        """Cumulative rep counts at which the stop rule is evaluated.

        A pure function of the policy and the cap — the schedule the
        determinism contract hangs on.
        """
        if cap <= 0:
            return []
        edges = [min(self.min_reps, cap)]
        while edges[-1] < cap:
            edges.append(min(edges[-1] + self.batch, cap))
        return edges

    def should_stop(self, ok_times: np.ndarray, seed: int, n: int) -> tuple[bool, float]:
        """Evaluate the stop rule after ``n`` dispatched reps.

        Returns ``(stop, rel_halfwidth)``; ``rel_halfwidth`` is NaN
        when fewer than two reps completed (a skip policy may have
        failed some).
        """
        from repro.harness.bootstrap import mean_ci

        if len(ok_times) < 2:
            return False, float("nan")
        ci = mean_ci(
            ok_times,
            confidence=self.confidence,
            n_boot=self.n_boot,
            rng=ci_rng(seed, n),
        )
        if ci.estimate == 0.0:
            return False, float("inf")
        rel_hw = (ci.high - ci.low) / 2.0 / abs(ci.estimate)
        return rel_hw <= self.target_rel_hw, rel_hw

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "AdaptivePolicy":
        return AdaptivePolicy(**data)

    @staticmethod
    def coerce(value) -> Optional["AdaptivePolicy"]:
        """Accept ``None``, a policy, or its dict serialization."""
        if value is None or isinstance(value, AdaptivePolicy):
            return value
        if isinstance(value, dict):
            return AdaptivePolicy.from_dict(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to AdaptivePolicy")
