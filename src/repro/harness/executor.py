"""Pluggable execution backends for experiment repetitions.

Every repetition of an experiment is an independent deterministic
function of ``(spec, noise, rep_index)``: the per-rep RNG is
derived from the spec's seed via a ``SeedSequence`` spawn key equal to
the rep index, and results are written back *by index*.  That makes the
rep loop embarrassingly parallel — the paper's protocol needs ~1000
baseline and 200 injected runs per table cell, and nothing couples one
rep to another.

Two backends implement the same iterator contract:

* :class:`SerialExecutor` — the classic in-process loop (default);
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` dispatching *chunks of rep indices*.  Workers
  receive only picklable inputs (``spec``, the ``NoiseStack``, the
  index chunk) and rebuild platform / workload / placement locally, so
  no simulator state crosses the process boundary.  Noise stacks ride
  along as pure data; each member source spawns its own child RNG from
  the rep's ``SeedSequence``, so composite noise stays bit-identical
  at any worker count.

Worker-invariant determinism contract
-------------------------------------
``times[i]`` and ``anomalies[i]`` are bit-identical for ``jobs=1``,
``jobs=4``, and any chunk size.  This holds by construction: rep ``i``
always draws from ``SeedSequence(spec.seed, spawn_key=(i,))`` — exactly
the ``i``-th child of ``SeedSequence(spec.seed).spawn(reps)`` — and the
chunk map preserves index order.  ``tests/test_executor.py`` enforces
the guarantee bitwise.

Backend selection is spec-independent: ``--jobs N`` on the CLI or the
``REPRO_JOBS`` environment variable (default ``1``; ``0`` means one
worker per CPU).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.experiment import ExperimentSpec
    from repro.noise.base import NoiseStack
    from repro.sim.machine import RunResult

__all__ = [
    "RepResult",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "resolve_jobs",
    "get_executor",
    "rep_seed",
    "chunk_indices",
]


# ----------------------------------------------------------------------
# seeding and chunking primitives
# ----------------------------------------------------------------------
def rep_seed(seed: int, index: int) -> np.random.SeedSequence:
    """Seed stream of repetition ``index`` of an experiment.

    Equal to ``SeedSequence(seed).spawn(reps)[index]`` for any
    ``reps > index`` (children are keyed by spawn position only), so
    workers can reseed any rep without materialising the full spawn.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def chunk_indices(reps: int, jobs: int, chunk_size: Optional[int] = None) -> list[range]:
    """Partition ``range(reps)`` into contiguous dispatch chunks.

    The default size targets ~4 chunks per worker so a slow chunk does
    not straggle the whole experiment; any size yields identical
    results (determinism is per-rep, not per-chunk).
    """
    if reps <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-reps // (jobs * 4)))
    chunk_size = max(1, int(chunk_size))
    return [range(lo, min(lo + chunk_size, reps)) for lo in range(0, reps, chunk_size)]


# ----------------------------------------------------------------------
# per-rep outcome
# ----------------------------------------------------------------------
@dataclass
class RepResult:
    """Outcome of one repetition, tagged with its index."""

    index: int
    exec_time: float
    anomaly: Optional[str]
    #: full :class:`~repro.sim.machine.RunResult` (trace included) when
    #: the caller asked for it; ``None`` otherwise to keep worker
    #: payloads small
    run: Optional["RunResult"] = None


def _execute_rep(
    context: tuple,
    spec: "ExperimentSpec",
    noise: Optional["NoiseStack"],
    index: int,
) -> "RunResult":
    """Run repetition ``index`` on a prebuilt (platform, workload, placement)."""
    from repro.harness.experiment import run_once

    platform, workload, placement = context
    throttle_off = noise is not None and noise.disables_rt_throttle
    rng = np.random.default_rng(rep_seed(spec.seed, index))
    return run_once(
        platform,
        workload,
        placement,
        spec.model,
        rng,
        tracing=spec.tracing,
        rt_throttle=spec.rt_throttle and not throttle_off,
        noise=noise,
        meta={"run": index, "spec": spec.label()},
    )


def _run_rep_chunk(payload: tuple) -> list[RepResult]:
    """Worker entry point: simulate one chunk of rep indices.

    Receives only picklable data and rebuilds the simulation context
    locally — platform presets, workloads and placements are pure
    functions of the spec, so workers reconstruct the exact objects the
    parent would have used.
    """
    from repro.harness.experiment import _build_context

    spec, noise, indices, need_runs = payload
    context = _build_context(spec)
    out = []
    for i in indices:
        result = _execute_rep(context, spec, noise, i)
        out.append(
            RepResult(
                index=i,
                exec_time=result.exec_time,
                anomaly=result.anomaly,
                run=result if need_runs else None,
            )
        )
    return out


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class Executor(ABC):
    """Strategy interface: iterate rep outcomes in index order."""

    #: worker count (1 for the serial backend)
    jobs: int = 1

    @abstractmethod
    def run_reps(
        self,
        spec: "ExperimentSpec",
        noise: Optional["NoiseStack"],
        reps: int,
        need_runs: bool = False,
    ) -> Iterator[RepResult]:
        """Yield one :class:`RepResult` per rep, in ascending index order.

        ``need_runs`` asks for the full :class:`RunResult` payload
        (traces included) on every item — required by ``on_run``
        consumers such as trace collection.
        """

    def close(self) -> None:
        """Release backend resources (no-op for the serial backend)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process rep loop; ``on_run`` consumers observe runs live."""

    jobs = 1

    def run_reps(self, spec, noise, reps, need_runs=False):
        from repro.harness.experiment import _build_context

        context = _build_context(spec)
        for i in range(reps):
            result = _execute_rep(context, spec, noise, i)
            # The serial backend always has the full result in hand;
            # passing it through costs nothing regardless of need_runs.
            yield RepResult(
                index=i, exec_time=result.exec_time, anomaly=result.anomaly, run=result
            )

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool backend dispatching chunked rep indices.

    The pool is created lazily and kept alive across experiments (a
    campaign issues thousands of ``run_reps`` calls), and is safe to
    share between threads — the campaign runners fan independent table
    cells through it concurrently.  Results are yielded in rep order,
    so ``on_run`` consumers degrade to *ordered post-hoc delivery*
    rather than live streaming.
    """

    def __init__(self, jobs: int, chunk_size: Optional[int] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            # fork keeps worker start-up at milliseconds; fall back to
            # spawn where fork is unavailable (results are identical —
            # workers receive all state explicitly).
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)
        return self._pool

    def run_reps(self, spec, noise, reps, need_runs=False):
        if reps <= 1 or self.jobs <= 1:
            # Not worth a pool round-trip; the serial path is bit-identical.
            yield from SerialExecutor().run_reps(spec, noise, reps, need_runs)
            return
        payloads = [
            (spec, noise, chunk, need_runs)
            for chunk in chunk_indices(reps, self.jobs, self.chunk_size)
        ]
        pool = self._ensure_pool()
        # Executor.map preserves submission order, which is rep order.
        for chunk_result in pool.map(_run_rep_chunk, payloads):
            yield from chunk_result

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value or ``REPRO_JOBS``.

    ``None`` reads the environment (default 1); ``0`` means one worker
    per CPU; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer (0 = one worker per CPU), got {raw!r}"
            ) from None
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


#: shared parallel backends keyed by worker count — campaigns issuing
#: thousands of experiments reuse one warm pool instead of respawning
_shared: dict[int, ParallelExecutor] = {}


@atexit.register
def _close_shared() -> None:
    # Shut pools down before interpreter teardown dismantles the
    # modules their weakref callbacks rely on.
    for ex in _shared.values():
        ex.close()
    _shared.clear()


def get_executor(jobs: Optional[int] = None) -> Executor:
    """Backend for ``jobs`` workers (``None`` → ``REPRO_JOBS``)."""
    n = resolve_jobs(jobs)
    if n <= 1:
        return SerialExecutor()
    ex = _shared.get(n)
    if ex is None:
        ex = _shared[n] = ParallelExecutor(n)
    return ex
