"""Pluggable execution backends for experiment repetitions.

Every repetition of an experiment is an independent deterministic
function of ``(spec, noise, rep_index)``: the per-rep RNG is
derived from the spec's seed via a ``SeedSequence`` spawn key equal to
the rep index, and results are written back *by index*.  That makes the
rep loop embarrassingly parallel — the paper's protocol needs ~1000
baseline and 200 injected runs per table cell, and nothing couples one
rep to another.

Two backends implement the same iterator contract:

* :class:`SerialExecutor` — the classic in-process loop (default);
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` dispatching *chunks of rep indices*.  Workers
  receive only picklable inputs (``spec``, the ``NoiseStack``, the
  index chunk) and resolve platform / workload / placement locally, so
  no simulator state crosses the process boundary.  Noise stacks ride
  along as pure data; each member source spawns its own child RNG from
  the rep's ``SeedSequence``, so composite noise stays bit-identical
  at any worker count.

Batched execution
-----------------
Resolving a spec (platform preset, workload, placement, expected
duration) is pure, so both backends run reps against a
:class:`~repro.harness.experiment.ResolvedContext` held in a small
per-process cache keyed by
:func:`~repro.harness.experiment.context_key` — a worker that receives
chunk after chunk of the same configuration (or of the same sweep cell
at different seeds) resolves the world once instead of once per chunk.
Cache activity is counted in the shared ``context`` telemetry group
(``builds`` / ``hits``).

Result transport
----------------
The parallel backend has two ways to get bulk per-rep outputs home:

* **pickle** — workers return ``RepResult`` lists through the pool's
  result queue (the serial/fallback path);
* **shm** — the parent allocates one ``multiprocessing.shared_memory``
  block per dispatch (float64 exec times, int16 attempt counts, int16
  anomaly codes) and workers write their chunk's slice in place;
  only a tiny marker (plus rare out-of-table anomaly names and
  failure records) is pickled back.  Exec times cross as raw 64-bit
  floats, so bit-identity is preserved exactly.

When full ``RunResult`` payloads are requested (``need_runs``, the
``on_run``/trace-collection path), the bulk *trace columns* also ride
shared memory: each chunk's worker concatenates its traces' arrays
(starts/durations float64, cpus/source_ids int32, etypes int8) into a
per-chunk segment whose name the **parent** chose and registered up
front, so the parent can unlink it on every exit path even if the
worker died mid-write.  Small per-rep remainders (source name tables,
metadata, migration counts) ride the pickled marker.  Rebuilt traces
are bit-identical: the columns cross as raw dtypes and the stable
``(start, cpu)`` re-sort in ``Trace.__init__`` is order-preserving on
already-sorted input.

``REPRO_SHM=0`` (or ``transport="pickle"``) forces the pickle path;
the default ``auto`` uses shared memory whenever it is available.  The
parent owns every segment — the scalar block it created and the trace
segments it named — and unlinks them in a ``finally`` that covers
chunk failure, pool rebuild, hung-chunk kills, and abandoned iterators
— workers only ever attach/create-by-given-name and close.
``stats()`` counts ``shm_chunks`` / ``pickle_chunks`` /
``shm_trace_chunks``.

Worker-invariant determinism contract
-------------------------------------
``times[i]`` and ``anomalies[i]`` are bit-identical for ``jobs=1``,
``jobs=4``, and any chunk size.  This holds by construction: rep ``i``
always draws from ``SeedSequence(spec.seed, spawn_key=(i,))`` — exactly
the ``i``-th child of ``SeedSequence(spec.seed).spawn(reps)`` — and the
chunk map preserves index order.  ``tests/test_executor.py`` enforces
the guarantee bitwise.

Fault tolerance
---------------
Both backends accept a :class:`~repro.harness.faults.FaultPolicy` and
run every repetition through the same contained attempt loop: per-rep
``SIGALRM`` timeouts, bounded retries with deterministic backoff, and
``skip`` semantics that convert a terminally failing rep into a
NaN-timed :class:`RepResult` carrying a structured
:class:`~repro.harness.faults.FailureRecord`.  A retried rep rebuilds
its RNG from the *original* per-rep spawn key, so a rep that succeeds
on attempt *k* is bit-identical to one that succeeded immediately — the
golden-equivalence suite proves it under injected chaos.

The parallel backend additionally survives infrastructure failure:
chunks are dispatched as individual futures with deadlines, a
``BrokenProcessPool`` (e.g. a worker killed by the OOM killer — or by
the :mod:`~repro.harness.chaos` harness) causes the pool to be rebuilt
and only the unfinished chunks re-dispatched, and after
``max_pool_breaks`` consecutive breakages the executor degrades to
in-process serial execution for the remainder (logged, visible in
:meth:`Executor.stats`).

Backend selection is spec-independent: ``--jobs N`` on the CLI or the
``REPRO_JOBS`` environment variable (default ``1``; ``0`` means one
worker per CPU).  Chunk sizing follows ``--chunk-size`` /
``REPRO_CHUNK_SIZE`` (default: automatic, ~4 chunks per worker).
"""

from __future__ import annotations

import atexit
import itertools
import logging
import multiprocessing
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.harness.chaos import mark_worker

# The per-rep/per-chunk execution core lives in chunkrunner (shared
# with the campaign service's remote workers); this module keeps its
# historical names re-exported so existing imports stay valid.
from repro.harness.chunkrunner import (  # noqa: F401 - re-exports
    DEFAULT_RUNNER,
    ChunkRunner,
    RepResult,
    rep_seed,
)
from repro.harness.chunkrunner import _execute_rep  # noqa: F401 - re-export
from repro.harness.chunkrunner import resolved_context as _resolved_context
from repro.harness.chunkrunner import run_one_rep as _run_one_rep
from repro.harness.faults import (
    DEFAULT_POLICY,
    FailureRecord,
    FaultPolicy,
    RepExecutionError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.experiment import ExperimentSpec, ResolvedContext
    from repro.noise.base import NoiseStack

__all__ = [
    "RepResult",
    "ChunkRunner",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "resolve_jobs",
    "resolve_chunk_size",
    "resolve_transport",
    "get_executor",
    "rep_seed",
    "chunk_indices",
    "chunk_range",
]

_log = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# chunking primitives
# ----------------------------------------------------------------------
def resolve_chunk_size(chunk_size: Optional[int] = None) -> Optional[int]:
    """Chunk size from an explicit value or ``REPRO_CHUNK_SIZE``.

    ``None`` reads the environment; unset or ``0`` selects the
    automatic ~4-chunks-per-worker default (returned as ``None``).
    Anything else — argument or environment — must be ``>= 1``; the
    environment error names the variable (via ``env_int``).
    """
    if chunk_size is None:
        from repro.harness.experiment import env_int

        value = env_int("REPRO_CHUNK_SIZE", 0)
        if value == 0:
            return None
        if value < 0:
            raise ValueError(
                f"REPRO_CHUNK_SIZE must be >= 1 (or 0 for automatic sizing), got {value}"
            )
        return value
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    return chunk_size


def chunk_range(
    indices: range, jobs: int, chunk_size: Optional[int] = None
) -> list[range]:
    """Partition a contiguous index range into dispatch chunks.

    The default size targets ~4 chunks per worker so a slow chunk does
    not straggle the whole experiment; any size yields identical
    results (determinism is per-rep, not per-chunk).  Degenerate
    inputs fail loudly: ``jobs <= 0`` and ``chunk_size < 1`` raise,
    an empty range yields no chunks, and ``chunk_size > len(indices)``
    simply produces a single chunk.
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if indices.step != 1:
        raise ValueError(f"rep indices must be a step-1 range, got step {indices.step}")
    n = len(indices)
    if n == 0:
        return []
    chunk_size = resolve_chunk_size(chunk_size)
    if chunk_size is None:
        chunk_size = max(1, -(-n // (jobs * 4)))
    return [indices[lo : lo + chunk_size] for lo in range(0, n, chunk_size)]


def chunk_indices(reps: int, jobs: int, chunk_size: Optional[int] = None) -> list[range]:
    """Partition ``range(reps)`` into contiguous dispatch chunks.

    Thin wrapper over :func:`chunk_range`; ``reps == 0`` yields no
    chunks, negative ``reps`` raises.
    """
    if reps < 0:
        raise ValueError(f"reps must be >= 0, got {reps}")
    return chunk_range(range(reps), jobs, chunk_size)


# ----------------------------------------------------------------------
# shared-memory result transport
# ----------------------------------------------------------------------
_shm_seq = itertools.count()


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except Exception:  # pragma: no cover - platform without posix shm
        return False
    return True


def resolve_transport(transport: Optional[str] = None) -> str:
    """Transport mode from an explicit value or ``REPRO_SHM``.

    ``auto`` (default) writes bulk outputs through shared memory when
    available and falls back to pickling; ``pickle`` (or
    ``REPRO_SHM=0``) forces the classic path; ``shm`` behaves like
    ``auto`` but documents intent.
    """
    if transport is None:
        raw = os.environ.get("REPRO_SHM", "").strip().lower()
        if raw in ("0", "off", "pickle"):
            return "pickle"
        if raw in ("", "1", "on", "auto", "shm"):
            return "auto"
        raise ValueError(
            f"REPRO_SHM must be one of 0/1/on/off/auto/shm/pickle, got {raw!r}"
        )
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(f"transport must be auto, shm, or pickle, got {transport!r}")
    return transport


def _anomaly_code_table(context: "ResolvedContext") -> tuple:
    """Stable small-int coding of the platform's anomaly names.

    Code ``k > 0`` in a shm block means ``table[k - 1]``; names outside
    the table (custom noise models) travel in the chunk's pickled
    extras under code ``-1``.
    """
    try:
        candidates = context.platform.noise.anomalies.candidates
    except AttributeError:  # pragma: no cover - exotic platform stub
        return ()
    return tuple(dict.fromkeys(c.name for c in candidates))


class _ShmResultBlock:
    """Parent-owned shared-memory arrays for one dispatch's bulk outputs.

    Layout for ``n`` reps (one block spans the whole dispatched index
    range; chunks write disjoint slices):

    ========  =======  ==========================================
    offset    dtype    content
    ========  =======  ==========================================
    ``0``     f8[n]    exec times (NaN until written / on failure)
    ``8n``    i2[n]    attempts consumed
    ``10n``   i2[n]    anomaly codes (0 none, k>0 table, -1 extras)
    ========  =======  ==========================================

    The parent creates, names, and **unlinks** the segment; workers
    attach by name and close.  ``close()`` is idempotent and reached
    from ``run_rep_range``'s ``finally`` on every exit path — normal
    completion, chunk failure, pool rebuild, hung-chunk kill, or an
    abandoned result iterator — so no segment can outlive its dispatch.
    """

    __slots__ = ("base", "n", "codes", "name", "_seg", "_times", "_attempts", "_codes")

    def __init__(self, indices: range, codes: tuple):
        from multiprocessing import shared_memory

        n = len(indices)
        self.base = indices.start
        self.n = n
        self.codes = tuple(codes)
        self.name = f"repro_shm_{os.getpid()}_{next(_shm_seq)}"
        self._seg = shared_memory.SharedMemory(
            name=self.name, create=True, size=max(1, n * 12)
        )
        self._times = np.ndarray(n, dtype=np.float64, buffer=self._seg.buf, offset=0)
        self._attempts = np.ndarray(n, dtype=np.int16, buffer=self._seg.buf, offset=8 * n)
        self._codes = np.ndarray(n, dtype=np.int16, buffer=self._seg.buf, offset=10 * n)
        self._times.fill(float("nan"))
        self._attempts.fill(0)
        self._codes.fill(0)

    def descriptor(self) -> dict:
        """The picklable attachment recipe shipped in chunk payloads."""
        return {"name": self.name, "n": self.n, "base": self.base, "codes": self.codes}

    def extract(self, chunk: range, marker: dict) -> list[RepResult]:
        """Rebuild a chunk's :class:`RepResult` list from the arrays."""
        failures = marker.get("failures") or {}
        anomalies = marker.get("anomalies") or {}
        out = []
        for i in chunk:
            off = i - self.base
            code = int(self._codes[off])
            if code > 0:
                anomaly = self.codes[code - 1]
            elif code < 0:
                anomaly = anomalies.get(i)
            else:
                anomaly = None
            out.append(
                RepResult(
                    index=i,
                    exec_time=float(self._times[off]),
                    anomaly=anomaly,
                    error=failures.get(i),
                    attempts=int(self._attempts[off]) or 1,
                )
            )
        return out

    def close(self) -> None:
        """Release the views, close, and unlink (idempotent, no-raise)."""
        seg, self._seg = self._seg, None
        if seg is None:
            return
        # numpy views must drop their buffer exports before close()
        self._times = self._attempts = self._codes = None
        try:
            seg.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _write_chunk_to_shm(desc: dict, reps: list[RepResult]) -> dict:
    """Worker side: write a chunk's results into the parent's block.

    Returns the marker dict that rides back through the pool (pickled):
    shm flag, terminal failure records, and anomaly names missing from
    the code table.  The worker only attaches and closes — the parent
    owns the segment's lifetime.
    """
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=desc["name"], create=False)
    try:
        n = desc["n"]
        base = desc["base"]
        times = np.ndarray(n, dtype=np.float64, buffer=seg.buf, offset=0)
        attempts = np.ndarray(n, dtype=np.int16, buffer=seg.buf, offset=8 * n)
        codes = np.ndarray(n, dtype=np.int16, buffer=seg.buf, offset=10 * n)
        code_of = {name: k + 1 for k, name in enumerate(desc["codes"])}
        failures: dict[int, FailureRecord] = {}
        anomalies: dict[int, str] = {}
        try:
            for rep in reps:
                off = rep.index - base
                times[off] = rep.exec_time
                attempts[off] = min(rep.attempts, 32767)
                if rep.error is not None:
                    failures[rep.index] = rep.error
                if rep.anomaly is None:
                    codes[off] = 0
                else:
                    code = code_of.get(rep.anomaly, -1)
                    codes[off] = code
                    if code < 0:
                        anomalies[rep.index] = rep.anomaly
        finally:
            del times, attempts, codes
        return {"shm": True, "failures": failures, "anomalies": anomalies}
    finally:
        seg.close()


# Trace-segment layout for E concatenated events: starts f8[E] at 0,
# durations f8[E] at 8E, cpus i32[E] at 16E, source_ids i32[E] at 20E,
# etypes i8[E] at 24E — 25 bytes/event total.
def _trace_views(buf, total: int) -> tuple:
    starts = np.ndarray(total, dtype=np.float64, buffer=buf, offset=0)
    durations = np.ndarray(total, dtype=np.float64, buffer=buf, offset=8 * total)
    cpus = np.ndarray(total, dtype=np.int32, buffer=buf, offset=16 * total)
    source_ids = np.ndarray(total, dtype=np.int32, buffer=buf, offset=20 * total)
    etypes = np.ndarray(total, dtype=np.int8, buffer=buf, offset=24 * total)
    return starts, durations, cpus, source_ids, etypes


def _write_runs_to_shm(name: str, reps: list[RepResult]) -> dict:
    """Worker side: ship a chunk's ``RunResult`` payloads via shm.

    The bulk trace columns of every rep are concatenated into one
    segment created under the parent-chosen ``name`` (the parent
    registered it before dispatch, so it can unlink the segment even if
    this worker dies mid-write).  Everything small — source name
    tables, metadata, migration/preemption counts — rides the returned
    marker entry, pickled.  Failed reps (no run) contribute a ``None``
    entry and zero events.
    """
    from multiprocessing import shared_memory

    entries: list = []
    traces = []
    total = 0
    for rep in reps:
        run = rep.run
        if run is None:
            entries.append(None)
            continue
        entry = {
            "index": rep.index,
            "migrations": run.migrations,
            "preemptions": run.preemptions,
            "meta": run.meta,
            "trace": None,
        }
        trace = run.trace
        if trace is not None:
            entry["trace"] = {
                "sources": trace.sources,
                "exec_time": trace.exec_time,
                "meta": trace.meta,
                "events": trace.n_events,
            }
            traces.append(trace)
            total += trace.n_events
        entries.append(entry)
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, 25 * total))
    try:
        starts, durations, cpus, source_ids, etypes = _trace_views(seg.buf, total)
        try:
            lo = 0
            for trace in traces:
                hi = lo + trace.n_events
                starts[lo:hi] = trace.starts
                durations[lo:hi] = trace.durations
                cpus[lo:hi] = trace.cpus
                source_ids[lo:hi] = trace.source_ids
                etypes[lo:hi] = trace.etypes
                lo = hi
        finally:
            del starts, durations, cpus, source_ids, etypes
    finally:
        seg.close()
    return {"name": name, "events": total, "entries": entries}


def _attach_runs_from_shm(runs: dict, reps: list[RepResult]) -> None:
    """Parent side: rebuild each rep's ``RunResult`` from a trace segment.

    Mutates the scalar-extracted ``reps`` in place.  Exec times and
    anomalies come from the scalar block (already exact); the trace
    columns are sliced out of the segment per rep — ``Trace.__init__``
    re-materialises them (stable re-sort of already-sorted input), so
    nothing keeps a reference into the segment after it is closed.
    """
    from multiprocessing import shared_memory

    from repro.core.trace import Trace
    from repro.sim.machine import RunResult

    seg = shared_memory.SharedMemory(name=runs["name"], create=False)
    try:
        starts, durations, cpus, source_ids, etypes = _trace_views(seg.buf, runs["events"])
        try:
            lo = 0
            for rep, entry in zip(reps, runs["entries"]):
                if entry is None:
                    continue
                trace = None
                tinfo = entry["trace"]
                if tinfo is not None:
                    hi = lo + tinfo["events"]
                    trace = Trace(
                        cpus[lo:hi],
                        etypes[lo:hi],
                        source_ids[lo:hi],
                        starts[lo:hi],
                        durations[lo:hi],
                        tinfo["sources"],
                        tinfo["exec_time"],
                        tinfo["meta"],
                    )
                    lo = hi
                rep.run = RunResult(
                    exec_time=rep.exec_time,
                    trace=trace,
                    anomaly=rep.anomaly,
                    migrations=entry["migrations"],
                    preemptions=entry["preemptions"],
                    meta=entry["meta"],
                )
        finally:
            del starts, durations, cpus, source_ids, etypes
    finally:
        seg.close()


def _unlink_shm(name: str) -> None:
    """Best-effort owner-side unlink of a named segment (idempotent)."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return
    except Exception:  # pragma: no cover - best-effort teardown
        return
    try:
        seg.close()
    except Exception:  # pragma: no cover - best-effort teardown
        pass
    try:
        seg.unlink()
    except Exception:  # pragma: no cover - best-effort teardown
        pass


def _run_rep_chunk(payload: tuple):
    """Worker entry point: simulate one chunk of rep indices.

    Receives only picklable data and resolves the simulation context
    locally (through the per-process context cache) — platform presets,
    workloads and placements are pure functions of the spec, so workers
    reconstruct the exact objects the parent would have used.  Any
    escaping exception is wrapped in a :class:`RepExecutionError`
    naming the spec, the chunk's rep indices, and the worker pid, so
    pool failures are attributable.

    The optional 7th payload element is the telemetry context
    ``{"parent": span_id}``: when present, the worker buffers its spans
    and counter deltas during the chunk and flushes them back through
    the return channel as ``(results, blob)`` instead of a bare result
    list (pre-telemetry 6-tuples still work — tests build them).  The
    optional 8th element is a shm block descriptor: bulk outputs are
    then written in place and only a small marker dict is returned.
    The optional 9th element is a parent-chosen trace-segment name:
    full ``RunResult`` payloads (``need_runs``) then ride shared
    memory too, as ``runs`` in the marker.
    """
    spec, noise, indices, need_runs, policy, base_attempt = payload[:6]
    telem = payload[6] if len(payload) > 6 else None
    shm_desc = payload[7] if len(payload) > 7 else None
    trace_name = payload[8] if len(payload) > 8 else None
    mark_worker(True)
    token = None
    if telem is not None:
        if not _telemetry.enabled():
            # Spawn-start workers re-read REPRO_TELEMETRY on import; a
            # programmatic parent-side enable arrives via the payload.
            _telemetry.configure(enabled=True)
        token = _telemetry.worker_capture_begin(telem.get("parent"))
    try:
        with _telemetry.span(
            "chunk",
            spec=spec.label(),
            reps=len(indices),
            transport="shm" if shm_desc is not None else "pickle",
        ) if (token is not None) else _nullcontext():
            results = DEFAULT_RUNNER.run(
                spec, noise, indices, need_runs, policy, base_attempt
            )
        if shm_desc is not None and (trace_name is not None or not need_runs):
            out = _write_chunk_to_shm(shm_desc, results)
            if trace_name is not None and need_runs:
                out["runs"] = _write_runs_to_shm(trace_name, results)
        else:
            out = results
        if token is not None:
            blob = _telemetry.worker_capture_end(token)
            token = None
            return out, blob
        return out
    except RepExecutionError as exc:
        raise RepExecutionError(
            f"{exc.args[0]} (chunk reps {list(indices)})", exc.record
        ) from exc
    except Exception as exc:
        record = FailureRecord.from_exception(
            indices[0] if len(indices) else -1, "chunk", exc, base_attempt + 1, 0.0
        )
        raise RepExecutionError(
            f"chunk reps {list(indices)} of {spec.label()} failed in worker pid "
            f"{os.getpid()}: {type(exc).__name__}: {exc}",
            record,
        ) from exc
    finally:
        if token is not None:
            # Failed chunk: the exception is the only thing that can
            # cross back, so discard the partial capture (and restore
            # the worker's base parent for the next chunk).
            _telemetry.worker_capture_end(token)


class _nullcontext:
    """Minimal inline ``contextlib.nullcontext`` (kwarg-free, reusable)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _split_chunk_result(chunk_result) -> tuple:
    """Normalize a worker return: ``(results_or_marker, blob_or_None)``.

    The first element is a ``RepResult`` list (pickle transport) or a
    shm marker dict (``{"shm": True, ...}``) whose bulk data lives in
    the dispatch's shared-memory block.
    """
    if (
        isinstance(chunk_result, tuple)
        and len(chunk_result) == 2
        and isinstance(chunk_result[0], (list, dict))
        and isinstance(chunk_result[1], dict)
    ):
        return chunk_result
    return chunk_result, None


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class Executor(ABC):
    """Strategy interface: iterate rep outcomes in index order."""

    #: worker count (1 for the serial backend)
    jobs: int = 1

    def run_reps(
        self,
        spec: "ExperimentSpec",
        noise: Optional["NoiseStack"],
        reps: int,
        need_runs: bool = False,
        policy: Optional[FaultPolicy] = None,
    ) -> Iterator[RepResult]:
        """Yield one :class:`RepResult` per rep, in ascending index order.

        ``need_runs`` asks for the full :class:`RunResult` payload
        (traces included) on every item — required by ``on_run``
        consumers such as trace collection.  ``policy`` governs
        containment of failing reps (default: fail fast).  Equivalent
        to ``run_rep_range(spec, noise, range(reps), ...)``.
        """
        return self.run_rep_range(spec, noise, range(reps), need_runs=need_runs, policy=policy)

    @abstractmethod
    def run_rep_range(
        self,
        spec: "ExperimentSpec",
        noise: Optional["NoiseStack"],
        indices: range,
        need_runs: bool = False,
        policy: Optional[FaultPolicy] = None,
    ) -> Iterator[RepResult]:
        """Yield :class:`RepResult` for each rep index in ``indices``.

        ``indices`` must be a step-1 range; results arrive in index
        order and are bit-identical at any backend/worker count.  The
        adaptive-rep loop uses this to dispatch incremental batches
        (``range(n, n+batch)``) without re-running earlier reps.
        """

    def stats(self) -> dict:
        """Fault/recovery counters (empty for backends without any)."""
        return {}

    def close(self, force: bool = False) -> None:
        """Release backend resources (no-op for the serial backend)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process rep loop; ``on_run`` consumers observe runs live."""

    jobs = 1

    # class-level default so lightweight subclasses that skip __init__
    # (test doubles) still account correctly — the counter group is
    # created lazily on first use in that case
    _counters = None

    def __init__(self) -> None:
        self._counters = _telemetry.new_group("executor")

    def _group(self) -> "_telemetry.CounterGroup":
        group = self._counters
        if group is None:
            group = self._counters = _telemetry.new_group("executor")
        return group

    def stats(self) -> dict:
        """``rep_retries`` / ``rep_failures`` observed by this instance.

        A thin view over the telemetry counter registry — the shape is
        unchanged from the pre-telemetry ad-hoc dict.
        """
        group = self._counters
        if group is None:
            return {"rep_retries": 0, "rep_failures": 0}
        return {
            "rep_retries": int(group.get("rep_retries")),
            "rep_failures": int(group.get("rep_failures")),
        }

    def run_rep_range(self, spec, noise, indices, need_runs=False, policy=None):
        policy = policy if policy is not None else DEFAULT_POLICY
        group = self._group()
        context = _resolved_context(spec)
        for i in indices:
            # The serial backend always has the full result in hand;
            # passing it through costs nothing regardless of need_runs.
            rep = _run_one_rep(context, spec, noise, i, True, policy)
            if rep.attempts > 1:
                group.inc("rep_retries", rep.attempts - 1)
            if rep.error is not None:
                group.inc("rep_failures")
            yield rep

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool backend dispatching chunked rep indices.

    The pool is created lazily and kept alive across experiments (a
    campaign issues thousands of ``run_reps`` calls), and is safe to
    share between threads — the campaign runners fan independent table
    cells through it concurrently.  Results are yielded in rep order,
    so ``on_run`` consumers degrade to *ordered post-hoc delivery*
    rather than live streaming.

    Bulk results travel over shared memory by default (see the module
    docstring); ``transport="pickle"`` or ``REPRO_SHM=0`` restores the
    classic pickled lists.

    Failure containment: chunks are dispatched as individual futures.
    A broken pool (worker death) is rebuilt and only unfinished chunks
    are re-dispatched; a chunk that exceeds its policy deadline has its
    workers killed and is re-dispatched likewise.  After
    ``max_pool_breaks`` *consecutive* breakages the executor degrades
    to in-process serial execution (the pool infrastructure itself is
    deemed unhealthy).  All of it is counted in :meth:`stats`.
    """

    #: consecutive pool breakages tolerated before degrading to serial
    max_pool_breaks: int = 3

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        transport: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.chunk_size = resolve_chunk_size(chunk_size)
        self.transport = resolve_transport(transport)
        self._pool = None
        self._lock = threading.Lock()
        self._shared = False
        self._degraded = False
        self._consecutive_breaks = 0
        #: recovery counters, kept in the telemetry registry (this is
        #: the registry entry ``stats()`` is a thin view over)
        self._counters = _telemetry.new_group("executor")

    #: the keys stats() has always exposed, in their historical order,
    #: plus the transport counters added with the shm path
    _STAT_KEYS = (
        "pool_rebuilds",
        "chunk_timeouts",
        "chunk_redispatches",
        "rep_retries",
        "rep_failures",
        "shm_chunks",
        "pickle_chunks",
        "shm_trace_chunks",
    )

    def stats(self) -> dict:
        """Recovery counters plus the current ``degraded`` flag.

        The counts live in the telemetry counter registry; this view
        preserves the pre-telemetry return shape (extended by the
        ``shm_chunks`` / ``pickle_chunks`` transport counters).
        """
        counts = self._counters.as_dict()
        out = {key: int(counts.get(key, 0)) for key in self._STAT_KEYS}
        with self._lock:
            out["degraded"] = self._degraded
        return out

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                # fork keeps worker start-up at milliseconds; fall back to
                # spawn where fork is unavailable (results are identical —
                # workers receive all state explicitly).
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
                self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)
            return self._pool

    def _note_pool_break(self, pool) -> None:
        """Account one pool breakage and retire the broken pool.

        Idempotent per pool object so concurrent threads observing the
        same breakage count it once.
        """
        with self._lock:
            if pool is not self._pool:
                return  # another thread already retired it
            self._pool = None
            self._counters.inc("pool_rebuilds")
            self._consecutive_breaks += 1
            if self._consecutive_breaks >= self.max_pool_breaks and not self._degraded:
                self._degraded = True
                _log.error(
                    "process pool broke %d consecutive times; degrading to "
                    "serial in-process execution",
                    self._consecutive_breaks,
                )
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    def _kill_pool(self, pool) -> None:
        """Forcibly terminate a pool whose workers are hung."""
        with self._lock:
            if pool is self._pool:
                self._pool = None
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    def _note_healthy_round(self) -> None:
        with self._lock:
            self._consecutive_breaks = 0

    def _account(self, rep: RepResult) -> None:
        if rep.attempts > 1 or rep.error is not None:
            self._counters.inc("rep_retries", rep.attempts - 1)
            if rep.error is not None:
                self._counters.inc("rep_failures")

    def _terminal_chunk(
        self, spec, chunk: range, policy: FaultPolicy, reason: str
    ) -> list[RepResult]:
        """Resolve a chunk that exhausted its dispatch budget."""
        message = (
            f"chunk reps {list(chunk)} of {spec.label()} {reason} after "
            f"{policy.retries + 1} dispatch(es)"
        )
        if policy.on_failure != "skip":
            raise RepExecutionError(message)
        _log.warning("%s; skipping per policy", message)
        out = []
        for i in chunk:
            record = FailureRecord(
                index=i,
                phase="chunk",
                error="ChunkTimeout",
                message=message,
                traceback_digest="-",
                attempts=policy.retries + 1,
                wall_time=0.0,
            )
            out.append(
                RepResult(
                    index=i,
                    exec_time=float("nan"),
                    anomaly=None,
                    error=record,
                    attempts=policy.retries + 1,
                )
            )
        return out

    def _make_block(self, spec, indices: range) -> Optional[_ShmResultBlock]:
        """Allocate the dispatch's shm block (None → pickle transport)."""
        if self.transport == "pickle" or not _shm_available():
            return None
        try:
            return _ShmResultBlock(indices, _anomaly_code_table(_resolved_context(spec)))
        except Exception as exc:  # pragma: no cover - e.g. /dev/shm full
            _log.warning(
                "shared-memory allocation failed (%s: %s); falling back to "
                "pickle transport",
                type(exc).__name__,
                exc,
            )
            return None

    # ------------------------------------------------------------------
    def run_rep_range(self, spec, noise, indices, need_runs=False, policy=None):
        policy = policy if policy is not None else DEFAULT_POLICY
        if len(indices) <= 1 or self.jobs <= 1 or self._degraded:
            # Not worth a pool round-trip (or the pool infrastructure is
            # unhealthy); the serial path is bit-identical.
            yield from self._serial_remainder(spec, noise, indices, need_runs, policy)
            return
        chunks = chunk_range(indices, self.jobs, self.chunk_size)
        block = self._make_block(spec, indices)
        trace_segments: set[str] = set()
        try:
            yield from self._run_chunks(
                spec, noise, chunks, need_runs, policy, block, trace_segments
            )
        finally:
            # The single owner-side unlink: reached on normal completion,
            # chunk failure, pool rebuild, hung-chunk kill, and caller
            # abandonment (generator close) alike.  Trace segments were
            # *named* by the parent before dispatch, so segments whose
            # worker died mid-write (or whose chunk was re-dispatched)
            # are unlinked here too.
            if block is not None:
                block.close()
            for name in trace_segments:
                _unlink_shm(name)

    def _run_chunks(self, spec, noise, chunks, need_runs, policy, block, trace_segments):
        shm_desc = block.descriptor() if block is not None else None
        dispatches = {cid: 0 for cid in range(len(chunks))}
        done: set[int] = set()
        while len(done) < len(chunks):
            if self._degraded:
                for cid in range(len(chunks)):
                    if cid in done:
                        continue
                    yield from self._serial_remainder(
                        spec, noise, chunks[cid], need_runs, policy, dispatches[cid]
                    )
                    done.add(cid)
                return
            pending = [cid for cid in range(len(chunks)) if cid not in done]
            pool = self._ensure_pool()
            # Telemetry context rides in the payload so worker spans
            # parent to the dispatching span; None keeps the disabled
            # path allocation-free in the workers.
            telem = (
                {"parent": _telemetry.current_span_id()} if _telemetry.enabled() else None
            )
            def _payload(cid):
                trace_name = None
                if block is not None and need_runs:
                    # Parent-chosen, dispatch-unique name: a re-dispatch
                    # gets a fresh segment, and every name ever handed
                    # out is registered for the owner-side unlink.
                    trace_name = f"{block.name}t{cid}d{dispatches[cid]}"
                    trace_segments.add(trace_name)
                return (
                    spec,
                    noise,
                    chunks[cid],
                    need_runs,
                    policy,
                    dispatches[cid],
                    telem,
                    shm_desc,
                    trace_name,
                )

            try:
                futures = {
                    cid: pool.submit(_run_rep_chunk, _payload(cid)) for cid in pending
                }
            except (BrokenProcessPool, RuntimeError):
                self._note_pool_break(pool)
                for cid in pending:
                    dispatches[cid] += 1
                    self._counters.inc("chunk_redispatches")
                continue
            broke = False
            # In-order consumption streams completed chunks to the
            # caller while later chunks are still running (rep order is
            # chunk order).
            for cid in pending:
                deadline = policy.chunk_deadline(len(chunks[cid]))
                try:
                    chunk_result = futures[cid].result(timeout=deadline)
                except BrokenProcessPool:
                    _log.warning(
                        "process pool broke while running chunk reps %s of %s; "
                        "rebuilding and re-dispatching unfinished chunks",
                        list(chunks[cid]),
                        spec.label(),
                    )
                    self._note_pool_break(pool)
                    broke = True
                    break
                except FuturesTimeout:
                    self._counters.inc("chunk_timeouts")
                    _log.warning(
                        "chunk reps %s of %s exceeded its %.1fs deadline; "
                        "killing workers and re-dispatching",
                        list(chunks[cid]),
                        spec.label(),
                        deadline,
                    )
                    self._kill_pool(pool)
                    if dispatches[cid] >= policy.retries:
                        for rep in self._terminal_chunk(
                            spec, chunks[cid], policy, "kept timing out"
                        ):
                            self._account(rep)
                            yield rep
                        done.add(cid)
                    broke = True
                    break
                else:
                    payload, blob = _split_chunk_result(chunk_result)
                    _telemetry.absorb_worker(blob)
                    if isinstance(payload, dict):
                        reps_list = block.extract(chunks[cid], payload)
                        self._counters.inc("shm_chunks")
                        runs = payload.get("runs")
                        if runs is not None:
                            _attach_runs_from_shm(runs, reps_list)
                            self._counters.inc("shm_trace_chunks")
                            # Segment fully consumed — release it now
                            # rather than at end-of-dispatch.
                            _unlink_shm(runs["name"])
                            trace_segments.discard(runs["name"])
                    else:
                        reps_list = payload
                        self._counters.inc("pickle_chunks")
                    for rep in reps_list:
                        self._account(rep)
                        yield rep
                    done.add(cid)
            if broke:
                for cid in pending:
                    if cid in done:
                        continue
                    futures[cid].cancel()
                    dispatches[cid] += 1
                    self._counters.inc("chunk_redispatches")
            else:
                self._note_healthy_round()

    def _serial_remainder(self, spec, noise, indices, need_runs, policy, base_attempt=0):
        """In-process execution of ``indices`` (degraded / tiny runs)."""
        context = _resolved_context(spec)
        for i in indices:
            rep = _run_one_rep(context, spec, noise, i, True, policy, base_attempt)
            self._account(rep)
            yield rep

    def close(self, force: bool = False) -> None:
        """Shut the pool down.

        Shared instances (handed out by :func:`get_executor`) survive
        ``close()`` / ``with`` blocks: other campaign threads may still
        hold them.  They are torn down at interpreter exit (or with
        ``force=True``).
        """
        if self._shared and not force:
            return
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value or ``REPRO_JOBS``.

    ``None`` reads the environment (default 1); ``0`` means one worker
    per CPU; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer (0 = one worker per CPU), got {raw!r}"
            ) from None
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


#: shared parallel backends keyed by worker count — campaigns issuing
#: thousands of experiments reuse one warm pool instead of respawning
_shared: dict[int, ParallelExecutor] = {}


@atexit.register
def _close_shared() -> None:
    # Shut pools down before interpreter teardown dismantles the
    # modules their weakref callbacks rely on.
    for ex in _shared.values():
        ex.close(force=True)
    _shared.clear()


def get_executor(
    jobs: Optional[int] = None, chunk_size: Optional[int] = None
) -> Executor:
    """Backend for ``jobs`` workers (``None`` → ``REPRO_JOBS``).

    Parallel backends are pooled per worker count and *shared*: their
    ``close()`` is a no-op (other callers may still hold the same
    instance), and the warm pool is torn down at interpreter exit.
    An explicit ``chunk_size`` is applied to the shared instance —
    chunking never affects results, only dispatch granularity.
    """
    n = resolve_jobs(jobs)
    if n <= 1:
        return SerialExecutor()
    ex = _shared.get(n)
    if ex is None:
        ex = _shared[n] = ParallelExecutor(n, chunk_size=chunk_size)
        ex._shared = True
    elif chunk_size is not None:
        ex.chunk_size = resolve_chunk_size(chunk_size)
    return ex
