"""Paper-style table and figure rendering.

The campaign modules produce structured results; this module turns
them into the ASCII layouts the paper's tables use — one row per
workload configuration, one column per mitigation strategy, execution
time over percentage change — plus simple text "figures" (per-series
distribution summaries) for the motivation plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["TableBuilder", "InjectionRow", "render_injection_table", "render_series_figure"]


class TableBuilder:
    """Minimal fixed-width table renderer."""

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append a row (cells are str()-ed; must match header count)."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Fixed-width render with a separator under the header."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines = [fmt(self.headers), fmt(["-" * w for w in widths])]
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)


@dataclass
class InjectionRow:
    """One row-group of Tables 3–5: a workload configuration under all
    strategies, as (exec seconds, Δ% vs baseline) pairs."""

    label: str                         # e.g. "OMP #1" or "SYCL SMT #2"
    exec_times: dict[str, float]       # strategy -> injected mean (s)
    deltas: dict[str, float]           # strategy -> % change vs baseline
    paper_exec: dict[str, float] = field(default_factory=dict)
    paper_delta: dict[str, float] = field(default_factory=dict)


def render_injection_table(
    title: str,
    rows: Sequence[InjectionRow],
    strategies: Sequence[str],
    with_paper: bool = False,
) -> str:
    """Render rows in the two-line-per-config layout of Tables 3–5."""
    tb = TableBuilder(["config", *strategies])
    for row in rows:
        tb.add_row(
            row.label,
            *(f"{row.exec_times.get(s, float('nan')):.3f}" for s in strategies),
        )
        tb.add_row(
            "",
            *(f"{row.deltas.get(s, float('nan')):+.1f}%" for s in strategies),
        )
        if with_paper and row.paper_exec:
            tb.add_row(
                "  (paper)",
                *(
                    f"{row.paper_exec[s]:.3f}" if s in row.paper_exec else "-"
                    for s in strategies
                ),
            )
            tb.add_row(
                "",
                *(
                    f"{row.paper_delta[s]:+.1f}%" if s in row.paper_delta else "-"
                    for s in strategies
                ),
            )
    return f"{title}\n{tb.render()}"


def render_series_figure(
    title: str,
    x_labels: Sequence[str],
    series: dict[str, Sequence[tuple[float, float, float]]],
    unit: str = "ms",
    scale: float = 1e3,
    bar_width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Text rendering of a grouped distribution figure (Figs. 1–2).

    ``series`` maps a system label to per-x ``(mean, sd, max)`` tuples
    in seconds; each becomes a line with an sd bar so the
    reserved-vs-unreserved variability contrast is visible in a
    terminal.
    """
    lines = [title]
    all_sd = [t[1] for pts in series.values() for t in pts]
    top = max_value if max_value is not None else (max(all_sd) * scale if all_sd else 1.0)
    top = max(top, 1e-9)
    for name, points in series.items():
        lines.append(f"  {name}:")
        for label, (mean, sd, worst) in zip(x_labels, points):
            bar = "#" * max(1, int(round(sd * scale / top * bar_width))) if sd > 0 else ""
            lines.append(
                f"    {label:>8}  mean={mean * scale:9.3f}{unit}  "
                f"sd={sd * scale:8.3f}{unit}  max={worst * scale:9.3f}{unit}  |{bar}"
            )
    return "\n".join(lines)
