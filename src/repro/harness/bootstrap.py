"""Bootstrap confidence intervals for run-time comparisons.

Comparing noisy run-time samples by their means alone invites
false conclusions — precisely the failure mode the paper's controlled
injection exists to avoid. These helpers quantify the uncertainty:
percentile-bootstrap CIs for a sample mean and for the relative change
between two samples (the Δ% the tables report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["BootstrapCI", "mean_ci", "relative_change_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def significant(self) -> bool:
        """For difference-type estimates: does the CI exclude zero?"""
        return not self.contains(0.0)

    def __str__(self) -> str:
        pct = self.confidence * 100
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] @{pct:.0f}%"


def _check(samples: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        raise ValueError(f"{name} needs at least 2 samples, got {arr.size}")
    return arr


def mean_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the sample mean."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence!r}")
    arr = _check(samples, "samples")
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(float(arr.mean()), float(low), float(high), confidence)


def relative_change_ci(
    test: Sequence[float],
    baseline: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Bootstrap CI for the Δ% of ``test`` over ``baseline`` means.

    The two samples are resampled independently (they come from
    independent runs), and the statistic is
    ``(mean(test)/mean(baseline) - 1) * 100``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence!r}")
    t = _check(test, "test")
    b = _check(baseline, "baseline")
    if (b <= 0).any():
        raise ValueError("baseline times must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    t_means = t[rng.integers(0, t.size, size=(n_boot, t.size))].mean(axis=1)
    b_means = b[rng.integers(0, b.size, size=(n_boot, b.size))].mean(axis=1)
    deltas = (t_means / b_means - 1.0) * 100.0
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(deltas, [alpha, 1.0 - alpha])
    point = (t.mean() / b.mean() - 1.0) * 100.0
    return BootstrapCI(float(point), float(low), float(high), confidence)
