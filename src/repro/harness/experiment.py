"""Experiment specification and runner.

An :class:`ExperimentSpec` is everything needed to reproduce one cell
of the paper's tables: platform, workload, programming model,
mitigation strategy, SMT use, repetition count, and a seed.  The same
spec with ``noise`` set (a :class:`~repro.noise.base.NoiseStack` —
trace replay, I/O interference, memory hogs, synthetic background, or
any composition of them) becomes an injection experiment (stage 3 of
the pipeline).  The pre-refactor ``noise_config`` argument is kept as a
deprecated alias that wraps a bare
:class:`~repro.core.config.NoiseConfig` into a single-source stack.

Repetition counts default to the environment variables
``REPRO_BASELINE_REPS`` / ``REPRO_INJECT_REPS`` so the full-paper
counts (1000 / 200) can be restored without code changes.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.harness.adaptive import AdaptivePolicy
from repro.harness.stats import Summary, summarize
from repro.mitigation.strategies import get_strategy
from repro.noise.base import NoiseStack
from repro.runtimes import get_runtime
from repro.runtimes.base import Placement
from repro.sim.machine import Machine, RunResult
from repro.sim.noise import runlevel3 as _runlevel3
from repro.sim.platform import PlatformSpec, get_platform
from repro.workloads.base import Workload, get_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import NoiseConfig
    from repro.harness.executor import Executor
    from repro.harness.faults import FailureRecord, FaultPolicy
    from repro.noise.base import NoiseSource

    NoiseLike = Union[NoiseStack, NoiseSource, "NoiseConfig", None]

__all__ = [
    "ExperimentSpec",
    "ResultSet",
    "ResolvedContext",
    "resolve_context",
    "context_key",
    "run_experiment",
    "run_once",
    "run_resolved",
    "default_baseline_reps",
    "default_inject_reps",
    "env_int",
]


def env_int(name: str, default: int) -> int:
    """Integer environment variable with a validating error message.

    Unset or blank values yield ``default``; anything else must parse
    as an integer, or the error names the offending variable and value
    instead of ``int()``'s opaque ``ValueError``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw.strip())
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def default_baseline_reps() -> int:
    """Baseline repetitions (paper: 1000; default here: 60)."""
    return env_int("REPRO_BASELINE_REPS", 60)


def default_inject_reps() -> int:
    """Injection repetitions (paper: 200; default here: 30)."""
    return env_int("REPRO_INJECT_REPS", 30)


def _coerce_noise(noise, noise_config, owner: str) -> Optional[NoiseStack]:
    """Shared ``noise`` / deprecated ``noise_config`` resolution."""
    if noise_config is not None:
        warnings.warn(
            f"{owner}(noise_config=...) is deprecated; pass noise= (any NoiseSource, "
            "NoiseStack, or legacy config — see repro.noise)",
            DeprecationWarning,
            stacklevel=3,
        )
        if noise is None:
            noise = noise_config
    return NoiseStack.coerce(noise)


@dataclass(frozen=True, init=False)
class ExperimentSpec:
    """One experiment configuration (a table cell)."""

    platform: str
    workload: str
    model: str = "omp"
    strategy: str = "Rm"
    use_smt: bool = True
    reps: int = 0                      # 0 → environment default
    seed: int = 2025
    tracing: bool = True
    runlevel3: bool = False
    rt_throttle: bool = True
    anomaly_prob: Optional[float] = None
    #: override the thread count (default: one per CPU in the strategy's
    #: mask); used by the Fig.-2 thread-scaling sweep
    n_threads: Optional[int] = None
    workload_params: dict = field(default_factory=dict)
    #: noise driven during every run (injection experiment when set);
    #: any combination of registered sources via a NoiseStack
    noise: Optional[NoiseStack] = None
    #: opt-in CI-driven early stopping (None = classic fixed reps);
    #: accepts an AdaptivePolicy or its dict serialization
    adaptive: Optional[AdaptivePolicy] = None

    def __init__(
        self,
        platform: str,
        workload: str,
        model: str = "omp",
        strategy: str = "Rm",
        use_smt: bool = True,
        reps: int = 0,
        seed: int = 2025,
        tracing: bool = True,
        runlevel3: bool = False,
        rt_throttle: bool = True,
        anomaly_prob: Optional[float] = None,
        n_threads: Optional[int] = None,
        workload_params: Optional[dict] = None,
        noise: "NoiseLike" = None,
        noise_config: Optional["NoiseConfig"] = None,
        adaptive: Optional[AdaptivePolicy] = None,
    ):
        """``noise_config`` is the deprecated pre-registry alias for
        ``noise``; it accepts a bare :class:`NoiseConfig` and wraps it
        into a single-source :class:`NoiseStack`."""
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "strategy", strategy)
        object.__setattr__(self, "use_smt", use_smt)
        object.__setattr__(self, "reps", reps)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "tracing", tracing)
        object.__setattr__(self, "runlevel3", runlevel3)
        object.__setattr__(self, "rt_throttle", rt_throttle)
        object.__setattr__(self, "anomaly_prob", anomaly_prob)
        object.__setattr__(self, "n_threads", n_threads)
        object.__setattr__(
            self, "workload_params", workload_params if workload_params is not None else {}
        )
        object.__setattr__(
            self, "noise", _coerce_noise(noise, noise_config, "ExperimentSpec")
        )
        object.__setattr__(self, "adaptive", AdaptivePolicy.coerce(adaptive))

    def label(self) -> str:
        """Human-readable configuration label (paper row style)."""
        smt = "-SMT" if self.use_smt and "amd" in self.platform else ""
        return f"{self.strategy}-{self.model.upper()}{smt}/{self.workload}@{self.platform}"

    def resolved_reps(self, injecting: bool = False) -> int:
        """Repetition count with environment defaults applied."""
        if self.reps > 0:
            return self.reps
        return default_inject_reps() if injecting else default_baseline_reps()

    def with_(self, **changes) -> "ExperimentSpec":
        """Functional update."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        unknown = set(changes) - set(current)
        if unknown:
            raise TypeError(f"unknown ExperimentSpec field(s): {sorted(unknown)}")
        current.update(changes)
        return ExperimentSpec(**current)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (exact round-trip).

        ``noise`` and ``adaptive`` serialise through their own
        ``to_dict`` forms; everything else is scalars and a plain
        params dict.  This is the wire format of the campaign-service
        job queue, so :meth:`from_dict` must reconstruct a spec whose
        cache key and results are identical to the original's.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("noise", "adaptive") and value is not None:
                value = value.to_dict()
            elif f.name == "workload_params":
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        noise = data.get("noise")
        if isinstance(noise, dict):
            data["noise"] = NoiseStack.from_dict(noise)
        return cls(**data)


@dataclass
class ResultSet:
    """Execution times and metadata of one experiment.

    Under a ``skip`` :class:`~repro.harness.faults.FaultPolicy` an
    experiment may complete *partially*: terminally failed reps carry
    NaN in ``times`` and a structured
    :class:`~repro.harness.faults.FailureRecord` in ``failures``.  The
    statistics properties then aggregate over the completed reps only;
    with no failures they are bit-identical to the pre-fault-tolerance
    behaviour.
    """

    spec: ExperimentSpec
    times: np.ndarray
    anomalies: list[Optional[str]]
    injected: bool = False
    #: terminal per-rep failures contained by a ``skip`` policy
    failures: list["FailureRecord"] = field(default_factory=list)
    #: early-stopping metadata when the spec carried an
    #: :class:`~repro.harness.adaptive.AdaptivePolicy`: ``reps_run``,
    #: ``cap``, ``stopped_early``, ``rel_halfwidth``, ``policy``.
    #: ``None`` for classic fixed-rep experiments (``times`` then has
    #: exactly ``spec.reps`` entries; adaptive sets may have fewer).
    adaptive: Optional[dict] = None

    @property
    def ok_times(self) -> np.ndarray:
        """Execution times of the reps that completed."""
        if not self.failures:
            return self.times
        return self.times[~np.isnan(self.times)]

    @property
    def summary(self) -> Summary:
        """Descriptive statistics of the (completed) execution times."""
        return summarize(self.ok_times)

    @property
    def mean(self) -> float:
        """Mean execution time in seconds."""
        # The no-failure fast path preserves exact float behaviour
        # (cache envelopes and golden comparisons depend on it).
        if not self.failures:
            return float(self.times.mean())
        return float(self.ok_times.mean())

    @property
    def sd(self) -> float:
        """Sample standard deviation in seconds."""
        times = self.times if not self.failures else self.ok_times
        return float(times.std(ddof=1)) if len(times) > 1 else 0.0

    def anomaly_count(self) -> int:
        """Runs in which a natural anomaly fired."""
        return sum(1 for a in self.anomalies if a)

    def failure_count(self) -> int:
        """Reps that failed terminally (skipped under the policy)."""
        return len(self.failures)


# ----------------------------------------------------------------------
@dataclass
class ResolvedContext:
    """Everything per-rep execution needs, resolved once from a spec.

    Platform presets, workloads, placements, and the expected duration
    are pure functions of the spec, so they can be built once and
    reused across every repetition — and across *experiments*: the
    executors key worker-local context caches by :func:`context_key`,
    which deliberately excludes ``seed`` and ``reps``, so a campaign
    sweeping seeds over one configuration (or an adaptive experiment
    dispatching batch after batch) resolves the world exactly once per
    worker process.

    The runtime is *not* cached: :class:`~repro.runtimes.base.TeamRuntime`
    instances are single-use (one machine each), so ``model`` stays a
    name and :func:`run_resolved` instantiates a fresh runtime per rep
    — exactly as :func:`run_once` always has, keeping the RNG draw
    order (and therefore every result bit) unchanged.
    """

    platform: PlatformSpec
    workload: Workload
    placement: Placement
    model: str
    tracing: bool
    #: the spec-level flag; per-rep execution still turns throttling
    #: off when the attached noise stack requires it
    rt_throttle: bool
    #: precomputed ``workload.estimate_duration(platform, n_threads)``
    expected: float
    key: str


def context_key(spec: ExperimentSpec) -> str:
    """Cache key of a spec's resolved context.

    Covers every field :func:`resolve_context` reads — and *only*
    those: ``seed``, ``reps``, ``noise``, and ``adaptive`` do not
    shape the platform/workload/placement, so specs differing only in
    them share one resolved context.
    """
    return repr((
        spec.platform,
        spec.workload,
        spec.model,
        spec.strategy,
        spec.use_smt,
        spec.tracing,
        spec.runlevel3,
        spec.rt_throttle,
        spec.anomaly_prob,
        spec.n_threads,
        sorted(spec.workload_params.items()),
    ))


def resolve_context(spec: ExperimentSpec) -> ResolvedContext:
    """Build the reusable per-spec execution context."""
    platform, workload, placement = _build_context(spec)
    return ResolvedContext(
        platform=platform,
        workload=workload,
        placement=placement,
        model=spec.model,
        tracing=spec.tracing,
        rt_throttle=spec.rt_throttle,
        expected=workload.estimate_duration(platform, placement.n_threads),
        key=context_key(spec),
    )


def run_resolved(
    context: ResolvedContext,
    rng: np.random.Generator,
    noise: Optional[NoiseStack] = None,
    *,
    rt_throttle: Optional[bool] = None,
    meta: Optional[dict] = None,
) -> RunResult:
    """Execute one run on a prebuilt :class:`ResolvedContext`.

    The hot-loop twin of :func:`run_once`: identical machine
    construction, runtime launch, and noise attachment in the same
    order, so results are bit-identical — it merely skips re-resolving
    platform/workload/placement and re-estimating the duration.
    ``noise`` must already be a coerced stack (or ``None``).
    """
    machine = Machine(
        context.platform,
        rng,
        tracing=context.tracing,
        rt_throttle=context.rt_throttle if rt_throttle is None else rt_throttle,
    )
    runtime = get_runtime(context.model)

    def start(m: Machine) -> None:
        runtime.launch(
            m,
            context.workload.regions(context.platform, context.placement.n_threads),
            context.placement,
        )
        if noise is not None and noise:
            noise.attach(m, rng).start(context.expected)

    return machine.run(start, expected_duration=context.expected, meta=meta)


def _build_context(spec: ExperimentSpec):
    """Resolve names to concrete platform / workload / placement."""
    platform = get_platform(spec.platform)
    noise_env = platform.noise
    if spec.runlevel3:
        noise_env = _runlevel3(noise_env)
    if spec.anomaly_prob is not None:
        from dataclasses import replace as _dc_replace

        noise_env = _dc_replace(
            noise_env, anomalies=_dc_replace(noise_env.anomalies, prob=spec.anomaly_prob)
        )
    platform = platform.with_noise(noise_env)
    workload = get_workload(spec.workload, platform, **spec.workload_params)
    placement = get_strategy(spec.strategy).placement(platform, use_smt=spec.use_smt)
    if spec.n_threads is not None:
        from dataclasses import replace as _dc_replace

        if spec.n_threads > len(placement.cpus):
            raise ValueError(
                f"n_threads={spec.n_threads} exceeds the strategy's "
                f"{len(placement.cpus)}-CPU mask"
            )
        placement = _dc_replace(placement, n_threads=spec.n_threads)
    return platform, workload, placement


def run_once(
    platform: PlatformSpec,
    workload: Workload,
    placement: Placement,
    model: str,
    rng: np.random.Generator,
    *,
    tracing: bool = True,
    rt_throttle: bool = True,
    noise: "NoiseLike" = None,
    noise_config: Optional["NoiseConfig"] = None,
    meta: Optional[dict] = None,
) -> RunResult:
    """Execute a single simulated run and return its result.

    ``noise`` accepts any :class:`~repro.noise.base.NoiseSource`,
    a :class:`~repro.noise.base.NoiseStack`, or a legacy config type;
    each member source draws from an independent child of ``rng``.
    """
    stack = _coerce_noise(noise, noise_config, "run_once")
    machine = Machine(
        platform,
        rng,
        tracing=tracing,
        rt_throttle=rt_throttle,
    )
    runtime = get_runtime(model)
    expected = workload.estimate_duration(platform, placement.n_threads)

    def start(m: Machine) -> None:
        """Launch runtime (and noise sources) on the fresh machine."""
        runtime.launch(m, workload.regions(platform, placement.n_threads), placement)
        if stack is not None and stack:
            stack.attach(m, rng).start(expected)

    return machine.run(start, expected_duration=expected, meta=meta)


def run_experiment(
    spec: ExperimentSpec,
    noise: "NoiseLike" = None,
    on_run: Optional[Callable[[int, RunResult], None]] = None,
    executor: Optional["Executor"] = None,
    noise_config: Optional["NoiseConfig"] = None,
    policy: Optional["FaultPolicy"] = None,
) -> ResultSet:
    """Run a full experiment (``reps`` independent machines).

    Parameters
    ----------
    noise:
        When given (any registered :class:`~repro.noise.base.NoiseSource`,
        a :class:`~repro.noise.base.NoiseStack`, or a legacy config
        type), every run drives the composed sources alongside the
        workload (with RT throttling disabled when any source requires
        it, as in the paper).  Defaults to ``spec.noise``.
        ``noise_config`` is the deprecated alias for this parameter.
    on_run:
        Optional consumer called per run — e.g. the trace collector.
        Traces are not retained by the ResultSet (a thousand desktop
        traces would be gigabytes); consume them here.  Always invoked
        in rep order; under a parallel executor delivery is post-hoc
        (after the rep's chunk completes) rather than live.
    executor:
        Execution backend; defaults to
        :func:`~repro.harness.executor.get_executor` (``REPRO_JOBS``).
        ``times[i]`` / ``anomalies[i]`` are bit-identical across
        backends and worker counts — reps are seeded by index.
    policy:
        Fault containment (:class:`~repro.harness.faults.FaultPolicy`):
        per-rep timeouts, retries with deterministic backoff, and
        ``skip`` semantics producing a partial ResultSet with attached
        :class:`~repro.harness.faults.FailureRecord` entries instead of
        raising mid-experiment.  Default: fail fast (pre-existing
        behaviour).  A rep that succeeds after retries is bit-identical
        to a clean first run — retries re-seed from the original
        per-rep spawn key.
    """
    from repro import telemetry as _telemetry
    from repro.harness.executor import get_executor

    if executor is None:
        executor = get_executor()
    stack = _coerce_noise(noise, noise_config, "run_experiment")
    if stack is None:
        stack = spec.noise
    injecting = stack is not None and bool(stack)
    if spec.adaptive is not None:
        return _run_adaptive(spec, stack, injecting, on_run, executor, policy)
    reps = spec.resolved_reps(injecting)
    times = np.empty(reps)
    anomalies: list[Optional[str]] = [None] * reps
    failures: list["FailureRecord"] = []
    # One span per experiment — far off the per-rep hot path, so no
    # enabled() guard is needed around the attribute dict.
    with _telemetry.span(
        "experiment", spec=spec.label(), reps=reps, injected=injecting
    ):
        for rep in executor.run_reps(
            spec, stack, reps, need_runs=on_run is not None, policy=policy
        ):
            times[rep.index] = rep.exec_time
            anomalies[rep.index] = rep.anomaly
            if rep.error is not None:
                failures.append(rep.error)
            elif on_run is not None:
                on_run(rep.index, rep.run)
    return ResultSet(
        spec=spec,
        times=times,
        anomalies=anomalies,
        injected=injecting,
        failures=failures,
    )


def _run_adaptive(
    spec: ExperimentSpec,
    stack: Optional[NoiseStack],
    injecting: bool,
    on_run: Optional[Callable[[int, RunResult], None]],
    executor: "Executor",
    policy: Optional["FaultPolicy"],
) -> ResultSet:
    """CI-driven rep loop: deterministic batches, early stop on precision.

    Reps are dispatched in the policy's fixed batch schedule through
    :meth:`~repro.harness.executor.Executor.run_rep_range`, so rep ``i``
    is bit-identical to rep ``i`` of a fixed-rep run; after each batch
    the stop rule evaluates a bootstrap CI drawn from an RNG keyed by
    ``(seed, n)``.  Same spec + seed + policy → same rep count and
    results at any worker count.
    """
    from repro import telemetry as _telemetry

    adaptive = spec.adaptive
    cap = adaptive.resolve_cap(spec.resolved_reps(injecting))
    times = np.empty(cap)
    anomalies: list[Optional[str]] = [None] * cap
    failures: list["FailureRecord"] = []
    n = 0
    stopped_early = False
    rel_hw = float("nan")
    with _telemetry.span(
        "experiment", spec=spec.label(), reps=cap, injected=injecting, adaptive=True
    ):
        for edge in adaptive.batch_edges(cap):
            batch = range(n, edge)
            with _telemetry.span("batch", spec=spec.label(), start=n, size=len(batch)):
                for rep in executor.run_rep_range(
                    spec, stack, batch, need_runs=on_run is not None, policy=policy
                ):
                    times[rep.index] = rep.exec_time
                    anomalies[rep.index] = rep.anomaly
                    if rep.error is not None:
                        failures.append(rep.error)
                    elif on_run is not None:
                        on_run(rep.index, rep.run)
            n = edge
            done = times[:n]
            stop, rel_hw = adaptive.should_stop(done[~np.isnan(done)], spec.seed, n)
            if stop:
                stopped_early = n < cap
                break
    group = _telemetry.get_group("adaptive")
    group.inc("cells")
    group.inc("reps_run", n)
    group.inc("reps_saved", cap - n)
    if stopped_early:
        group.inc("early_stops")
    return ResultSet(
        spec=spec,
        times=times[:n].copy(),
        anomalies=anomalies[:n],
        injected=injecting,
        failures=failures,
        adaptive={
            "reps_run": n,
            "cap": cap,
            "stopped_early": stopped_early,
            "rel_halfwidth": rel_hw,
            "policy": adaptive.to_dict(),
        },
    )
