"""Experiment specification and runner.

An :class:`ExperimentSpec` is everything needed to reproduce one cell
of the paper's tables: platform, workload, programming model,
mitigation strategy, SMT use, repetition count, and a seed.  The same
spec with ``noise_config`` set becomes an injection experiment
(stage 3 of the pipeline).

Repetition counts default to the environment variables
``REPRO_BASELINE_REPS`` / ``REPRO_INJECT_REPS`` so the full-paper
counts (1000 / 200) can be restored without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.harness.stats import Summary, summarize
from repro.mitigation.strategies import get_strategy
from repro.runtimes import get_runtime
from repro.runtimes.base import Placement
from repro.sim.machine import Machine, RunResult
from repro.sim.noise import runlevel3 as _runlevel3
from repro.sim.platform import PlatformSpec, get_platform
from repro.workloads.base import Workload, get_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import NoiseConfig
    from repro.harness.executor import Executor

__all__ = [
    "ExperimentSpec",
    "ResultSet",
    "run_experiment",
    "run_once",
    "default_baseline_reps",
    "default_inject_reps",
]


def default_baseline_reps() -> int:
    """Baseline repetitions (paper: 1000; default here: 60)."""
    return int(os.environ.get("REPRO_BASELINE_REPS", "60"))


def default_inject_reps() -> int:
    """Injection repetitions (paper: 200; default here: 30)."""
    return int(os.environ.get("REPRO_INJECT_REPS", "30"))


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment configuration (a table cell)."""

    platform: str
    workload: str
    model: str = "omp"
    strategy: str = "Rm"
    use_smt: bool = True
    reps: int = 0                      # 0 → environment default
    seed: int = 2025
    tracing: bool = True
    runlevel3: bool = False
    rt_throttle: bool = True
    anomaly_prob: Optional[float] = None
    #: override the thread count (default: one per CPU in the strategy's
    #: mask); used by the Fig.-2 thread-scaling sweep
    n_threads: Optional[int] = None
    workload_params: dict = field(default_factory=dict)

    def label(self) -> str:
        """Human-readable configuration label (paper row style)."""
        smt = "-SMT" if self.use_smt and "amd" in self.platform else ""
        return f"{self.strategy}-{self.model.upper()}{smt}/{self.workload}@{self.platform}"

    def resolved_reps(self, injecting: bool = False) -> int:
        """Repetition count with environment defaults applied."""
        if self.reps > 0:
            return self.reps
        return default_inject_reps() if injecting else default_baseline_reps()

    def with_(self, **changes) -> "ExperimentSpec":
        """Functional update."""
        return replace(self, **changes)


@dataclass
class ResultSet:
    """Execution times and metadata of one experiment."""

    spec: ExperimentSpec
    times: np.ndarray
    anomalies: list[Optional[str]]
    injected: bool = False

    @property
    def summary(self) -> Summary:
        """Descriptive statistics of the execution times."""
        return summarize(self.times)

    @property
    def mean(self) -> float:
        """Mean execution time in seconds."""
        return float(self.times.mean())

    @property
    def sd(self) -> float:
        """Sample standard deviation in seconds."""
        return float(self.times.std(ddof=1)) if len(self.times) > 1 else 0.0

    def anomaly_count(self) -> int:
        """Runs in which a natural anomaly fired."""
        return sum(1 for a in self.anomalies if a)


# ----------------------------------------------------------------------
def _build_context(spec: ExperimentSpec):
    """Resolve names to concrete platform / workload / placement."""
    platform = get_platform(spec.platform)
    noise_env = platform.noise
    if spec.runlevel3:
        noise_env = _runlevel3(noise_env)
    if spec.anomaly_prob is not None:
        from dataclasses import replace as _dc_replace

        noise_env = _dc_replace(
            noise_env, anomalies=_dc_replace(noise_env.anomalies, prob=spec.anomaly_prob)
        )
    platform = platform.with_noise(noise_env)
    workload = get_workload(spec.workload, platform, **spec.workload_params)
    placement = get_strategy(spec.strategy).placement(platform, use_smt=spec.use_smt)
    if spec.n_threads is not None:
        from dataclasses import replace as _dc_replace

        if spec.n_threads > len(placement.cpus):
            raise ValueError(
                f"n_threads={spec.n_threads} exceeds the strategy's "
                f"{len(placement.cpus)}-CPU mask"
            )
        placement = _dc_replace(placement, n_threads=spec.n_threads)
    return platform, workload, placement


def run_once(
    platform: PlatformSpec,
    workload: Workload,
    placement: Placement,
    model: str,
    rng: np.random.Generator,
    *,
    tracing: bool = True,
    rt_throttle: bool = True,
    noise_config: Optional["NoiseConfig"] = None,
    meta: Optional[dict] = None,
) -> RunResult:
    """Execute a single simulated run and return its result."""
    machine = Machine(
        platform,
        rng,
        tracing=tracing,
        rt_throttle=rt_throttle,
    )
    runtime = get_runtime(model)
    expected = workload.estimate_duration(platform, placement.n_threads)

    def start(m: Machine) -> None:
        """Launch runtime (and injector) on the fresh machine."""
        runtime.launch(m, workload.regions(platform, placement.n_threads), placement)
        if noise_config is not None:
            from repro.core.injector import NoiseInjector

            NoiseInjector(noise_config).launch(m)

    return machine.run(start, expected_duration=expected, meta=meta)


def run_experiment(
    spec: ExperimentSpec,
    noise_config: Optional["NoiseConfig"] = None,
    on_run: Optional[Callable[[int, RunResult], None]] = None,
    executor: Optional["Executor"] = None,
) -> ResultSet:
    """Run a full experiment (``reps`` independent machines).

    Parameters
    ----------
    noise_config:
        When given, every run replays this configuration through the
        injector (with RT throttling disabled, as in the paper).
    on_run:
        Optional consumer called per run — e.g. the trace collector.
        Traces are not retained by the ResultSet (a thousand desktop
        traces would be gigabytes); consume them here.  Always invoked
        in rep order; under a parallel executor delivery is post-hoc
        (after the rep's chunk completes) rather than live.
    executor:
        Execution backend; defaults to
        :func:`~repro.harness.executor.get_executor` (``REPRO_JOBS``).
        ``times[i]`` / ``anomalies[i]`` are bit-identical across
        backends and worker counts — reps are seeded by index.
    """
    from repro.harness.executor import get_executor

    if executor is None:
        executor = get_executor()
    injecting = noise_config is not None
    reps = spec.resolved_reps(injecting)
    times = np.empty(reps)
    anomalies: list[Optional[str]] = [None] * reps
    for rep in executor.run_reps(spec, noise_config, reps, need_runs=on_run is not None):
        times[rep.index] = rep.exec_time
        anomalies[rep.index] = rep.anomaly
        if on_run is not None:
            on_run(rep.index, rep.run)
    return ResultSet(spec=spec, times=times, anomalies=anomalies, injected=injecting)
