"""Transport-agnostic execution core for chunks of repetitions.

The parallel executor's pool workers and the campaign service's
remote-leased workers run the exact same code to turn ``(spec, noise,
rep indices)`` into :class:`RepResult` lists — this module is that
shared core, extracted from :mod:`repro.harness.executor` so the two
transports (pickled pool payloads, SQLite job leases) cannot drift.

What lives here:

* :func:`rep_seed` — the per-rep ``SeedSequence`` spawn-key contract
  every backend derives determinism from;
* the per-process resolved-context LRU (:func:`resolved_context`),
  keyed by :func:`~repro.harness.experiment.context_key` so chunk after
  chunk of one configuration resolves the world once per process;
* :func:`run_one_rep` — the contained attempt loop (timeouts, retries
  with deterministic backoff, ``skip`` semantics) shared by serial,
  pool, and service execution;
* :class:`ChunkRunner` — the chunk-level entry point: resolve once,
  run each index through the attempt loop, return results in index
  order.  It knows nothing about how its inputs arrived or how its
  outputs travel home — the executor's shm/pickle marshalling and the
  service's result store are layered on top.

Determinism contract: rep ``i`` always draws from
``SeedSequence(spec.seed, spawn_key=(i,))`` and every retry rebuilds
that RNG from scratch, so results are bit-identical across backends,
worker counts, chunk sizes, transports, and lease re-dispatches.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.harness.chaos import get_chaos
from repro.harness.faults import (
    DEFAULT_POLICY,
    FailureRecord,
    FaultPolicy,
    RepExecutionError,
    rep_deadline,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.experiment import ExperimentSpec, ResolvedContext
    from repro.noise.base import NoiseStack
    from repro.sim.machine import RunResult

__all__ = [
    "RepResult",
    "ChunkRunner",
    "DEFAULT_RUNNER",
    "rep_seed",
    "resolved_context",
    "shard_ranges",
]

_log = logging.getLogger(__name__)


def rep_seed(seed: int, index: int) -> np.random.SeedSequence:
    """Seed stream of repetition ``index`` of an experiment.

    Equal to ``SeedSequence(seed).spawn(reps)[index]`` for any
    ``reps > index`` (children are keyed by spawn position only), so
    workers can reseed any rep without materialising the full spawn.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def shard_ranges(reps: int, shard: int) -> list[range]:
    """Deterministic rep-slice boundaries for sharding a cell.

    Exactly the :func:`~repro.harness.executor.chunk_range` partition
    with an explicit chunk size — fixed ``shard``-rep slices in index
    order — so a cell split across service workers is carved the same
    way an in-process executor would carve it, and any transport can
    recompute the boundaries from ``(reps, shard)`` alone.
    """
    from repro.harness.executor import chunk_range

    if reps < 1:
        raise ValueError(f"shard_ranges needs reps >= 1, got {reps}")
    return chunk_range(range(reps), 1, chunk_size=shard)


# ----------------------------------------------------------------------
# per-process resolved-context cache
# ----------------------------------------------------------------------
#: resolved contexts by context_key — kept tiny: a worker typically
#: sees one configuration at a time, a campaign a handful interleaved
_CONTEXT_CACHE_MAX = 8
_context_cache: "OrderedDict[str, ResolvedContext]" = OrderedDict()
_context_lock = threading.Lock()


def resolved_context(spec: "ExperimentSpec") -> "ResolvedContext":
    """The spec's :class:`ResolvedContext`, via the per-process LRU.

    Keyed by :func:`~repro.harness.experiment.context_key` (seed- and
    rep-count-independent), so adaptive batches, sweep cells that vary
    only the seed, and repeated chunks of one campaign cell all reuse
    one resolved world per process.
    """
    from repro.harness.experiment import context_key, resolve_context

    key = context_key(spec)
    group = _telemetry.get_group("context")
    with _context_lock:
        context = _context_cache.get(key)
        if context is not None:
            _context_cache.move_to_end(key)
            group.inc("hits")
            return context
    context = resolve_context(spec)
    with _context_lock:
        group.inc("builds")
        _context_cache[key] = context
        while len(_context_cache) > _CONTEXT_CACHE_MAX:
            _context_cache.popitem(last=False)
    return context


# ----------------------------------------------------------------------
# per-rep outcome
# ----------------------------------------------------------------------
@dataclass
class RepResult:
    """Outcome of one repetition, tagged with its index."""

    index: int
    exec_time: float
    anomaly: Optional[str]
    #: full :class:`~repro.sim.machine.RunResult` (trace included) when
    #: the caller asked for it; ``None`` otherwise to keep worker
    #: payloads small
    run: Optional["RunResult"] = None
    #: terminal failure under a ``skip`` policy (``exec_time`` is NaN);
    #: ``None`` for a successful rep — including one that succeeded
    #: after retries, which is bit-identical to a clean first run
    error: Optional[FailureRecord] = None
    #: attempts consumed (1 = clean first run)
    attempts: int = 1


def _execute_rep(
    context: "ResolvedContext",
    spec: "ExperimentSpec",
    noise: Optional["NoiseStack"],
    index: int,
) -> "RunResult":
    """Run repetition ``index`` on a prebuilt :class:`ResolvedContext`."""
    from repro.harness.experiment import run_resolved

    throttle_off = noise is not None and noise.disables_rt_throttle
    rng = np.random.default_rng(rep_seed(spec.seed, index))
    return run_resolved(
        context,
        rng,
        noise,
        rt_throttle=context.rt_throttle and not throttle_off,
        meta={"run": index, "spec": spec.label()},
    )


def run_one_rep(
    context: "ResolvedContext",
    spec: "ExperimentSpec",
    noise: Optional["NoiseStack"],
    index: int,
    need_runs: bool,
    policy: FaultPolicy,
    base_attempt: int = 0,
) -> RepResult:
    """Contained attempt loop for one repetition.

    Every attempt rebuilds the rep RNG from its original spawn key, so
    a success on attempt *k* is bit-identical to a clean first run.
    ``base_attempt`` counts prior *dispatches* of this rep (a chunk
    re-dispatched after a pool breakage, a job re-leased after a dead
    worker's lease expired), letting deterministic chaos injectors
    distinguish first attempts from recovery attempts.
    """
    started = time.perf_counter()
    local_attempt = 0
    while True:
        attempt = base_attempt + local_attempt
        local_attempt += 1
        try:
            chaos = get_chaos()
            if not _telemetry.enabled():
                # Disabled fast path: no span object, no attr dict.
                with rep_deadline(policy.timeout):
                    if chaos is not None:
                        chaos.rep_fault(spec.seed, index, attempt, policy.timeout)
                    result = _execute_rep(context, spec, noise, index)
            else:
                # The span wraps the deadline and any chaos injection, so
                # failed/timed-out attempts surface as error-tagged spans.
                with _telemetry.span(
                    "rep" if attempt == 0 else "retry",
                    spec=spec.label(),
                    rep=index,
                    attempt=attempt,
                ):
                    with rep_deadline(policy.timeout):
                        if chaos is not None:
                            chaos.rep_fault(spec.seed, index, attempt, policy.timeout)
                        result = _execute_rep(context, spec, noise, index)
            return RepResult(
                index=index,
                exec_time=result.exec_time,
                anomaly=result.anomaly,
                run=result if need_runs else None,
                attempts=local_attempt,
            )
        except Exception as exc:
            wall = time.perf_counter() - started
            if local_attempt <= policy.retries:
                _log.warning(
                    "rep %d of %s failed (attempt %d, %s: %s); retrying",
                    index,
                    spec.label(),
                    local_attempt,
                    type(exc).__name__,
                    exc,
                )
                delay = policy.backoff_delay(spec.seed, index, local_attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            record = FailureRecord.from_exception(index, "rep", exc, local_attempt, wall)
            if policy.on_failure == "skip":
                _log.warning(
                    "rep %d of %s failed terminally after %d attempt(s) (%s: %s); skipping",
                    index,
                    spec.label(),
                    local_attempt,
                    type(exc).__name__,
                    exc,
                )
                return RepResult(
                    index=index,
                    exec_time=float("nan"),
                    anomaly=None,
                    run=None,
                    error=record,
                    attempts=local_attempt,
                )
            if policy.on_failure == "raise" and local_attempt == 1:
                # Fail-fast default: the original exception, unchanged.
                raise
            raise RepExecutionError(
                f"rep {index} of {spec.label()} failed terminally after "
                f"{local_attempt} attempt(s) in pid {os.getpid()}: "
                f"{type(exc).__name__}: {exc}",
                record,
            ) from exc


# ----------------------------------------------------------------------
# chunk-level core
# ----------------------------------------------------------------------
class ChunkRunner:
    """Execute one chunk of rep indices, transport-agnostically.

    This is the seam between *what* runs (the contained per-rep attempt
    loop over a shared resolved context) and *how* inputs and outputs
    travel (process-pool pickles, shared-memory blocks, or the campaign
    service's job leases).  Both the in-process pool worker entry point
    and the service :class:`~repro.service.worker.Worker` consume the
    same instance, so a cell re-leased after a worker death replays
    byte-for-byte the code path an uninterrupted pool dispatch runs.
    """

    def run(
        self,
        spec: "ExperimentSpec",
        noise: Optional["NoiseStack"],
        indices,
        need_runs: bool = False,
        policy: Optional[FaultPolicy] = None,
        base_attempt: int = 0,
    ) -> list[RepResult]:
        """Run every index in ``indices``; results in index order.

        Raises whatever the policy lets escape (wrapped by the caller's
        transport shim into :class:`RepExecutionError` as needed).
        """
        policy = policy if policy is not None else DEFAULT_POLICY
        context = resolved_context(spec)
        return [
            run_one_rep(context, spec, noise, i, need_runs, policy, base_attempt)
            for i in indices
        ]


#: the shared runner instance every transport dispatches through
DEFAULT_RUNNER = ChunkRunner()
