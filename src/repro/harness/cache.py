"""On-disk result cache for experiment campaigns.

Every run is a deterministic function of its spec (seeds included) and
the attached noise stack, so results can be cached and shared across
table campaigns — Table 6 aggregates the same cells Tables 3–5 report,
and re-simulating them would double the benchmark wall-clock.

Cache keys are versioned (``_KEY_VERSION``) and source-agnostic: the
noise part of the key is the canonical serialized
:class:`~repro.noise.base.NoiseStack`, so any registered source — or
composition of sources — keys identically whether it arrived via
``spec.noise``, the ``noise=`` parameter, or the deprecated
``noise_config`` alias.  Entries written before the current key version
miss cleanly (the version is hashed into the key **and** stored in the
entry): stale files found under a current key are evicted and counted
in :meth:`ResultCache.stats`.

The cache lives in ``$REPRO_CACHE_DIR`` (default ``.repro_cache/`` in
the working directory); delete the directory to invalidate, or set
``REPRO_NO_CACHE=1`` to bypass entirely.  Corrupt entries (truncated
writes, stale schemas) are evicted, logged, counted in
:meth:`ResultCache.stats`, and transparently re-run.

Durability: entries are written atomically (same-directory temp file +
``os.replace``), so a crash mid-write can never leave a torn entry
under a valid key — the torn-entry salvage path exists for files
damaged *after* the write (disk faults, the deterministic chaos
harness's ``corrupt`` profile).  Partial results (a ``skip``
fault policy left NaN reps) are never stored under the primary key;
they land in a ``<key>.partial.json`` quarantine envelope — failure
records included — and the cell re-runs next time.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.harness.adaptive import ADAPTIVE_FIXTURE_VERSION, AdaptivePolicy
from repro.harness.experiment import ExperimentSpec, ResultSet, run_experiment
from repro.harness.faults import FailureRecord, atomic_write_text
from repro.noise.base import NoiseStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.executor import Executor
    from repro.harness.experiment import NoiseLike
    from repro.harness.faults import CampaignJournal, FaultPolicy
    from repro.sim.machine import RunResult

__all__ = ["ResultCache", "cached_experiment"]

_log = logging.getLogger(__name__)

#: bump when simulator semantics change enough to invalidate old runs
_CACHE_SCHEMA = 5

#: bump when the *key payload shape* changes (e.g. the noise part moved
#: from a bespoke NoiseConfig JSON to the unified stack serialization);
#: hashed into every key and stored in every entry so pre-refactor
#: entries can never collide with, or masquerade as, current ones
_KEY_VERSION = 2

#: adaptive results key under a distinct versioned block: an
#: adaptively stopped cell carries fewer reps than its fixed-rep twin
#: (same estimate, lower precision), so the two must never share a key
#: — and a change to the stop rule must invalidate adaptive entries
#: without touching fixed-rep ones
_ADAPTIVE_KEY_VERSION = ADAPTIVE_FIXTURE_VERSION


class ResultCache:
    """Content-addressed store of experiment execution times.

    ``executor`` sets the default execution backend for cache misses;
    per-call overrides win.  The cache is safe to share between threads
    dispatching independent cells (distinct keys write distinct files;
    counters are lock-protected).
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        executor: Optional["Executor"] = None,
        policy: Optional["FaultPolicy"] = None,
        journal: Optional["CampaignJournal"] = None,
        adaptive: Optional["AdaptivePolicy"] = None,
    ):
        if root is None:
            root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
        self.root = Path(root)
        self.enabled = os.environ.get("REPRO_NO_CACHE", "") != "1"
        self.executor = executor
        #: default fault policy for cache misses; per-call overrides win
        self.policy = policy
        #: default adaptive-rep policy applied to specs that carry none;
        #: unlike ``policy`` it *does* enter the cache key (sample sizes
        #: differ), under the distinct adaptive key block
        self.adaptive = adaptive
        #: optional campaign checkpoint journal; completed cells are
        #: recorded by key, completed failures by record
        self.journal = journal
        #: the telemetry registry entry backing the counters; the
        #: hits/misses/... attributes and stats() are thin views over it
        self._counters = _telemetry.new_group("cache")

    # read-only counter views (the historical public attributes)
    @property
    def hits(self) -> int:
        return int(self._counters.get("hits"))

    @property
    def misses(self) -> int:
        return int(self._counters.get("misses"))

    @property
    def corrupt(self) -> int:
        return int(self._counters.get("corrupt"))

    @property
    def stale(self) -> int:
        return int(self._counters.get("stale"))

    @property
    def partial(self) -> int:
        return int(self._counters.get("partial"))

    # ------------------------------------------------------------------
    # envelope integrity: sha256 sealed at publish, verified on read
    # ------------------------------------------------------------------
    @staticmethod
    def _seal(payload: dict) -> str:
        """Serialise ``payload`` with a sha256 of its own JSON appended
        as the last field.  Bit-flips anywhere in the body — including
        ones that keep the JSON parseable — fail verification; the seal
        piggybacks on JSON's exact float round-trip, so sealing changes
        no value bytes."""
        body = json.dumps(payload)
        sealed = dict(payload)
        sealed["sha256"] = hashlib.sha256(body.encode()).hexdigest()
        return json.dumps(sealed)

    @staticmethod
    def _verify_sealed(data: dict) -> bool:
        """Check a parsed envelope against its recorded seal.  Entries
        written before sealing carry no ``sha256`` field and pass (their
        torn-file protection is the JSON parse itself)."""
        recorded = data.get("sha256")
        if recorded is None:
            return True
        body = {k: v for k, v in data.items() if k != "sha256"}
        return hashlib.sha256(json.dumps(body).encode()).hexdigest() == recorded

    def _quarantine_corrupt(self, path: Path, label: str) -> None:
        """Move an integrity-failed entry aside to ``<name>.corrupt``
        (preserved for post-mortems, out of the primary keyspace) and
        count it.  The caller reports a miss, so the cell transparently
        re-simulates."""
        self._count("integrity_quarantined")
        _log.warning(
            "cache entry %s failed sha256 verification for %s; "
            "quarantining to .corrupt and re-running",
            path.name,
            label,
        )
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _key(spec: ExperimentSpec, noise: Optional[NoiseStack], reps: int) -> str:
        payload = {
            "key_version": _KEY_VERSION,
            "schema": _CACHE_SCHEMA,
            "spec": {
                "platform": spec.platform,
                "workload": spec.workload,
                "model": spec.model,
                "strategy": spec.strategy,
                "use_smt": spec.use_smt,
                "seed": spec.seed,
                "tracing": spec.tracing,
                "runlevel3": spec.runlevel3,
                "rt_throttle": spec.rt_throttle,
                "anomaly_prob": spec.anomaly_prob,
                "n_threads": spec.n_threads,
                "workload_params": spec.workload_params,
            },
            "reps": reps,
            "noise": noise.to_dict() if noise is not None else None,
        }
        if spec.adaptive is not None:
            # Distinct key block (absent entirely for fixed-rep cells,
            # so pre-adaptive keys are untouched): the policy and the
            # stop-rule version both shape the stored sample.
            payload["adaptive"] = spec.adaptive.to_dict()
            payload["adaptive_version"] = _ADAPTIVE_KEY_VERSION
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def entry_path(self, key: str) -> Path:
        """Where ``key``'s primary envelope lives (exists only after a
        store).  Public so byte-level comparisons — the service's
        sharded-merge tests, CI's bit-identity diffs — can address the
        exact artefact instead of reconstructing the layout."""
        return self._path(key)

    def has_entry(self, key: str) -> bool:
        """Whether a (possibly stale/torn) entry exists for ``key``."""
        return self.enabled and self._path(key).exists()

    def resolve_cell(
        self, spec: ExperimentSpec, noise: "NoiseLike" = None,
        noise_config: "NoiseLike" = None,
    ) -> tuple[ExperimentSpec, Optional[NoiseStack], str]:
        """Normalise a cell to ``(spec, stack, key)`` — the cache identity.

        Applies exactly the canonicalisation :meth:`get_or_run` uses
        before keying: noise coercion (argument wins over ``spec.noise``),
        environment-defaulted rep counts pinned into the spec, and
        inheritance of the cache-level adaptive policy.  The campaign
        service calls this at submit time so a queued job's key equals
        the key the executing worker (or any in-process run) computes.
        """
        stack = NoiseStack.coerce(noise if noise is not None else noise_config)
        if stack is None:
            stack = spec.noise
        injecting = stack is not None and bool(stack)
        reps = spec.resolved_reps(injecting)
        spec = spec.with_(reps=reps)
        if spec.adaptive is None and self.adaptive is not None:
            spec = spec.with_(adaptive=self.adaptive)
        return spec, stack, self._key(spec, stack, reps)

    # ------------------------------------------------------------------
    def load_entry(self, key: str, spec: ExperimentSpec) -> Optional[ResultSet]:
        """Load ``key``'s entry, or ``None`` on miss.

        Handles the two invalid-entry shapes in place: stale entries
        (older ``key_version``) and torn/corrupt files are evicted,
        counted, and reported as a miss.  ``spec`` must already be
        rep-resolved (see :meth:`resolve_cell`); it is attached to the
        returned :class:`ResultSet` verbatim.
        """
        path = self._path(key)
        if not (self.enabled and path.exists()):
            return None
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = None
        if data is not None and not self._verify_sealed(data):
            self._quarantine_corrupt(path, spec.label())
            return None
        if data is not None and data.get("key_version") != _KEY_VERSION:
            self._count("stale")
            _log.warning(
                "evicting stale cache entry %s (key_version %s != %s) for %s",
                path.name,
                data.get("key_version"),
                _KEY_VERSION,
                spec.label(),
            )
            path.unlink(missing_ok=True)
            return None
        if data is not None:
            try:
                return ResultSet(
                    spec=spec,
                    times=np.asarray(data["times"]),
                    anomalies=data["anomalies"],
                    injected=data["injected"],
                    failures=[
                        FailureRecord.from_dict(f) for f in data.get("failures", [])
                    ],
                    adaptive=data.get("adaptive"),
                )
            except KeyError:
                pass
        self._count("corrupt")
        _log.warning(
            "salvaging torn/corrupt cache entry %s for %s (evict + re-run)",
            path.name,
            spec.label(),
        )
        path.unlink(missing_ok=True)
        return None

    def store_entry(
        self, key: str, spec: ExperimentSpec, stack: Optional[NoiseStack], rs: ResultSet
    ) -> bool:
        """Write a computed result under ``key`` (atomic).

        Partial results (a ``skip`` policy left failed reps) are
        quarantined to ``<key>.partial.json`` instead and ``False`` is
        returned — the primary keyspace only ever holds complete cells.
        JSON float round-trip is exact (``repr`` shortest-round-trip),
        so a later hit is bit-identical to this result.
        """
        envelope = self._seal(
            {
                "key_version": _KEY_VERSION,
                "times": rs.times.tolist(),
                "anomalies": rs.anomalies,
                "injected": rs.injected,
                "label": spec.label(),
                "noise": stack.kinds() if stack is not None else None,
                "failures": [f.to_dict() for f in rs.failures],
                "adaptive": rs.adaptive,
            }
        )
        if rs.failures:
            self._count("partial")
            if self.enabled:
                atomic_write_text(self.root / f"{key}.partial.json", envelope)
            return False
        if self.enabled:
            atomic_write_text(self._path(key), envelope)
        return True

    def stats(self) -> dict:
        """Counters: ``hits``, ``misses``, ``corrupt``, ``stale``,
        ``partial``, ``integrity_quarantined``.  ``corrupt`` counts torn
        entries salvaged (evicted on discovery and transparently
        re-run); ``stale`` counts key-version evictions; ``partial``
        counts results quarantined instead of cached because a skip
        policy left failed reps; ``integrity_quarantined`` counts
        entries whose recorded sha256 seal failed verification (moved
        aside to ``.corrupt`` and re-run).

        The counts live in the telemetry counter registry; this view
        preserves the pre-telemetry return shape exactly."""
        counts = self._counters.as_dict()
        return {
            "hits": int(counts.get("hits", 0)),
            "misses": int(counts.get("misses", 0)),
            "corrupt": int(counts.get("corrupt", 0)),
            "stale": int(counts.get("stale", 0)),
            "partial": int(counts.get("partial", 0)),
            "integrity_quarantined": int(counts.get("integrity_quarantined", 0)),
        }

    def _count(self, counter: str) -> None:
        self._counters.inc(counter)

    # ------------------------------------------------------------------
    def get_or_run(
        self,
        spec: ExperimentSpec,
        noise_config: "NoiseLike" = None,
        executor: Optional["Executor"] = None,
        on_run: Optional[Callable[[int, "RunResult"], None]] = None,
        noise: "NoiseLike" = None,
        policy: Optional["FaultPolicy"] = None,
    ) -> ResultSet:
        """Return cached results or run the experiment and store them.

        ``noise`` accepts any registered source, a
        :class:`~repro.noise.base.NoiseStack`, or a legacy config type
        (``noise_config`` is the pre-registry alias); it defaults to
        ``spec.noise``.

        ``on_run`` consumers are incompatible with caching: a cache hit
        replays no runs, so the consumer would be silently skipped.
        Passing one while the cache is enabled raises ``ValueError``
        (with ``REPRO_NO_CACHE=1`` every call re-runs, so live
        consumption is honest again and allowed through).

        ``policy`` governs fault containment on a miss (default:
        ``self.policy``).  It never enters the cache key — a retried or
        recovered run is bit-identical to a clean one, so the same cell
        keys identically under any policy.  Partial results (skipped
        reps) are returned but quarantined to ``<key>.partial.json``
        rather than cached, so the cell re-runs on the next call.

        Adaptive early stopping is different: a spec that carries an
        :class:`~repro.harness.adaptive.AdaptivePolicy` (or inherits
        ``self.adaptive``) stores a *smaller sample* of the same cell,
        so it keys under a distinct versioned key block and can never
        collide with — or masquerade as — the fixed-rep entry.
        """
        if on_run is not None and self.enabled:
            raise ValueError(
                "on_run consumers cannot be combined with a result cache: "
                "cache hits replay no runs, so the consumer would silently "
                "observe nothing. Call run_experiment() directly (trace "
                "collection does), or disable the cache with REPRO_NO_CACHE=1."
            )
        spec, stack, key = self.resolve_cell(spec, noise, noise_config)
        t0 = time.perf_counter()
        rs = self.load_entry(key, spec)
        if rs is not None:
            self._count("hits")
            if self.journal is not None:
                # attempt 0 marks a cache hit: no simulation ran
                self.journal.record_done(
                    key,
                    label=spec.label(),
                    duration_s=time.perf_counter() - t0,
                    attempt=0,
                )
            return rs
        self._count("misses")
        rs = self._run_and_store(spec, stack, key, executor, on_run, policy, t0)
        return rs

    def _run_and_store(
        self, spec, stack, key, executor, on_run, policy, t0
    ) -> ResultSet:
        """The miss path: simulate, persist, journal.

        Split out so the concurrently-safe shared store can serialise
        exactly this section under a per-key lock (and re-check for an
        entry written by a racing process before running).
        """
        rs = run_experiment(
            spec,
            noise=stack,
            on_run=on_run,
            executor=executor if executor is not None else self.executor,
            policy=policy if policy is not None else self.policy,
        )
        if not self.store_entry(key, spec, stack, rs):
            # Partial results never enter the primary keyspace: the
            # quarantine envelope keeps the failure records for
            # post-mortems while the cell stays re-runnable.
            if self.journal is not None:
                duration = time.perf_counter() - t0
                for record in rs.failures:
                    self.journal.record_failure(
                        key, record, label=spec.label(), duration_s=duration
                    )
            return rs
        if self.journal is not None:
            self.journal.record_done(
                key,
                label=spec.label(),
                duration_s=time.perf_counter() - t0,
                attempt=1,
            )
        return rs


_default_cache: Optional[ResultCache] = None


def cached_experiment(
    spec: ExperimentSpec,
    noise_config: "NoiseLike" = None,
    executor: Optional["Executor"] = None,
    noise: "NoiseLike" = None,
) -> ResultSet:
    """Module-level convenience using a process-wide cache.

    Contract: results may come from disk, in which case **no runs are
    replayed** — there is deliberately no ``on_run`` parameter here.
    Consumers that must observe live runs (e.g. trace collection) go
    through :func:`~repro.harness.experiment.run_experiment`;
    :meth:`ResultCache.get_or_run` rejects an ``on_run`` consumer with
    ``ValueError`` whenever caching is enabled.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache.get_or_run(spec, noise_config, executor=executor, noise=noise)
