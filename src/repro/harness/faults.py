"""Fault containment for experiment execution.

Long campaigns (the paper's ~1000-rep trace collections and multi-cell
mitigation tables) must survive partial failure: a crashed worker, a
hung repetition, or a torn cache file should cost one retry — not the
whole run.  This module defines the policy and record types the rest of
the harness shares:

* :class:`FaultPolicy` — what to do when a repetition fails: per-rep
  timeout, bounded retries with exponential backoff (jitter drawn
  deterministically from the experiment's ``SeedSequence``, so recovery
  behaviour is as reproducible as the experiment itself), and a
  terminal ``on_failure`` action (``raise`` / ``skip`` / ``retry``).
* :class:`FailureRecord` — a structured, JSON-serialisable description
  of one failure (rep index, phase, exception class, traceback digest,
  attempt count, wall time) carried on :class:`~repro.harness.executor.
  RepResult` / :class:`~repro.harness.experiment.ResultSet` and written
  into quarantined partial-result envelopes.
* :class:`RepExecutionError` — the picklable exception that crosses the
  worker boundary naming the spec, the rep indices of the chunk, and
  the worker pid instead of a bare traceback.
* :class:`CampaignJournal` — an append-only JSONL checkpoint of
  completed campaign cells (keyed by the result cache's spec/noise
  hashes) enabling ``repro-noise campaign --resume``.

Determinism contract: a retried repetition re-runs from its original
per-rep ``SeedSequence`` spawn key (the rep RNG is rebuilt from scratch
on every attempt), so a rep that succeeds on attempt *k* is bit-identical
to one that succeeded on attempt 0.  Only the backoff *delays* consume
randomness, and they draw from a dedicated spawn branch that never
touches the rep's own stream.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "FAILURE_ACTIONS",
    "FaultPolicy",
    "FailureRecord",
    "RepExecutionError",
    "RepTimeoutError",
    "rep_deadline",
    "CampaignJournal",
    "atomic_write_text",
]

_log = logging.getLogger(__name__)

#: terminal actions a policy may take when a repetition keeps failing
FAILURE_ACTIONS = ("raise", "skip", "retry")

#: spawn-key tag separating backoff jitter from every other consumer of
#: the experiment's SeedSequence (rep streams use plain ``(index,)``)
_BACKOFF_SPAWN_TAG = 0xFA017


class RepTimeoutError(Exception):
    """A repetition exceeded its :attr:`FaultPolicy.timeout` budget."""


@dataclass(frozen=True)
class FailureRecord:
    """Structured description of one contained failure.

    ``phase`` names where the failure occurred (``rep`` for a single
    repetition, ``chunk`` for a whole dispatch chunk lost to a broken
    pool, ``cell`` for a campaign cell).  ``traceback_digest`` is a
    short sha256 of the formatted traceback — enough to correlate
    identical failures across reps without shipping kilobytes of text
    through result envelopes.
    """

    index: int
    phase: str
    error: str
    message: str
    traceback_digest: str
    attempts: int
    wall_time: float

    @classmethod
    def from_exception(
        cls,
        index: int,
        phase: str,
        exc: BaseException,
        attempts: int,
        wall_time: float,
    ) -> "FailureRecord":
        """Distil an exception (plus context) into a record."""
        tb = traceback.format_exc()
        return cls(
            index=index,
            phase=phase,
            error=type(exc).__name__,
            message=str(exc)[:500],
            traceback_digest=hashlib.sha256(tb.encode()).hexdigest()[:16],
            attempts=attempts,
            wall_time=float(wall_time),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "index": self.index,
            "phase": self.phase,
            "error": self.error,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            index=int(data["index"]),
            phase=str(data["phase"]),
            error=str(data["error"]),
            message=str(data["message"]),
            traceback_digest=str(data["traceback_digest"]),
            attempts=int(data["attempts"]),
            wall_time=float(data["wall_time"]),
        )


class RepExecutionError(RuntimeError):
    """A repetition (or chunk) failed terminally under the fault policy.

    Raised instead of the worker's bare exception so the parent sees
    the spec label, the rep indices involved, and the worker pid.  The
    attached :class:`FailureRecord` survives pickling across the
    process boundary.
    """

    def __init__(self, message: str, record: Optional[FailureRecord] = None):
        super().__init__(message)
        self.record = record

    def __reduce__(self):
        return (type(self), (self.args[0], self.record))


@dataclass(frozen=True)
class FaultPolicy:
    """How the harness reacts when a repetition fails.

    ``on_failure`` selects the terminal action:

    * ``"raise"`` (default) — fail fast, no retries: exactly the
      pre-fault-tolerance behaviour.
    * ``"retry"`` — re-run the rep up to ``max_retries`` times (with
      exponential backoff and deterministic jitter); if it still fails,
      raise.
    * ``"skip"`` — retry like ``"retry"``, but when retries are
      exhausted record a :class:`FailureRecord`, mark the rep's time as
      NaN, and continue with the remaining reps (partial results).

    ``timeout`` bounds one repetition's wall time in seconds.  It is
    enforced with ``SIGALRM`` where that is possible (POSIX, main
    thread — which covers pool workers and plain serial runs); in other
    contexts the parallel executor's per-chunk deadline acts as the
    backstop for hung workers.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    on_failure: str = "raise"
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.on_failure not in FAILURE_ACTIONS:
            raise ValueError(
                f"on_failure must be one of {FAILURE_ACTIONS}, got {self.on_failure!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0 or self.backoff_max < 0:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")

    # ------------------------------------------------------------------
    @property
    def retries(self) -> int:
        """Retries actually granted (``raise`` never retries)."""
        return 0 if self.on_failure == "raise" else self.max_retries

    def backoff_delay(self, seed: int, index: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of rep ``index``.

        Exponential in the attempt number, jittered by a uniform factor
        in ``[0.5, 1.5)`` drawn from a dedicated spawn branch of the
        experiment's SeedSequence — deterministic per (seed, rep,
        attempt), and independent of the rep's own stream.
        """
        if self.backoff_base <= 0:
            return 0.0
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(index, _BACKOFF_SPAWN_TAG, attempt))
        )
        raw = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        return float(min(self.backoff_max, raw) * (0.5 + rng.random()))

    def chunk_deadline(self, chunk_len: int) -> Optional[float]:
        """Parent-side wall-time budget for one dispatched chunk.

        Generous by construction — every rep may exhaust its timeout on
        every attempt, plus backoff and scheduling slack — because it is
        the backstop for *hung* workers, not the primary enforcement.
        """
        if self.timeout is None:
            return None
        per_rep = self.timeout * (1 + self.retries) + self.backoff_max * self.retries
        return per_rep * max(1, chunk_len) + 5.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (diagnostics / journal header)."""
        return {
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "on_failure": self.on_failure,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
        }


#: the default policy: identical behaviour to the pre-fault-tolerance
#: harness (fail fast, no timeout)
DEFAULT_POLICY = FaultPolicy()


# ----------------------------------------------------------------------
# per-rep timeout enforcement
# ----------------------------------------------------------------------
@contextmanager
def rep_deadline(timeout: Optional[float]):
    """Enforce a wall-time budget on the enclosed block via ``SIGALRM``.

    Active only when a timeout is set, the platform has ``setitimer``,
    and we are on the main thread (signal handlers cannot be installed
    elsewhere).  Pool workers execute chunks on their main thread, so
    per-rep timeouts hold wherever reps actually run hot; campaign
    threads fall back to the executor's chunk-level deadline.
    """
    if (
        timeout is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise RepTimeoutError(f"repetition exceeded its {timeout:.3f}s budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# atomic file writes (shared by cache, config store, and the journal)
# ----------------------------------------------------------------------
def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without ever exposing a torn file.

    The payload lands in a same-directory temp file first and is moved
    into place with ``os.replace`` (atomic on POSIX), so a crash mid-
    write leaves either the old content or nothing — never a truncated
    entry.  The deterministic chaos harness may corrupt the *result*
    afterwards (simulating a torn write from a previous crash) to
    exercise salvage paths.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    from repro.harness.chaos import get_chaos

    chaos = get_chaos()
    if chaos is not None:
        chaos.maybe_corrupt_file(path)


# ----------------------------------------------------------------------
# campaign checkpoint journal
# ----------------------------------------------------------------------
@dataclass
class CampaignJournal:
    """Append-only JSONL checkpoint of completed campaign cells.

    One line per completed cell, keyed by the result cache's existing
    spec/noise hash, so ``repro-noise campaign --resume JOURNAL`` can
    tell exactly which cells an interrupted campaign already finished.
    Lines are written with a single buffered ``write`` + flush + fsync
    (an appended line either lands whole or, at worst, leaves one torn
    *last* line, which :meth:`load` drops), and failures are journaled
    too, so a post-mortem has the campaign's full fault history.
    """

    path: Path
    completed: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self._lock = threading.Lock()
        if self.path.exists():
            self.load()

    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)read the journal; returns the number of completed cells.

        Tolerates a torn final line (the one failure mode an append-only
        journal admits) by dropping anything that does not parse.
        """
        done = set()
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            lines = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                _log.warning("dropping torn journal line in %s", self.path)
                continue
            if entry.get("status") == "done" and isinstance(entry.get("key"), str):
                done.add(entry["key"])
        self.completed = done
        return len(done)

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    def record_done(
        self,
        key: str,
        duration_s: Optional[float] = None,
        attempt: Optional[int] = None,
        **meta,
    ) -> None:
        """Checkpoint one completed cell (idempotent per key).

        ``duration_s`` is the cell's wall time; ``attempt`` is how the
        result was obtained (``0`` = cache hit, ``1`` = fresh run).
        Both are optional so pre-telemetry callers — and old journals —
        stay valid.
        """
        if key in self.completed:
            return
        self.completed.add(key)
        entry = {"status": "done", "key": key, **meta}
        if duration_s is not None:
            entry["duration_s"] = round(float(duration_s), 6)
        if attempt is not None:
            entry["attempt"] = int(attempt)
        self._append(entry)

    def record_failure(
        self,
        key: str,
        record: FailureRecord,
        duration_s: Optional[float] = None,
        **meta,
    ) -> None:
        """Journal a contained failure (the cell stays incomplete)."""
        entry = {
            "status": "failed",
            "key": key,
            "failure": record.to_dict(),
            "attempt": record.attempts,
            **meta,
        }
        if duration_s is not None:
            entry["duration_s"] = round(float(duration_s), 6)
        self._append(entry)

    def is_done(self, key: str) -> bool:
        """Whether ``key`` was checkpointed as completed."""
        return key in self.completed

    def overhead(self) -> dict:
        """Cumulative time/retry accounting across the journal's history.

        Resumed campaigns append to the same file, so this scan reports
        the *total* cost of getting the campaign to its current state:
        wall time journaled for completed cells (split into cache hits
        vs fresh runs via the ``attempt`` field), time burned on
        journaled failures, and retry attempts recorded by failure
        lines.  Lines written by pre-telemetry versions lack
        ``duration_s``/``attempt`` and are counted as cells but
        contribute no time — the reader is deliberately tolerant.
        """
        out = {
            "cells_done": 0,
            "cells_failed": 0,
            "done_s": 0.0,
            "hit_s": 0.0,
            "run_s": 0.0,
            "failed_s": 0.0,
            "retry_attempts": 0,
        }
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict):
                continue
            status = entry.get("status")
            try:
                duration = float(entry.get("duration_s", 0.0) or 0.0)
            except (TypeError, ValueError):
                duration = 0.0
            if status == "done":
                out["cells_done"] += 1
                out["done_s"] += duration
                if entry.get("attempt") == 0:
                    out["hit_s"] += duration
                else:
                    out["run_s"] += duration
            elif status == "failed":
                out["cells_failed"] += 1
                out["failed_s"] += duration
                attempts = entry.get("attempt")
                if attempts is None:
                    attempts = (entry.get("failure") or {}).get("attempts")
                try:
                    out["retry_attempts"] += max(0, int(attempts) - 1)
                except (TypeError, ValueError):
                    pass
        return out

    def verify_against_cache(self, cache) -> tuple[int, int]:
        """Count journaled cells whose cache entry is (present, missing).

        A missing entry is not an error — the cell simply re-runs — but
        the count tells a resuming user how much work actually remains.
        """
        present = missing = 0
        for key in self.completed:
            if cache.has_entry(key):
                present += 1
            else:
                missing += 1
        return present, missing
