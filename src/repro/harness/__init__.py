"""Experiment harness: specs, runners, statistics, and paper tables."""

from repro.harness.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    resolve_jobs,
)
from repro.harness.experiment import ExperimentSpec, ResultSet, run_experiment, run_once
from repro.harness.faults import (
    CampaignJournal,
    FailureRecord,
    FaultPolicy,
    RepExecutionError,
    RepTimeoutError,
)
from repro.harness.stats import summarize, Summary

__all__ = [
    "ExperimentSpec",
    "ResultSet",
    "run_experiment",
    "run_once",
    "summarize",
    "Summary",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "resolve_jobs",
    "FaultPolicy",
    "FailureRecord",
    "RepExecutionError",
    "RepTimeoutError",
    "CampaignJournal",
]
