"""Parameter sweeps over experiment specs.

A small grid-runner for exploratory studies beyond the pre-canned
campaigns: vary any subset of :class:`ExperimentSpec` fields, run each
combination (cached), and collect a tidy result table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro import telemetry as _telemetry
from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec, ResultSet
from repro.harness.report import TableBuilder
from repro.harness.stats import Summary

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.adaptive import AdaptivePolicy
    from repro.harness.executor import Executor
    from repro.harness.experiment import NoiseLike
    from repro.harness.faults import FaultPolicy

__all__ = ["SweepResult", "sweep"]

_SWEEPABLE = {
    "platform",
    "workload",
    "model",
    "strategy",
    "use_smt",
    "seed",
    "runlevel3",
    "anomaly_prob",
    "n_threads",
}


@dataclass
class SweepResult:
    """Outcome of one grid: axis names, points, and per-point results."""

    axes: tuple[str, ...]
    points: list[tuple]
    results: list[ResultSet]

    def __len__(self) -> int:
        return len(self.points)

    def summaries(self) -> list[Summary]:
        """Per-point statistical summaries."""
        return [r.summary for r in self.results]

    def best(self, key: str = "mean") -> tuple[tuple, ResultSet]:
        """The point minimising ``key`` ('mean', 'sd', 'cov', 'maximum')."""
        idx = min(
            range(len(self.results)), key=lambda i: getattr(self.results[i].summary, key)
        )
        return self.points[idx], self.results[idx]

    def render(self, title: str = "sweep") -> str:
        """Tidy table: one row per grid point."""
        tb = TableBuilder([*self.axes, "mean (s)", "sd (ms)", "max (s)"])
        for point, rs in zip(self.points, self.results):
            s = rs.summary
            tb.add_row(*point, f"{s.mean:.4f}", f"{s.sd * 1e3:.2f}", f"{s.maximum:.4f}")
        return f"{title}\n{tb.render()}"


def sweep(
    base: ExperimentSpec,
    noise_config: "NoiseLike" = None,
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
    noise: "NoiseLike" = None,
    policy: Optional["FaultPolicy"] = None,
    adaptive: Optional["AdaptivePolicy"] = None,
    service=None,
    shard: Optional[int] = None,
    **axes: Sequence,
) -> SweepResult:
    """Run the cartesian grid of ``axes`` values over ``base``.

    Every grid point replays the same ``noise`` (any registered
    source, a :class:`~repro.noise.base.NoiseStack`, or a legacy
    config; ``noise_config`` is the pre-registry alias).

    ``executor`` selects the execution backend for cache misses
    (default: ``REPRO_JOBS``); grid points themselves run in order so
    the result table is stable.

    ``service`` (a :class:`~repro.service.ServiceClient`) routes the
    whole grid through the campaign service instead: every point is
    queued up front so workers pipeline across cells, then the table
    is collected from the shared store.  The result is bit-identical
    to the in-process path — same enumeration order, same content
    keys, same envelope round-trip.  ``shard`` (service path only)
    additionally splits cells above the threshold into chunk sub-jobs
    so several workers chew one cell concurrently — still
    bit-identical, because rep seeding is positional.

    ``policy`` contains per-point rep failures
    (:class:`~repro.harness.faults.FaultPolicy`); under ``skip`` a grid
    point may return a partial :class:`ResultSet` whose statistics
    aggregate its completed reps only.

    ``adaptive`` applies an
    :class:`~repro.harness.adaptive.AdaptivePolicy` to every grid
    point (points that already carry one keep theirs): each cell stops
    as soon as its bootstrap CI is tight enough, and caches under the
    distinct adaptive key block.

    Example::

        sweep(base, strategy=("Rm", "TP"), model=("omp", "sycl"))
    """
    if not axes:
        raise ValueError("sweep needs at least one axis")
    unknown = set(axes) - _SWEEPABLE
    if unknown:
        raise ValueError(f"cannot sweep over: {sorted(unknown)} (allowed: {sorted(_SWEEPABLE)})")
    if adaptive is not None and base.adaptive is None:
        base = base.with_(adaptive=adaptive)
    if noise is None:
        noise = noise_config
    if service is not None:
        return service.run_sweep(base, noise=noise, shard=shard, **axes)
    cache = cache if cache is not None else ResultCache()
    names = tuple(axes)
    combos = list(itertools.product(*(axes[n] for n in names)))
    points: list[tuple] = []
    results: list[ResultSet] = []
    with _telemetry.span("sweep", axes=",".join(names), points=len(combos)):
        for combo in combos:
            spec = base.with_(**dict(zip(names, combo)))
            points.append(combo)
            results.append(
                cache.get_or_run(spec, noise=noise, executor=executor, policy=policy)
            )
    return SweepResult(axes=names, points=points, results=results)
