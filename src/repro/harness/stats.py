"""Run-to-run statistics used throughout the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "relative_change", "outlier_mask"]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one experiment's execution times."""

    n: int
    mean: float
    sd: float
    cov: float
    minimum: float
    maximum: float
    median: float
    p95: float
    p99: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6f}s sd={self.sd * 1e3:.3f}ms "
            f"cov={self.cov * 100:.2f}% max={self.maximum:.6f}s"
        )


def summarize(times: Sequence[float]) -> Summary:
    """Summary statistics; sd is the sample standard deviation."""
    arr = np.asarray(times, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize zero runs")
    if (arr <= 0).any():
        raise ValueError("non-positive execution time in sample")
    mean = float(arr.mean())
    sd = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=mean,
        sd=sd,
        cov=sd / mean if mean > 0 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
    )


def relative_change(value: float, baseline: float) -> float:
    """Percentage change relative to a baseline (paper's Δ% columns)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive: {baseline!r}")
    return (value - baseline) / baseline * 100.0


def outlier_mask(times: Sequence[float], k: float = 3.0) -> np.ndarray:
    """Boolean mask of runs more than ``k`` sample-sd above the mean."""
    arr = np.asarray(times, dtype=np.float64)
    if arr.size < 2:
        return np.zeros(arr.size, dtype=bool)
    return arr > arr.mean() + k * arr.std(ddof=1)
