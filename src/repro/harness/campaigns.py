"""Pre-canned campaigns regenerating every table and figure.

Each ``table*``/``figure*`` function reproduces one artefact of the
paper's evaluation and returns a result object with the raw data plus a
``render()`` method producing a paper-style text table.  All runs go
through the on-disk :class:`~repro.harness.cache.ResultCache`, so
campaigns that share cells (Table 6 aggregates Tables 3–5) cost nothing
extra, and re-running a benchmark after an interrupted session resumes
where it stopped.

Noise configurations are also cached: collection is the expensive stage
(the paper traced 1000 runs per configuration), and configs #1/#2 of a
platform/workload pair are shared by every row of that pair's table.

Repetition counts honour ``REPRO_BASELINE_REPS`` / ``REPRO_INJECT_REPS``
/ ``REPRO_COLLECT_REPS``; see EXPERIMENTS.md for the scaled-down
defaults used in CI versus the paper's 1000/200.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import telemetry as _telemetry
from repro.core.accuracy import signed_replication_error
from repro.core.collection import collect_traces
from repro.core.config import NoiseConfig, generate_config
from repro.core.merge import MergeStrategy
from repro.harness.adaptive import AdaptivePolicy
from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec
from repro.harness.faults import (
    CampaignJournal,
    FailureRecord,
    FaultPolicy,
    atomic_write_text,
)
from repro.harness import paper_reference as paper
from repro.harness.report import InjectionRow, TableBuilder, render_injection_table, render_series_figure
from repro.harness.stats import summarize
from repro.mitigation.strategies import STRATEGY_NAMES

__all__ = [
    "CampaignSettings",
    "default_settings",
    "table1",
    "table2",
    "injection_table",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure1",
    "figure2",
    "merge_ablation",
    "runlevel3_study",
]

_WORKLOADS = ("nbody", "babelstream", "minife")


def _stable_hash(*parts) -> int:
    return zlib.crc32("|".join(str(p) for p in parts).encode()) & 0x7FFFFF


def _traced_campaign(fn):
    """Wrap a campaign entry point in a root ``campaign`` span.

    The span is the top of the timeline hierarchy the trace exporters
    render (campaign → cell → experiment → chunk → rep); when telemetry
    is disabled the wrapper adds one branch and nothing else.
    """

    @functools.wraps(fn)
    def wrapped(*args, **kwargs):
        if not _telemetry.enabled():
            return fn(*args, **kwargs)
        with _telemetry.span("campaign", target=fn.__name__):
            return fn(*args, **kwargs)

    return wrapped


@dataclass
class CampaignSettings:
    """Shared knobs for all campaigns.

    ``jobs`` selects the execution backend for every experiment the
    campaign runs (``None`` → ``REPRO_JOBS``; ``0`` → one worker per
    CPU).  With more than one worker, campaigns additionally dispatch
    independent table cells concurrently through :meth:`map_cells` —
    cells share the warm process pool, so a cell whose chunks are
    draining no longer leaves workers idle.  Results stay bit-identical
    to a serial campaign: per-rep seeding is index-based and cells are
    collected in submission order.

    ``fault_policy`` contains per-rep failures (timeouts, retries with
    deterministic backoff, ``skip`` partial results) for every cell the
    campaign runs; ``journal`` checkpoints completed cells to a JSONL
    file so an interrupted campaign can be resumed with
    ``repro-noise campaign --resume`` (completed cells are skipped via
    the cache; the journal records exactly which those are, plus every
    contained failure).
    """

    seed: int = 2025
    collect_reps: int = 0          # per collection batch; 0 → env default
    collect_batches: int = 5
    jobs: Optional[int] = None
    #: reps per dispatched chunk (None → ``REPRO_CHUNK_SIZE`` or auto);
    #: chunking never affects results, only dispatch granularity
    chunk_size: Optional[int] = None
    cache: ResultCache = field(default_factory=ResultCache)
    fault_policy: Optional["FaultPolicy"] = None
    journal: Optional["CampaignJournal"] = None
    #: CI-driven early stopping applied to every cell the campaign runs
    #: (threaded through the cache, so adaptive cells key — and cache —
    #: separately from fixed-rep ones); None keeps classic fixed reps
    adaptive: Optional["AdaptivePolicy"] = None
    #: when set, every cell goes through the campaign service instead of
    #: running in-process: :meth:`submit_or_run` submits to the service's
    #: queue and waits for its workers, and ``cache`` is re-pointed at
    #: the service's shared result store so both paths read and write
    #: the same content-hash keyspace.  Tables render identically either
    #: way — results always come back through the store envelope.
    service: Optional[object] = None
    #: shard threshold for service-routed cells: a cell with more reps
    #: than this submits as chunk sub-jobs several workers can run
    #: concurrently (``None`` defers to the client's own threshold /
    #: ``REPRO_SHARD_REPS``; ignored without a ``service``).  Sharding
    #: never changes results — rep seeding is positional.
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.harness.executor import get_executor

        if self.service is not None:
            self.cache = self.service.store
        self.executor = get_executor(self.jobs, chunk_size=self.chunk_size)
        if self.cache.executor is None:
            self.cache.executor = self.executor
        if self.fault_policy is not None and self.cache.policy is None:
            self.cache.policy = self.fault_policy
        if self.journal is not None and self.cache.journal is None:
            self.cache.journal = self.journal
        if self.adaptive is not None and self.cache.adaptive is None:
            self.cache.adaptive = self.adaptive

    def resolved_collect_reps(self) -> int:
        """Collection batch size with environment default applied."""
        if self.collect_reps > 0:
            return self.collect_reps
        from repro.harness.experiment import env_int

        return env_int("REPRO_COLLECT_REPS", 40)

    def map_cells(self, fn, items: Sequence) -> list:
        """Apply ``fn`` to independent table cells, in order.

        Serial when the backend is serial; otherwise a thread pool
        overlaps the cells' cache lookups and rep dispatch (the reps
        themselves run in the shared worker processes).  Output order
        always matches ``items`` order.

        A cell that raises still aborts the campaign (partial *tables*
        would be silently wrong), but when a ``journal`` is attached the
        failure is checkpointed first — a resumed campaign re-runs only
        the missing cells because every completed one hit the journal
        via the cache.
        """
        items = list(items)
        fn = self._journaled(fn)
        if _telemetry.enabled():
            fn = _traced_cell(fn)
        if self.executor.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(self.executor.jobs, len(items))) as tp:
            return list(tp.map(fn, items))

    def _journaled(self, fn):
        """Wrap a cell function to checkpoint failures before re-raising."""
        if self.journal is None:
            return fn

        def wrapped(item):
            try:
                return fn(item)
            except Exception as exc:
                self.journal.record_failure(
                    f"cell:{item!r}",
                    FailureRecord.from_exception(-1, "cell", exc, attempts=1, wall_time=0.0),
                    item=repr(item),
                )
                raise

        return wrapped

    def spec_seed(self, *parts) -> int:
        """Stable per-cell seed derived from the campaign seed."""
        return self.seed + _stable_hash(*parts)

    def submit_or_run(self, spec: ExperimentSpec, **kwargs):
        """The cell execution seam every campaign call site goes through.

        Without a ``service`` this is exactly ``cache.get_or_run``.
        With one, the cell is submitted to the service queue and the
        result read back from the shared store once a worker (or a
        concurrent client's cache entry) produced it — bit-identical
        either way, because both paths terminate in the same
        content-hash envelope.  ``executor``/``policy`` overrides only
        apply in-process (service workers run their own); ``noise`` is
        honoured on both paths.
        """
        if self.service is None:
            return self.cache.get_or_run(spec, **kwargs)
        noise = kwargs.pop("noise", None)
        if noise is None:
            noise = kwargs.pop("noise_config", None)
        kwargs.pop("executor", None)
        kwargs.pop("policy", None)
        if kwargs:
            raise TypeError(
                f"submit_or_run via a service does not accept: {sorted(kwargs)}"
            )
        return self.service.run_cell(spec, noise=noise, shard=self.shard)


def _traced_cell(fn):
    """Wrap a cell function in a ``cell`` span linked to the dispatcher.

    Cells may run on thread-pool threads that have no span stack of
    their own; they adopt the dispatching thread's current span as base
    parent so the timeline stays connected across the fan-out.
    """
    parent = _telemetry.current_span_id()

    def wrapped(item):
        if _telemetry.current_span_id() is None:
            _telemetry.set_base_parent(parent)
        with _telemetry.span("cell", item=repr(item)):
            return fn(item)

    return wrapped


def default_settings(**kwargs) -> CampaignSettings:
    """Settings with environment-driven defaults."""
    return CampaignSettings(**kwargs)


# ----------------------------------------------------------------------
# noise-config store
# ----------------------------------------------------------------------
@dataclass
class ConfigInfo:
    """Provenance of a cached noise configuration."""

    config: NoiseConfig
    worst_exec_time: float
    mean_exec_time: float
    anomaly: Optional[str]
    n_runs: int
    source_label: str


def build_noise_config(
    settings: CampaignSettings,
    platform: str,
    workload: str,
    source: tuple[str, str, bool],
    idx: int,
    merge: MergeStrategy = MergeStrategy.IMPROVED,
    anomaly_prob: Optional[float] = 0.15,
) -> ConfigInfo:
    """Collect (or load) worst-case config ``idx`` for a platform/workload.

    ``source`` is the ``(strategy, model, use_smt)`` configuration whose
    trace collection produces the worst case — the paper's Table 7 names
    these (e.g. ``Rm-OMP``, ``TPHK2-OMP``).

    ``anomaly_prob`` defaults to an *accelerated* lottery: the paper
    caught its rare heavy events by brute force over 1000 runs per
    configuration; the scaled-down campaigns compress that hunt by
    raising the per-run probability during collection only (baselines
    and injected runs keep the natural rate).  Pass ``None`` to hunt at
    the platform's natural rate.
    """
    strategy, model, use_smt = source
    label = f"{strategy}-{model.upper()}{'' if use_smt else '-noSMT'}"
    key_parts = ("cfg", platform, workload, label, idx, merge.value, anomaly_prob)
    cache_path = settings.cache.root / f"cfg_{_stable_hash(*key_parts):07x}_{platform}_{workload}_{idx}.json"
    if settings.cache.enabled and cache_path.exists():
        import json

        try:
            data = json.loads(cache_path.read_text())
            return ConfigInfo(
                config=NoiseConfig.from_json(data["config"]),
                worst_exec_time=data["worst_exec_time"],
                mean_exec_time=data["mean_exec_time"],
                anomaly=data["anomaly"],
                n_runs=data["n_runs"],
                source_label=data["source_label"],
            )
        except (json.JSONDecodeError, KeyError):
            # Torn config entry (crash mid-session, disk fault, chaos
            # corruption): salvage by evicting and re-collecting.
            settings.cache._count("corrupt")
            cache_path.unlink(missing_ok=True)
    spec = ExperimentSpec(
        platform=platform,
        workload=workload,
        model=model,
        strategy=strategy,
        use_smt=use_smt,
        seed=settings.spec_seed("collect", platform, workload, label, idx),
        anomaly_prob=anomaly_prob,
    )
    coll = collect_traces(
        spec,
        reps=settings.resolved_collect_reps(),
        min_degradation=0.15,
        max_batches=settings.collect_batches,
        profile_excludes_anomalies=anomaly_prob is not None,
        executor=settings.executor,
        policy=settings.fault_policy,
    )
    config = generate_config(
        coll.worst_trace,
        coll.profile,
        merge=merge,
        meta={"collected_from": label, "config_idx": idx},
    )
    info = ConfigInfo(
        config=config,
        worst_exec_time=coll.worst_exec_time,
        mean_exec_time=coll.clean_mean_exec_time,
        anomaly=coll.worst_trace.meta.get("anomaly"),
        n_runs=len(coll.exec_times),
        source_label=label,
    )
    if settings.cache.enabled:
        import json

        atomic_write_text(
            cache_path,
            json.dumps(
                {
                    "config": config.to_json(),
                    "worst_exec_time": info.worst_exec_time,
                    "mean_exec_time": info.mean_exec_time,
                    "anomaly": info.anomaly,
                    "n_runs": info.n_runs,
                    "source_label": label,
                }
            ),
        )
    return info


# ----------------------------------------------------------------------
# Table 1 — tracing overhead
# ----------------------------------------------------------------------
@dataclass
class Table1Result:
    """Measured tracing overhead per workload."""

    rows: dict[str, tuple[float, float, float]]  # workload -> (off, on, pct)

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["workload", "tracing off (s)", "tracing on (s)", "increase", "paper"])
        for wl, (off, on, pct) in self.rows.items():
            ref = paper.TABLE1[wl][2]
            tb.add_row(wl, f"{off:.6f}", f"{on:.6f}", f"{pct:.2f}%", f"{ref:.2f}%")
        return "Table 1: tracing overhead\n" + tb.render()


@_traced_campaign
def table1(settings: Optional[CampaignSettings] = None, platform: str = "intel-9700kf") -> Table1Result:
    """Average execution time with tracing off and on (Table 1)."""
    settings = settings or default_settings()
    rows = {}
    for wl in _WORKLOADS:
        seed = settings.spec_seed("table1", platform, wl)
        spec = ExperimentSpec(platform=platform, workload=wl, model="omp", strategy="Rm", seed=seed)
        off = settings.submit_or_run(spec.with_(tracing=False)).mean
        on = settings.submit_or_run(spec.with_(tracing=True)).mean
        rows[wl] = (off, on, (on / off - 1.0) * 100.0)
    return Table1Result(rows)


# ----------------------------------------------------------------------
# Table 2 — baseline variability
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    """Average baseline s.d. (ms) per model and strategy."""

    sds: dict[str, dict[str, float]]  # model -> strategy -> sd (ms)
    platforms: tuple[str, ...]

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["model", *STRATEGY_NAMES])
        for model in ("omp", "sycl"):
            tb.add_row(model.upper(), *(f"{self.sds[model][s]:.2f}" for s in STRATEGY_NAMES))
            tb.add_row(
                "  (paper)", *(f"{paper.TABLE2[model][s]:.2f}" for s in STRATEGY_NAMES)
            )
        return (
            f"Table 2: average baseline s.d. (ms) over {', '.join(self.platforms)}\n"
            + tb.render()
        )


@_traced_campaign
def table2(
    settings: Optional[CampaignSettings] = None,
    platforms: Sequence[str] = ("intel-9700kf", "amd-9950x3d"),
    workloads: Sequence[str] = _WORKLOADS,
) -> Table2Result:
    """Average s.d. of baseline executions (Table 2)."""
    settings = settings or default_settings()
    sds: dict[str, dict[str, float]] = {}
    cells = [(plat, wl) for plat in platforms for wl in workloads]
    for model in ("omp", "sycl"):
        sds[model] = {}
        for strat in STRATEGY_NAMES:

            def _cell(pw, _model=model, _strat=strat):
                plat, wl = pw
                seed = settings.spec_seed("table2", plat, wl, _model, _strat)
                spec = ExperimentSpec(
                    platform=plat, workload=wl, model=_model, strategy=_strat, seed=seed
                )
                return settings.submit_or_run(spec).sd * 1e3

            values = settings.map_cells(_cell, cells)
            sds[model][strat] = float(np.mean(values))
    return Table2Result(sds, tuple(platforms))


# ----------------------------------------------------------------------
# Tables 3–5 — injection tables
# ----------------------------------------------------------------------
#: which traced configuration produces config #idx (paper Table 7 style)
_CONFIG_SOURCES: dict[tuple[str, int, bool], tuple[str, str, bool]] = {
    # (platform-kind, idx, smt_row) -> (strategy, model, use_smt)
    ("intel", 1, True): ("Rm", "omp", True),
    ("intel", 2, True): ("TP", "omp", True),
    ("amd", 1, False): ("Rm", "omp", False),
    ("amd", 1, True): ("Rm", "omp", True),
    ("amd", 2, False): ("TPHK2", "omp", False),
    ("amd", 2, True): ("TPHK", "omp", True),
}

#: row groups per (platform kind, workload): (label, model, use_smt, cfg idx)
def _row_groups(platform: str, workload: str) -> list[tuple[str, str, bool, int]]:
    if platform.startswith("intel"):
        return [
            ("OMP #1", "omp", True, 1),
            ("SYCL #1", "sycl", True, 1),
            ("OMP #2", "omp", True, 2),
            ("SYCL #2", "sycl", True, 2),
        ]
    rows = [
        ("OMP #1", "omp", False, 1),
        ("OMP SMT #1", "omp", True, 1),
        ("SYCL #1", "sycl", False, 1),
        ("SYCL SMT #1", "sycl", True, 1),
    ]
    if workload == "minife":
        rows += [
            ("OMP #2", "omp", False, 2),
            ("OMP SMT #2", "omp", True, 2),
            ("SYCL #2", "sycl", False, 2),
            ("SYCL SMT #2", "sycl", True, 2),
        ]
    return rows


@dataclass
class InjectionTableResult:
    """One of Tables 3–5: per-platform row groups under injection."""

    workload: str
    rows_by_platform: dict[str, list[InjectionRow]]
    configs: dict[tuple[str, int, bool], ConfigInfo] = field(default_factory=dict)

    def render(self, with_paper: bool = True) -> str:
        number = {"nbody": 3, "babelstream": 4, "minife": 5}[self.workload]
        parts = []
        for plat, rows in self.rows_by_platform.items():
            parts.append(
                render_injection_table(
                    f"Table {number}: {self.workload} on {plat} (exec s / Δ% vs baseline)",
                    rows,
                    STRATEGY_NAMES,
                    with_paper=with_paper,
                )
            )
        return "\n\n".join(parts)

    def deltas(self) -> dict[tuple[str, str, str], float]:
        """(platform, row label, strategy) -> Δ% map (Table 6 input)."""
        out = {}
        for plat, rows in self.rows_by_platform.items():
            for row in rows:
                for strat, delta in row.deltas.items():
                    out[(plat, row.label, strat)] = delta
        return out


@_traced_campaign
def injection_table(
    workload: str,
    settings: Optional[CampaignSettings] = None,
    platforms: Sequence[str] = ("intel-9700kf", "amd-9950x3d"),
    strategies: Sequence[str] = STRATEGY_NAMES,
) -> InjectionTableResult:
    """Generic Tables 3–5 generator for one workload."""
    settings = settings or default_settings()
    paper_table = {
        "nbody": paper.TABLE3,
        "babelstream": paper.TABLE4,
        "minife": paper.TABLE5,
    }[workload]
    rows_by_platform: dict[str, list[InjectionRow]] = {}
    configs: dict[tuple[str, int, bool], ConfigInfo] = {}
    for plat in platforms:
        kind = "intel" if plat.startswith("intel") else "amd"
        rows: list[InjectionRow] = []
        for label, model, use_smt, idx in _row_groups(plat, workload):
            cfg_key = (plat, idx, use_smt if kind == "amd" else True)
            if cfg_key not in configs:
                source = _CONFIG_SOURCES[(kind, idx, use_smt if kind == "amd" else True)]
                configs[cfg_key] = build_noise_config(settings, plat, workload, source, idx)
            info = configs[cfg_key]

            def _cell(strat: str, _model=model, _smt=use_smt, _cfg=info.config):
                seed = settings.spec_seed("inj", plat, workload, _model, strat, _smt)
                spec = ExperimentSpec(
                    platform=plat,
                    workload=workload,
                    model=_model,
                    strategy=strat,
                    use_smt=_smt,
                    seed=seed,
                )
                base = settings.submit_or_run(spec)
                inj = settings.submit_or_run(
                    spec.with_(seed=seed + 1_000_003), noise=_cfg
                )
                return strat, base, inj

            exec_times: dict[str, float] = {}
            deltas: dict[str, float] = {}
            # Independent cells: one baseline + one injected experiment
            # per strategy, all under the same frozen config.
            for strat, base, inj in settings.map_cells(_cell, strategies):
                exec_times[strat] = inj.mean
                deltas[strat] = (inj.mean / base.mean - 1.0) * 100.0
            ref = paper_table.get(plat, {}).get(label, {})
            rows.append(
                InjectionRow(
                    label=label,
                    exec_times=exec_times,
                    deltas=deltas,
                    paper_exec=ref.get("exec", {}),
                    paper_delta=ref.get("delta", {}),
                )
            )
        rows_by_platform[plat] = rows
    return InjectionTableResult(workload, rows_by_platform, configs)


def table3(settings: Optional[CampaignSettings] = None, **kw) -> InjectionTableResult:
    """N-body under injection (Table 3)."""
    return injection_table("nbody", settings, **kw)


def table4(settings: Optional[CampaignSettings] = None, **kw) -> InjectionTableResult:
    """Babelstream under injection (Table 4)."""
    return injection_table("babelstream", settings, **kw)


def table5(settings: Optional[CampaignSettings] = None, **kw) -> InjectionTableResult:
    """MiniFE under injection (Table 5)."""
    return injection_table("minife", settings, **kw)


# ----------------------------------------------------------------------
# Table 6 — summary
# ----------------------------------------------------------------------
@dataclass
class Table6Result:
    """Average relative performance change per model and strategy."""

    averages: dict[str, dict[str, float]]

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["model", *STRATEGY_NAMES])
        for model in ("omp", "sycl"):
            tb.add_row(model.upper(), *(f"{self.averages[model][s]:.2f}" for s in STRATEGY_NAMES))
            tb.add_row("  (paper)", *(f"{paper.TABLE6[model][s]:.2f}" for s in STRATEGY_NAMES))
        return "Table 6: average relative performance change (%) under injection\n" + tb.render()

    def sycl_advantage(self) -> float:
        """Average OMP-minus-SYCL gap across strategies (paper: 16.82)."""
        gaps = [
            self.averages["omp"][s] - self.averages["sycl"][s] for s in STRATEGY_NAMES
        ]
        return float(np.mean(gaps))


@_traced_campaign
def table6(
    settings: Optional[CampaignSettings] = None,
    tables: Optional[Sequence[InjectionTableResult]] = None,
) -> Table6Result:
    """Summary of Tables 3–5 (Table 6); reuses their cached cells."""
    settings = settings or default_settings()
    if tables is None:
        tables = [injection_table(wl, settings) for wl in _WORKLOADS]
    sums: dict[str, dict[str, list[float]]] = {
        "omp": {s: [] for s in STRATEGY_NAMES},
        "sycl": {s: [] for s in STRATEGY_NAMES},
    }
    for result in tables:
        for (plat, label, strat), delta in result.deltas().items():
            model = "sycl" if "SYCL" in label else "omp"
            sums[model][strat].append(delta)
    averages = {
        model: {s: float(np.mean(v)) if v else float("nan") for s, v in per.items()}
        for model, per in sums.items()
    }
    return Table6Result(averages)


# ----------------------------------------------------------------------
# Table 7 — injector accuracy
# ----------------------------------------------------------------------
#: the ten worst-case traces of Table 7: (workload, label) -> (platform,
#: strategy, model, use_smt)
_TABLE7_CONFIGS: dict[tuple[str, str], tuple[str, str, str, bool]] = {
    ("nbody", "Rm-OMP"): ("intel-9700kf", "Rm", "omp", True),
    ("nbody", "TP-OMP"): ("intel-9700kf", "TP", "omp", True),
    ("nbody", "Rm-SMT-OMP"): ("amd-9950x3d", "Rm", "omp", True),
    ("babelstream", "Rm-OMP"): ("intel-9700kf", "Rm", "omp", True),
    ("babelstream", "TP-OMP"): ("intel-9700kf", "TP", "omp", True),
    ("babelstream", "TP-SYCL"): ("intel-9700kf", "TP", "sycl", True),
    ("minife", "Rm-OMP"): ("intel-9700kf", "Rm", "omp", True),
    ("minife", "TPHK2-OMP"): ("amd-9950x3d", "TPHK2", "omp", False),
    ("minife", "TPHK-SMT-OMP"): ("amd-9950x3d", "TPHK", "omp", True),
    ("minife", "RmHK2-SYCL"): ("amd-9950x3d", "RmHK2", "sycl", True),
}


@dataclass
class Table7Result:
    """Replication accuracy for each worst-case trace."""

    rows: list[tuple[str, str, float, float]]  # workload, label, signed %, paper %

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["benchmark", "config", "accuracy", "paper"])
        for wl, label, acc, ref in self.rows:
            tb.add_row(wl, label, f"{acc:+.2f}%", f"{ref:+.2f}%")
        tb.add_row(
            "mean |acc|",
            "",
            f"{np.mean([abs(a) for _, _, a, _ in self.rows]):.2f}%",
            f"{paper.TABLE7_MEAN_ACCURACY:.2f}%",
        )
        return "Table 7: injector replication accuracy per worst-case trace\n" + tb.render()

    def mean_abs_accuracy(self) -> float:
        """Mean |accuracy| over the ten configs (paper: 8.57%)."""
        return float(np.mean([abs(a) for _, _, a, _ in self.rows]))


@_traced_campaign
def table7(
    settings: Optional[CampaignSettings] = None,
    merge: MergeStrategy = MergeStrategy.IMPROVED,
) -> Table7Result:
    """Injector accuracy over the ten worst-case traces (Table 7)."""
    settings = settings or default_settings()
    rows = []
    for (workload, label), (plat, strat, model, use_smt) in _TABLE7_CONFIGS.items():
        info = build_noise_config(
            settings, plat, workload, (strat, model, use_smt), idx=7, merge=merge
        )
        seed = settings.spec_seed("t7", plat, workload, label)
        spec = ExperimentSpec(
            platform=plat,
            workload=workload,
            model=model,
            strategy=strat,
            use_smt=use_smt,
            seed=seed,
        )
        inj = settings.submit_or_run(spec, noise=info.config)
        err = signed_replication_error(inj.mean, info.worst_exec_time) * 100.0
        rows.append((workload, label, err, paper.TABLE7[(workload, label)]))
    return Table7Result(rows)


# ----------------------------------------------------------------------
# Figures 1–2 — A64FX motivation study
# ----------------------------------------------------------------------
@dataclass
class FigureResult:
    """Distribution series for a text-rendered figure."""

    title: str
    x_labels: list[str]
    series: dict[str, list[tuple[float, float, float]]]  # (mean, sd, max)

    def render(self) -> str:
        """Text rendering of the figure's distribution series."""
        return render_series_figure(self.title, self.x_labels, self.series)

    def variability_ratio(self) -> float:
        """Mean sd ratio of the unreserved system over the reserved one
        (>1 means reserving OS cores reduced variability, the paper's
        motivation claim)."""
        keys = list(self.series)
        if len(keys) != 2:
            raise ValueError("variability_ratio needs exactly two series")
        unres = [p[1] for p in self.series[keys[0]]]
        res = [p[1] for p in self.series[keys[1]]]
        res = [max(r, 1e-9) for r in res]
        return float(np.mean([u / r for u, r in zip(unres, res)]))


@_traced_campaign
def figure1(
    settings: Optional[CampaignSettings] = None,
    schedules: Sequence[str] = ("static", "dynamic", "guided"),
    chunks: Sequence[int] = (1, 8, 64),
) -> FigureResult:
    """schedbench variability with and without reserved OS cores (Fig. 1)."""
    settings = settings or default_settings()
    x_labels: list[str] = []
    series: dict[str, list[tuple[float, float, float]]] = {"A64FX:w/o": [], "A64FX:reserved": []}
    for sched in schedules:
        for chunk in chunks:
            prefix = {"static": "st", "dynamic": "dy", "guided": "gd"}[sched]
            x_labels.append(f"{prefix}:{chunk}")
            for plat, key in (("a64fx", "A64FX:w/o"), ("a64fx-reserved", "A64FX:reserved")):
                seed = settings.spec_seed("fig1", plat, sched, chunk)
                spec = ExperimentSpec(
                    platform=plat,
                    workload="schedbench",
                    model="omp",
                    strategy="Rm",
                    seed=seed,
                    anomaly_prob=0.15,
                    workload_params={"schedule": sched, "chunk": chunk},
                )
                rs = settings.submit_or_run(spec)
                s = summarize(rs.times)
                series[key].append((s.mean, s.sd, s.maximum))
    return FigureResult(
        "Figure 1: schedbench execution-time variability (A64FX, reserved vs w/o)",
        x_labels,
        series,
    )


@_traced_campaign
def figure2(
    settings: Optional[CampaignSettings] = None,
    thread_counts: Sequence[int] = (12, 24, 36, 48),
) -> FigureResult:
    """Babelstream *dot* variability versus thread count (Fig. 2)."""
    settings = settings or default_settings()
    x_labels = [str(t) for t in thread_counts]
    series: dict[str, list[tuple[float, float, float]]] = {"A64FX:w/o": [], "A64FX:reserved": []}
    for plat, key in (("a64fx", "A64FX:w/o"), ("a64fx-reserved", "A64FX:reserved")):
        for t in thread_counts:
            seed = settings.spec_seed("fig2", plat, t)
            spec = ExperimentSpec(
                platform=plat,
                workload="babelstream",
                model="omp",
                strategy="Rm",
                seed=seed,
                anomaly_prob=0.15,
                n_threads=t,
                workload_params={"kernels": ("dot",)},
            )
            rs = settings.submit_or_run(spec)
            s = summarize(rs.times)
            series[key].append((s.mean, s.sd, s.maximum))
    return FigureResult(
        "Figure 2: Babelstream dot kernel variability vs thread count (A64FX)",
        x_labels,
        series,
    )


# ----------------------------------------------------------------------
# §5.2 ablation — naive vs improved merging
# ----------------------------------------------------------------------
@dataclass
class MergeAblationResult:
    """Replay accuracy of the naive versus the improved injector."""

    naive_accuracy: float
    improved_accuracy: float
    naive_fifo_busy: float
    improved_fifo_busy: float

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["injector variant", "replication accuracy", "FIFO busy (ms)"])
        tb.add_row("naive merge", f"{self.naive_accuracy * 100:.2f}%", f"{self.naive_fifo_busy * 1e3:.1f}")
        tb.add_row("improved merge", f"{self.improved_accuracy * 100:.2f}%", f"{self.improved_fifo_busy * 1e3:.1f}")
        ref_n, ref_i = paper.MERGE_ABLATION["compromised_trace"]
        tb.add_row("paper (compromised trace)", f"{ref_n:.2f}% -> {ref_i:.2f}%", "-")
        return "Merge ablation (§5.2): naive vs improved overlap merging\n" + tb.render()


def _fifo_busy(config: NoiseConfig) -> float:
    return sum(
        e.duration
        for evts in config.events_per_cpu.values()
        for e in evts
        if e.policy == "SCHED_FIFO"
    )


@_traced_campaign
def merge_ablation(
    settings: Optional[CampaignSettings] = None,
    platform: str = "amd-9950x3d",
    workload: str = "minife",
) -> MergeAblationResult:
    """Reproduce the compromised-run study (§5.2).

    The problem surfaced on a worst-case trace with densely overlapping
    events: the naive rule merges thread- and interrupt-class overlaps
    into pessimistic ``SCHED_FIFO`` envelopes, distorting the replay
    relative to the improved class-separating rule.  A 32-CPU machine
    with a guaranteed anomaly reliably produces such dense traces — the
    same worst case is converted with both rules and replayed.
    """
    settings = settings or default_settings()
    spec = ExperimentSpec(
        platform=platform,
        workload=workload,
        model="omp",
        strategy="Rm",
        seed=settings.spec_seed("ablate-collect", platform, workload),
        anomaly_prob=1.0,
    )
    coll = collect_traces(
        spec,
        reps=settings.resolved_collect_reps(),
        max_batches=1,
        min_degradation=0.0,
        executor=settings.executor,
        policy=settings.fault_policy,
    )
    accuracies = {}
    fifo = {}
    for merge in (MergeStrategy.NAIVE, MergeStrategy.IMPROVED):
        config = generate_config(
            coll.worst_trace, coll.profile, merge=merge, meta={"ablation": "merge"}
        )
        seed = settings.spec_seed("ablate", platform, workload, merge.value)
        inj_spec = spec.with_(seed=seed, anomaly_prob=None)
        inj = settings.submit_or_run(inj_spec, noise=config)
        accuracies[merge] = abs(signed_replication_error(inj.mean, coll.worst_exec_time))
        fifo[merge] = _fifo_busy(config)
    return MergeAblationResult(
        naive_accuracy=accuracies[MergeStrategy.NAIVE],
        improved_accuracy=accuracies[MergeStrategy.IMPROVED],
        naive_fifo_busy=fifo[MergeStrategy.NAIVE],
        improved_fifo_busy=fifo[MergeStrategy.IMPROVED],
    )


# ----------------------------------------------------------------------
# §5.1 runlevel-3 check
# ----------------------------------------------------------------------
@dataclass
class Runlevel3Result:
    """Baseline variability with and without the GUI (runlevel 3)."""

    sd_gui: float
    sd_runlevel3: float

    def render(self) -> str:
        """Paper-style text table with reference rows."""
        tb = TableBuilder(["mode", "baseline sd (ms)"])
        tb.add_row("default (GUI)", f"{self.sd_gui * 1e3:.2f}")
        tb.add_row("runlevel 3", f"{self.sd_runlevel3 * 1e3:.2f}")
        return (
            "Runlevel-3 check (§5.1): GUI off reduces variability, trends unchanged\n"
            + tb.render()
        )


@_traced_campaign
def runlevel3_study(
    settings: Optional[CampaignSettings] = None,
    platform: str = "intel-9700kf",
    workload: str = "nbody",
) -> Runlevel3Result:
    """The paper's sanity check that GUI noise was not driving results."""
    settings = settings or default_settings()
    seed = settings.spec_seed("rl3", platform, workload)
    spec = ExperimentSpec(platform=platform, workload=workload, model="omp", strategy="Rm", seed=seed)
    gui = settings.submit_or_run(spec)
    rl3 = settings.submit_or_run(spec.with_(runlevel3=True))
    return Runlevel3Result(sd_gui=gui.sd, sd_runlevel3=rl3.sd)
