"""The paper's published numbers, transcribed for side-by-side reports.

Every value below comes from Persson et al., SC-W'25 (Tables 1–7).
The reproduction targets the *shape* of these results, not the absolute
values — the substrate here is a simulator, not the authors' desktops —
so benchmark output prints measured rows next to these reference rows
and EXPERIMENTS.md records both.

Layout conventions: strategy columns are always
``(Rm, RmHK, RmHK2, TP, TPHK, TPHK2)``; injection rows are keyed
``(platform, row_label)`` where row labels match the paper ("OMP #1",
"SYCL SMT #2", …).
"""

from __future__ import annotations

STRATEGIES = ("Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2")

#: Table 1 — tracing overhead: workload -> (off_s, on_s, increase_pct)
TABLE1 = {
    "nbody": (0.450971154, 0.453986513, 0.67),
    "babelstream": (1.922135903, 1.935881194, 0.72),
    "minife": (1.06313158, 1.065820493, 0.25),
}

#: Table 2 — average baseline s.d. (ms): model -> per-strategy values
TABLE2 = {
    "omp": dict(zip(STRATEGIES, (7.77, 5.99, 9.99, 5.90, 7.46, 8.69))),
    "sycl": dict(zip(STRATEGIES, (7.18, 7.84, 5.55, 6.75, 7.63, 5.36))),
}


def _rows(*entries):
    out = {}
    for label, execs, deltas in entries:
        out[label] = {
            "exec": dict(zip(STRATEGIES, execs)),
            "delta": dict(zip(STRATEGIES, deltas)),
        }
    return out


#: Table 3 — N-body under injection: platform -> row label -> exec/delta
TABLE3 = {
    "intel-9700kf": _rows(
        ("OMP #1", (0.653, 0.644, 0.666, 0.644, 0.644, 0.674), (45.5, 28.4, 15.0, 43.5, 27.5, 16.3)),
        ("SYCL #1", (0.682, 0.754, 0.815, 0.683, 0.756, 0.819), (13.3, 9.3, 6.1, 13.2, 9.4, 6.7)),
        ("OMP #2", (0.562, 0.518, 0.588, 0.556, 0.529, 0.593), (25.4, 3.2, 1.6, 23.8, 4.7, 2.2)),
        ("SYCL #2", (0.661, 0.703, 0.773, 0.665, 0.705, 0.774), (9.7, 1.9, 0.8, 10.1, 2.1, 1.0)),
    ),
    "amd-9950x3d": _rows(
        ("OMP #1", (1.392, 0.832, 0.902, 1.398, 0.784, 0.884), (106.4, 10.0, 1.0, 107.2, 3.9, -1.7)),
        ("OMP SMT #1", (1.184, 0.739, 0.860, 1.357, 0.778, 0.847), (69.6, -0.1, -5.5, 95.0, 3.4, -1.5)),
        ("SYCL #1", (1.056, 0.947, 1.033, 1.193, 0.943, 1.015), (35.9, 3.8, -0.6, 54.5, 4.0, -1.1)),
        ("SYCL SMT #1", (1.039, 0.907, 0.887, 1.165, 0.905, 0.890), (18.6, 4.3, -3.8, 34.0, 2.1, -2.8)),
    ),
}

#: Table 4 — Babelstream under injection
TABLE4 = {
    "intel-9700kf": _rows(
        ("OMP #1", (1.951, 1.916, 1.897, 1.915, 1.892, 1.879), (2.6, 0.1, 0.9, 1.1, 0.9, 1.2)),
        ("SYCL #1", (2.175, 2.147, 2.134, 2.177, 2.150, 2.142), (1.6, -0.1, 1.2, 1.8, 0.3, 1.0)),
        ("OMP #2", (2.452, 1.918, 1.894, 2.372, 2.086, 1.985), (28.9, 0.2, 0.8, 25.2, 11.2, 6.9)),
        ("SYCL #2", (2.403, 2.242, 2.173, 2.415, 2.269, 2.205), (12.2, 4.3, 3.0, 12.9, 5.8, 4.0)),
    ),
    "amd-9950x3d": _rows(
        ("OMP #1", (1.004, 0.905, 0.888, 1.016, 0.893, 0.881), (26.6, 15.8, 14.1, 28.7, 15.2, 14.1)),
        ("OMP SMT #1", (1.013, 0.900, 0.876, 1.016, 0.910, 0.893), (25.1, 10.1, 9.1, 26.2, 13.6, 12.4)),
        ("SYCL #1", (1.111, 1.067, 1.047, 1.126, 1.074, 1.053), (11.8, 8.1, 9.2, 13.4, 8.7, 10.2)),
        ("SYCL SMT #1", (1.119, 1.067, 1.056, 1.125, 1.065, 1.053), (10.6, 6.0, 8.1, 11.6, 6.2, 8.3)),
    ),
}

#: Table 5 — MiniFE under injection
TABLE5 = {
    "intel-9700kf": _rows(
        ("OMP #1", (1.243, 1.240, 1.239, 1.246, 1.611, 1.772), (17.4, 17.0, 14.8, 18.2, -2.1, 6.3)),
        ("SYCL #1", (2.113, 2.207, 2.382, 2.115, 2.211, 2.388), (5.3, 2.8, 1.6, 5.5, 3.1, 2.0)),
        ("OMP #2", (2.128, 1.990, 1.891, 2.211, 2.774, 2.468), (101.1, 87.7, 75.2, 109.9, 68.6, 48.0)),
        ("SYCL #2", (2.774, 2.696, 2.874, 2.770, 2.704, 2.873), (38.3, 25.5, 22.5, 38.2, 26.1, 22.7)),
    ),
    "amd-9950x3d": _rows(
        ("OMP #1", (0.874, 0.882, 0.859, 0.864, 1.092, 1.106), (20.8, 12.0, 7.5, 22.3, 14.8, 14.0)),
        ("OMP SMT #1", (0.934, 0.921, 0.920, 0.932, 1.168, 1.166), (14.7, 5.6, 6.1, 18.8, 9.3, 8.0)),
        ("SYCL #1", (1.630, 1.650, 1.709, 1.615, 1.644, 1.707), (20.7, 18.3, 16.6, 20.6, 18.4, 17.6)),
        ("SYCL SMT #1", (1.590, 1.571, 1.572, 1.569, 1.571, 1.564), (16.6, 15.6, 15.7, 15.0, 15.3, 15.1)),
        ("OMP #2", (1.228, 1.236, 1.286, 1.378, 2.081, 2.095), (69.8, 56.9, 60.9, 95.0, 118.8, 116.1)),
        ("OMP SMT #2", (1.188, 1.214, 1.212, 1.405, 2.123, 2.125), (46.0, 39.1, 39.8, 79.2, 98.5, 96.8)),
        ("SYCL #2", (2.070, 1.925, 1.971, 2.040, 1.939, 1.990), (53.3, 38.0, 34.5, 52.3, 39.6, 37.1)),
        ("SYCL SMT #2", (1.629, 1.487, 1.505, 1.706, 1.523, 1.533), (19.5, 9.4, 10.8, 25.1, 11.8, 12.8)),
    ),
}

#: Table 6 — average relative performance change (%) under injection
TABLE6 = {
    "omp": dict(zip(STRATEGIES, (42.85, 20.43, 17.24, 49.58, 27.73, 24.22))),
    "sycl": dict(zip(STRATEGIES, (19.08, 10.52, 8.96, 22.01, 10.92, 9.60))),
}

#: Table 7 — injector replication accuracy per worst-case trace (signed %)
TABLE7 = {
    ("nbody", "Rm-OMP"): 3.80,
    ("nbody", "TP-OMP"): -2.40,
    ("nbody", "Rm-SMT-OMP"): 6.47,
    ("babelstream", "Rm-OMP"): -0.10,
    ("babelstream", "TP-OMP"): -15.50,
    ("babelstream", "TP-SYCL"): 6.99,
    ("minife", "Rm-OMP"): -7.30,
    ("minife", "TPHK2-OMP"): 18.60,
    ("minife", "TPHK-SMT-OMP"): 1.57,
    ("minife", "RmHK2-SYCL"): 22.95,
}

#: §5.2 merge ablation — accuracy (%) before/after the improved injector
MERGE_ABLATION = {
    "compromised_trace": (25.74, 5.70),
    "babelstream TP-OMP": (15.50, 2.98),
    "minife TPHK2-OMP": (18.60, 9.94),
}

#: Table 7 headline: mean absolute accuracy across the ten configs
TABLE7_MEAN_ACCURACY = 8.57
