"""Babelstream benchmark model.

Five streaming kernels per iteration — ``copy``, ``mul``, ``add``,
``triad``, ``dot`` — each a short bandwidth-bound parallel region with
a barrier, repeated ``iters`` times.  This is the paper's memory-bound
pole: with every core active the kernels saturate DRAM, so giving up
cores to housekeeping barely costs throughput (the paper's clearest
pro-housekeeping case, §6 rec. 2), and a preempted thread's bandwidth
is soaked up by the others.

The ``dot`` kernel carries a reduction, which is the sub-benchmark the
paper's Fig. 2 uses for the A64FX motivation study.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["Babelstream"]

#: arrays touched per kernel (read+write streams)
_KERNEL_ARRAYS = {
    "copy": 2,
    "mul": 2,
    "add": 3,
    "triad": 3,
    "dot": 2,
}

_KERNEL_ORDER = ("copy", "mul", "add", "triad", "dot")

#: array sizes (MB) per platform, near the paper's run lengths
_PLATFORM_ARRAY_MB = {
    "intel-9700kf": 58.0,
    "amd-9950x3d": 62.0,
    "a64fx": 256.0,
    "a64fx-reserved": 256.0,
}


class Babelstream(Workload):
    """The classic five-kernel streaming benchmark.

    Parameters
    ----------
    array_mb:
        Size of each of the three arrays in MB.
    iters:
        Benchmark iterations (Babelstream default is 100).
    kernels:
        Subset of kernels to run (Fig. 2 uses only ``dot``).
    """

    name = "babelstream"

    def __init__(
        self,
        array_mb: float = 58.0,
        iters: int = 100,
        kernels: Optional[tuple[str, ...]] = None,
    ):
        if array_mb <= 0 or iters <= 0:
            raise ValueError("array_mb and iters must be positive")
        kernels = tuple(kernels) if kernels is not None else _KERNEL_ORDER
        unknown = [k for k in kernels if k not in _KERNEL_ARRAYS]
        if unknown:
            raise ValueError(f"unknown kernels: {unknown}")
        self.array_mb = float(array_mb)
        self.iters = iters
        self.kernels = kernels

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "Babelstream":
        """Calibrated instance for a platform preset."""
        kwargs.setdefault("array_mb", _PLATFORM_ARRAY_MB.get(platform.name, 58.0))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def _kernel_work(self, kernel: str, platform: PlatformSpec) -> float:
        traffic_gb = _KERNEL_ARRAYS[kernel] * self.array_mb / 1024.0
        return self.stream_seconds(traffic_gb, platform)

    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        works = {k: self._kernel_work(k, platform) for k in self.kernels}
        for it in range(self.iters):
            for kernel in self.kernels:
                yield Region(
                    name=f"stream-{kernel}-{it}",
                    total_work=works[kernel],
                    mem_demand=platform.core_stream_gbs,
                    schedule="static",
                    imbalance=0.01,
                    reduction=(kernel == "dot"),
                    sycl_efficiency=0.90,
                )

    def total_work(self, platform: PlatformSpec) -> float:
        return self.iters * sum(self._kernel_work(k, platform) for k in self.kernels)

    def estimate_duration(self, platform: PlatformSpec, n_threads: int) -> float:
        # Bandwidth-limited: per-thread rate is capped by the memory
        # system, so the naive work/threads estimate is far too low.
        per_kernel_gb = {
            k: _KERNEL_ARRAYS[k] * self.array_mb / 1024.0 for k in self.kernels
        }
        total_gb = self.iters * sum(per_kernel_gb.values())
        agg_bw = min(platform.bandwidth_gbs, n_threads * platform.core_stream_gbs)
        return total_gb / agg_bw
