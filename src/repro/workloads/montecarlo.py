"""Monte-Carlo option pricing (HeCBench ``blackScholes``/``mc`` style).

Embarrassingly parallel path simulation with *inherently imbalanced*
work items (paths terminate early at barriers), run under a dynamic
schedule by default — the workload class for which the paper's
recommendation 3 ("compute-bound: skip housekeeping, prefer pinning…
or just let dynamic scheduling absorb the noise") is most visible.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["MonteCarlo"]

_PLATFORM_PATHS = {
    "intel-9700kf": 6_000_000,
    "amd-9950x3d": 10_000_000,
    "a64fx": 12_000_000,
    "a64fx-reserved": 12_000_000,
    "hpc-2s64": 16_000_000,
}


class MonteCarlo(Workload):
    """Batched Monte-Carlo simulation.

    Parameters
    ----------
    paths:
        Simulated paths per batch.
    batches:
        Independent batches (each ends in a reduction).
    flops_per_path:
        Average cost per path; actual path costs vary (early exercise),
        which is what the imbalance models.
    schedule:
        Loop schedule; Monte-Carlo codes typically run dynamic.
    """

    name = "montecarlo"

    def __init__(
        self,
        paths: int = 6_000_000,
        batches: int = 8,
        flops_per_path: float = 2000.0,
        schedule: str = "dynamic",
    ):
        if paths <= 0 or batches <= 0 or flops_per_path <= 0:
            raise ValueError("paths, batches, flops_per_path must be positive")
        if schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.paths = paths
        self.batches = batches
        self.flops_per_path = flops_per_path
        self.schedule = schedule

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "MonteCarlo":
        """Calibrated instance for a platform preset."""
        kwargs.setdefault("paths", _PLATFORM_PATHS.get(platform.name, 6_000_000))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def _batch_work(self, platform: PlatformSpec) -> float:
        return self.compute_seconds(self.paths * self.flops_per_path, platform)

    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        work = self._batch_work(platform)
        # ~1000 paths per chunk keeps stealing fine-grained
        chunk = self.compute_seconds(1000.0 * self.flops_per_path, platform)
        for b in range(self.batches):
            yield Region(
                name=f"mc-batch-{b}",
                total_work=work,
                mem_demand=0.8,
                schedule=self.schedule,
                chunk_work=chunk,
                imbalance=0.25,   # early-terminating paths
                reduction=True,
                sycl_efficiency=0.85,
            )

    def total_work(self, platform: PlatformSpec) -> float:
        return self.batches * self._batch_work(platform)
