"""Workload protocol and registry.

A workload turns *problem parameters* plus a
:class:`~repro.sim.platform.PlatformSpec` into a stream of
:class:`~repro.runtimes.base.Region` descriptors.  Compute costs are
converted from flops via ``platform.core_gflops``; streaming phases
carry per-thread bandwidth demand so the
:class:`~repro.sim.memory.MemorySystem` saturates realistically.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec

__all__ = ["Workload", "WORKLOAD_NAMES", "get_workload"]


class Workload(abc.ABC):
    """Abstract workload: a named generator of regions."""

    #: registry key, e.g. "nbody"
    name: str = "workload"

    @abc.abstractmethod
    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        """Yield the run's regions in execution order."""

    @abc.abstractmethod
    def total_work(self, platform: PlatformSpec) -> float:
        """Approximate total CPU-seconds (for duration estimates)."""

    def estimate_duration(self, platform: PlatformSpec, n_threads: int) -> float:
        """A-priori wall-clock estimate (used to place anomaly windows
        and bound event loops, not for results)."""
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        return self.total_work(platform) / n_threads

    # ------------------------------------------------------------------
    @staticmethod
    def compute_seconds(flops: float, platform: PlatformSpec) -> float:
        """Convert a flop count into CPU-seconds on this platform."""
        if flops < 0:
            raise ValueError(f"negative flops: {flops!r}")
        return flops / (platform.core_gflops * 1e9)

    @staticmethod
    def stream_seconds(traffic_gb: float, platform: PlatformSpec) -> float:
        """CPU-seconds one core needs to move ``traffic_gb`` of data."""
        if traffic_gb < 0:
            raise ValueError(f"negative traffic: {traffic_gb!r}")
        return traffic_gb / platform.core_stream_gbs


def get_workload(name: str, platform: PlatformSpec, **kwargs) -> Workload:
    """Build a workload by name with per-platform calibrated defaults.

    The paper sized each benchmark per machine (its two platforms show
    different absolute baselines); the calibration table lives with the
    workload classes.
    """
    from repro.workloads.babelstream import Babelstream
    from repro.workloads.heat import Heat2D
    from repro.workloads.minife import MiniFE
    from repro.workloads.montecarlo import MonteCarlo
    from repro.workloads.nbody import NBody
    from repro.workloads.schedbench import SchedBench

    classes = {
        "nbody": NBody,
        "babelstream": Babelstream,
        "minife": MiniFE,
        "schedbench": SchedBench,
        "heat": Heat2D,
        "montecarlo": MonteCarlo,
    }
    try:
        cls = classes[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(classes))}"
        ) from None
    return cls.for_platform(platform, **kwargs)


WORKLOAD_NAMES = ("nbody", "babelstream", "minife", "schedbench", "heat", "montecarlo")
