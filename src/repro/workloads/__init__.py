"""Workload models: N-body, Babelstream, MiniFE, schedbench.

Each workload is a phase-accurate model of the corresponding HeCBench
benchmark / mini-app: the sequence of parallel regions and serial
sections, each with its compute cost (flops), memory traffic, loop
schedule, and imbalance.  The numerics themselves are not executed —
the paper's conclusions depend on the workloads' *resource signatures*
(compute-bound N-body, bandwidth-bound Babelstream, barrier-heavy CG in
MiniFE), which these models carry.
"""

from repro.workloads.base import Workload, WORKLOAD_NAMES, get_workload
from repro.workloads.nbody import NBody
from repro.workloads.babelstream import Babelstream
from repro.workloads.minife import MiniFE
from repro.workloads.schedbench import SchedBench
from repro.workloads.heat import Heat2D
from repro.workloads.montecarlo import MonteCarlo

__all__ = [
    "Workload",
    "WORKLOAD_NAMES",
    "get_workload",
    "NBody",
    "Babelstream",
    "MiniFE",
    "SchedBench",
    "Heat2D",
    "MonteCarlo",
]
