"""schedbench: the OpenMP loop-scheduling microbenchmark of Fig. 1.

A deliberately imbalanced loop executed repeatedly under a chosen
schedule (``static`` / ``dynamic`` / ``guided``) and chunk size — the
x-axis of the paper's motivation figure (``st:1``, ``dy:64``, …).  On
the A64FX systems it exposes how much run-to-run variability the
reserved OS cores remove.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["SchedBench"]


class SchedBench(Workload):
    """Imbalanced parallel loop under a configurable schedule.

    Parameters
    ----------
    schedule, chunk:
        Loop schedule and chunk size in iterations (the figure's
        ``xy:number`` labels).
    n_iterations:
        Loop trip count.
    iter_cost_us:
        Mean cost of one iteration in microseconds (on the reference
        core).
    repeats:
        Times the whole loop is re-run inside one execution.
    imbalance:
        Fractional cost spread across the iteration space.
    """

    name = "schedbench"

    def __init__(
        self,
        schedule: str = "static",
        chunk: int = 0,
        n_iterations: int = 100000,
        iter_cost_us: float = 2.0,
        repeats: int = 15,
        imbalance: float = 0.30,
    ):
        if schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {schedule!r}")
        if chunk < 0 or n_iterations <= 0 or repeats <= 0:
            raise ValueError("chunk must be >= 0; n_iterations/repeats positive")
        if iter_cost_us <= 0:
            raise ValueError("iter_cost_us must be positive")
        self.schedule = schedule
        self.chunk = chunk
        self.n_iterations = n_iterations
        self.iter_cost_us = iter_cost_us
        self.repeats = repeats
        self.imbalance = imbalance

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "SchedBench":
        """schedbench needs no per-platform sizing; scale via flops."""
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def _loop_work(self, platform: PlatformSpec) -> float:
        # iter_cost is defined on a 30 GFLOP/s reference core.
        ref_scale = 30.0 / platform.core_gflops
        return self.n_iterations * self.iter_cost_us * 1e-6 * ref_scale

    def _chunk_work(self, platform: PlatformSpec) -> float:
        if self.chunk == 0:
            return 0.0
        ref_scale = 30.0 / platform.core_gflops
        return self.chunk * self.iter_cost_us * 1e-6 * ref_scale

    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        work = self._loop_work(platform)
        chunk_work = self._chunk_work(platform)
        for rep in range(self.repeats):
            yield Region(
                name=f"schedbench-{self.schedule}-{self.chunk}-{rep}",
                total_work=work,
                mem_demand=0.5,
                schedule=self.schedule,
                chunk_work=chunk_work,
                imbalance=self.imbalance,
                sycl_efficiency=0.85,
            )

    def total_work(self, platform: PlatformSpec) -> float:
        return self.repeats * self._loop_work(platform)

    @property
    def label(self) -> str:
        """Fig.-1 style x-axis label, e.g. ``st:1`` or ``dy:64``."""
        prefix = {"static": "st", "dynamic": "dy", "guided": "gd"}[self.schedule]
        return f"{prefix}:{self.chunk}"
