"""Heat-diffusion stencil (HeCBench ``heat2d``-style).

A 5-point Jacobi sweep over a 2-D grid, iterated many times: moderately
bandwidth-bound with a barrier per sweep and a small serial residual
check every ``check_every`` iterations.  Sits between Babelstream and
MiniFE on the compute/memory spectrum — useful for probing where the
paper's workload-dependent recommendations flip.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["Heat2D"]

_PLATFORM_N = {
    "intel-9700kf": 4096,
    "amd-9950x3d": 5120,
    "a64fx": 8192,
    "a64fx-reserved": 8192,
    "hpc-2s64": 8192,
}


class Heat2D(Workload):
    """Jacobi heat diffusion on an ``n x n`` grid.

    Parameters
    ----------
    n:
        Grid points per dimension.
    sweeps:
        Jacobi iterations.
    check_every:
        A serial residual reduction runs after every this many sweeps.
    """

    name = "heat"

    def __init__(self, n: int = 4096, sweeps: int = 200, check_every: int = 25):
        if n < 16 or sweeps <= 0 or check_every <= 0:
            raise ValueError("need n >= 16 and positive sweeps/check_every")
        self.n = n
        self.sweeps = sweeps
        self.check_every = check_every

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "Heat2D":
        """Calibrated instance for a platform preset."""
        kwargs.setdefault("n", _PLATFORM_N.get(platform.name, 4096))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def _sweep_work(self, platform: PlatformSpec) -> float:
        cells = float(self.n) ** 2
        # 5-point stencil: ~6 flops and ~2 doubles of traffic per cell;
        # the binding constraint on modern cores is the traffic.
        traffic_gb = 16.0 * cells / 1e9
        return self.stream_seconds(traffic_gb, platform)

    def _check_work(self, platform: PlatformSpec) -> float:
        return self.compute_seconds(2.0 * self.n**2 / self.check_every, platform)

    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        sweep = self._sweep_work(platform)
        check = self._check_work(platform)
        for it in range(self.sweeps):
            yield Region(
                name=f"heat-sweep-{it}",
                total_work=sweep,
                mem_demand=platform.core_stream_gbs * 0.7,
                schedule="static",
                imbalance=0.02,   # boundary rows
                sycl_efficiency=0.80,
            )
            if (it + 1) % self.check_every == 0:
                yield Region(
                    name=f"heat-check-{it}",
                    total_work=check,
                    serial=True,
                    sycl_efficiency=0.9,
                )

    def total_work(self, platform: PlatformSpec) -> float:
        checks = self.sweeps // self.check_every
        return self.sweeps * self._sweep_work(platform) + checks * self._check_work(platform)
