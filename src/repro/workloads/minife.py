"""MiniFE mini-application model (implicit finite elements, CG solve).

Structure mirrors the real mini-app: a setup phase (serial mesh/graph
construction plus a parallel matrix assembly), then a conjugate-gradient
loop where every iteration runs

* one SpMV over a 27-point stencil (the bandwidth-heavy bulk),
* two dot products (tiny regions ending in serial reductions),
* three axpy/waxpy vector updates (streaming, medium).

The many small barrier-separated regions per iteration are what make
MiniFE the paper's most noise-sensitive OpenMP workload (Table 5's
+100% rows): any preemption inside a region stalls the iteration, and
there are thousands of regions.  The HeCBench SYCL port also submits a
kernel per region, which is why its raw SYCL times are ~2x OpenMP.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["MiniFE"]

#: cube dimensions per platform (nx = ny = nz)
_PLATFORM_NX = {
    "intel-9700kf": 72,
    "amd-9950x3d": 84,
    "a64fx": 128,
    "a64fx-reserved": 128,
}

_BYTES_PER_NNZ = 12.0   # value + column index, streamed
_BYTES_PER_ROW = 24.0   # x gather + y store (amortised)


class MiniFE(Workload):
    """CG solve on an ``nx**3`` hexahedral mesh.

    Parameters
    ----------
    nx:
        Mesh points per dimension.
    cg_iters:
        Conjugate-gradient iterations (MiniFE default caps at 200).
    """

    name = "minife"

    def __init__(self, nx: int = 72, cg_iters: int = 150):
        if nx < 4 or cg_iters <= 0:
            raise ValueError("nx must be >= 4 and cg_iters positive")
        self.nx = nx
        self.cg_iters = cg_iters

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "MiniFE":
        """Calibrated instance for a platform preset."""
        kwargs.setdefault("nx", _PLATFORM_NX.get(platform.name, 72))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Matrix rows (mesh nodes)."""
        return self.nx**3

    @property
    def nnz(self) -> int:
        """Nonzeros of the 27-point stencil matrix (interior estimate)."""
        return 27 * self.n_rows

    def _spmv_work(self, platform: PlatformSpec) -> float:
        traffic_gb = (self.nnz * _BYTES_PER_NNZ + self.n_rows * _BYTES_PER_ROW) / 1e9
        return self.stream_seconds(traffic_gb, platform)

    def _vector_work(self, platform: PlatformSpec) -> float:
        # axpy: 3 streams of n_rows doubles
        traffic_gb = 3.0 * 8.0 * self.n_rows / 1e9
        return self.stream_seconds(traffic_gb, platform)

    def _dot_work(self, platform: PlatformSpec) -> float:
        traffic_gb = 2.0 * 8.0 * self.n_rows / 1e9
        return self.stream_seconds(traffic_gb, platform)

    def _assembly_work(self, platform: PlatformSpec) -> float:
        # FE operator assembly: ~400 flops per element
        elements = (self.nx - 1) ** 3
        return self.compute_seconds(400.0 * elements, platform)

    def _setup_serial_work(self, platform: PlatformSpec) -> float:
        # Mesh generation and CSR graph construction, ~150 ops per row
        return self.compute_seconds(150.0 * self.n_rows, platform)

    # ------------------------------------------------------------------
    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        yield Region(
            name="minife-setup",
            total_work=self._setup_serial_work(platform),
            serial=True,
            sycl_efficiency=0.95,
        )
        yield Region(
            name="minife-assembly",
            total_work=self._assembly_work(platform),
            mem_demand=2.0,
            schedule="static",
            imbalance=0.05,   # boundary elements are cheaper
            sycl_efficiency=0.60,
        )
        spmv = self._spmv_work(platform)
        dot = self._dot_work(platform)
        axpy = self._vector_work(platform)
        for it in range(self.cg_iters):
            yield Region(
                name=f"cg-spmv-{it}",
                total_work=spmv,
                mem_demand=platform.core_stream_gbs,
                schedule="static",
                imbalance=0.03,  # stencil boundary rows
                sycl_efficiency=0.52,
            )
            for d in range(2):
                yield Region(
                    name=f"cg-dot{d}-{it}",
                    total_work=dot,
                    mem_demand=platform.core_stream_gbs,
                    schedule="static",
                    imbalance=0.01,
                    reduction=True,
                    sycl_efficiency=0.62,
                )
            for a in range(3):
                yield Region(
                    name=f"cg-axpy{a}-{it}",
                    total_work=axpy,
                    mem_demand=platform.core_stream_gbs,
                    schedule="static",
                    imbalance=0.01,
                    sycl_efficiency=0.62,
                )

    def total_work(self, platform: PlatformSpec) -> float:
        per_iter = (
            self._spmv_work(platform)
            + 2.0 * self._dot_work(platform)
            + 3.0 * self._vector_work(platform)
        )
        return (
            self._setup_serial_work(platform)
            + self._assembly_work(platform)
            + self.cg_iters * per_iter
        )

    def estimate_duration(self, platform: PlatformSpec, n_threads: int) -> float:
        agg_bw_scale = min(
            1.0, platform.bandwidth_gbs / (n_threads * platform.core_stream_gbs)
        )
        parallel = (self.total_work(platform) - self._setup_serial_work(platform)) / (
            n_threads * agg_bw_scale
        )
        return self._setup_serial_work(platform) + parallel
