"""N-body benchmark model (HeCBench ``nbody``).

An all-pairs gravitational step: for each of ``steps`` iterations one
large compute-bound parallel region evaluates ~20 flops per body pair,
followed by a tiny serial integration/bookkeeping section.  This is the
paper's compute-bound pole: almost no memory traffic, so housekeeping
cores cost it real throughput (Table 3 baselines) while static
scheduling makes it highly exposed to preemption noise.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtimes.base import Region
from repro.sim.platform import PlatformSpec
from repro.workloads.base import Workload

__all__ = ["NBody"]

#: flops per body-pair interaction (force kernel, rsqrt included)
_FLOPS_PER_PAIR = 20.0

#: problem sizes per platform, sized to land near the paper's baselines
_PLATFORM_BODIES = {
    "intel-9700kf": 24000,
    "amd-9950x3d": 38000,
    "a64fx": 44000,
    "a64fx-reserved": 44000,
}


class NBody(Workload):
    """All-pairs N-body with ``steps`` time steps.

    Parameters
    ----------
    n_bodies:
        Number of bodies (flops scale with the square).
    steps:
        Time steps; each is one parallel force region plus a serial
        integration.
    """

    name = "nbody"

    def __init__(self, n_bodies: int = 24000, steps: int = 10):
        if n_bodies <= 0 or steps <= 0:
            raise ValueError("n_bodies and steps must be positive")
        self.n_bodies = n_bodies
        self.steps = steps

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "NBody":
        """Calibrated instance for a platform preset."""
        kwargs.setdefault("n_bodies", _PLATFORM_BODIES.get(platform.name, 24000))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def _force_work(self, platform: PlatformSpec) -> float:
        flops = _FLOPS_PER_PAIR * float(self.n_bodies) ** 2
        return self.compute_seconds(flops, platform)

    def _integrate_work(self, platform: PlatformSpec) -> float:
        return self.compute_seconds(12.0 * self.n_bodies, platform)

    def regions(self, platform: PlatformSpec, n_threads: int) -> Iterator[Region]:
        force = self._force_work(platform)
        integrate = self._integrate_work(platform)
        for step in range(self.steps):
            yield Region(
                name=f"nbody-forces-{step}",
                total_work=force,
                mem_demand=0.4,        # positions fit in LLC, trickle traffic
                schedule="static",
                imbalance=0.015,       # cache / SMT co-location jitter
                sycl_efficiency=0.74,  # HeCBench SYCL kernel vs OpenMP
            )
            yield Region(
                name=f"nbody-integrate-{step}",
                total_work=integrate,
                serial=True,
                sycl_efficiency=0.9,
            )

    def total_work(self, platform: PlatformSpec) -> float:
        return self.steps * (self._force_work(platform) + self._integrate_work(platform))
