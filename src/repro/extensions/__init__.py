"""Extensions beyond the paper's evaluation (its §7 future work).

* :mod:`repro.extensions.hpas` — synthetic anomaly generators in the
  style of HPAS (Ates et al., ICPP'19), the baseline injector the paper
  contrasts its trace-replay approach against: fixed-shape CPU
  occupation and memory-bandwidth interference, no trace required.
* :mod:`repro.extensions.memnoise` — memory-bandwidth noise injection,
  the extension the paper names first among future directions ("noise
  injection was restricted to CPU occupation noise").
* :mod:`repro.extensions.ionoise` — I/O interference (completion
  interrupt storms + writeback flusher bursts), the paper's other named
  future-work direction.
"""

from repro.extensions.hpas import (
    HPASAnomaly,
    cpu_occupy,
    memory_bandwidth,
    cache_thrash,
)
from repro.extensions.memnoise import (
    MemoryNoiseEvent,
    MemoryNoiseConfig,
    MemoryNoiseInjector,
)
from repro.extensions.ionoise import IoBurst, IoNoiseConfig, IoNoiseInjector

__all__ = [
    "HPASAnomaly",
    "cpu_occupy",
    "memory_bandwidth",
    "cache_thrash",
    "MemoryNoiseEvent",
    "MemoryNoiseConfig",
    "MemoryNoiseInjector",
    "IoBurst",
    "IoNoiseConfig",
    "IoNoiseInjector",
]
