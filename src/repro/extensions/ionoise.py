"""I/O-interference noise injection (paper §7 future work).

The paper's injector covers CPU occupation and names "I/O-related
interference" (with memory noise) as the extension needed next.  On a
real machine heavy I/O disturbs compute through two channels:

* **completion interrupts** — block-device IRQs and their softirq
  bottom halves, firing at high rate on the CPUs that submitted the
  I/O (irq-class: they preempt everything);
* **writeback kworkers** — flusher threads draining the page cache
  (thread-class: they timeshare, and idle housekeeping cores absorb
  them).

An :class:`IoNoiseConfig` describes a burst of both, and the injector
replays it through the ordinary scheduler machinery, so every
mitigation-strategy interaction (housekeeping absorption of flushers,
RT stickiness of IRQs) applies automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.machine import Machine
from repro.sim.task import SchedPolicy, Task, TaskKind

__all__ = ["IoBurst", "IoNoiseConfig", "IoNoiseInjector"]


@dataclass(frozen=True)
class IoBurst:
    """One I/O episode (e.g. a checkpoint write or log flush).

    Parameters
    ----------
    start, duration:
        The episode's window in seconds.
    irq_rate:
        Completion interrupts per second during the window.
    irq_duration:
        CPU time per completion interrupt (µs-scale).
    irq_cpus:
        CPUs receiving the completions (the submitting cores; block
        IRQs are steered, so they stay put like the paper's irq noise).
    flush_cpu_time:
        Total kworker/flusher CPU-seconds spread over the window.
    flush_segments:
        Number of flusher wakeups the CPU time is split into.
    """

    start: float
    duration: float
    irq_rate: float = 2000.0
    irq_duration: float = 8e-6
    irq_cpus: tuple[int, ...] = (0,)
    flush_cpu_time: float = 0.05
    flush_segments: int = 20

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("burst needs start >= 0 and duration > 0")
        if self.irq_rate < 0 or self.irq_duration < 0:
            raise ValueError("irq parameters must be non-negative")
        if self.flush_cpu_time < 0 or self.flush_segments <= 0:
            raise ValueError("flush parameters invalid")
        if not self.irq_cpus and self.irq_rate > 0:
            raise ValueError("irq_rate > 0 needs target cpus")

    def total_irq_busy(self) -> float:
        """CPU-seconds consumed by completion interrupts."""
        return self.irq_rate * self.duration * self.irq_duration * len(self.irq_cpus)


class IoNoiseConfig:
    """A replayable schedule of I/O bursts."""

    def __init__(self, bursts: list[IoBurst], meta: Optional[dict] = None):
        self.bursts = sorted(bursts, key=lambda b: b.start)
        self.meta = dict(meta) if meta else {}

    @property
    def n_bursts(self) -> int:
        """Number of I/O episodes."""
        return len(self.bursts)

    def total_busy_time(self) -> float:
        """CPU-seconds of interference (interrupts + flushers)."""
        return sum(b.total_irq_busy() + b.flush_cpu_time for b in self.bursts)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise schedule + metadata to JSON."""
        return json.dumps(
            {
                "meta": self.meta,
                "bursts": [
                    {
                        "start": b.start,
                        "duration": b.duration,
                        "irq_rate": b.irq_rate,
                        "irq_duration": b.irq_duration,
                        "irq_cpus": list(b.irq_cpus),
                        "flush_cpu_time": b.flush_cpu_time,
                        "flush_segments": b.flush_segments,
                    }
                    for b in self.bursts
                ],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "IoNoiseConfig":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            [
                IoBurst(
                    start=d["start"],
                    duration=d["duration"],
                    irq_rate=d["irq_rate"],
                    irq_duration=d["irq_duration"],
                    irq_cpus=tuple(d["irq_cpus"]),
                    flush_cpu_time=d["flush_cpu_time"],
                    flush_segments=d["flush_segments"],
                )
                for d in payload["bursts"]
            ],
            payload.get("meta"),
        )


class IoNoiseInjector:
    """Replays an :class:`IoNoiseConfig` on a machine.

    Interrupt aggregation: per-completion events at 2 kHz would swamp
    the event loop, so completions are coalesced into millisecond-scale
    irq-class slices per target CPU whose total busy time matches the
    configured rate — the same fidelity/efficiency trade the simulator
    makes for timer ticks.
    """

    #: coalescing quantum for completion interrupts
    IRQ_SLICE = 1e-3

    def __init__(
        self,
        config: IoNoiseConfig,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        """``rng`` (e.g. a per-source spawn from the run's generator)
        takes precedence over ``seed``; the flusher segmentation is the
        injector's only stochastic element."""
        if config.n_bursts == 0:
            raise ValueError("refusing to inject an empty I/O-noise configuration")
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.injected_events = 0
        self._launched = False

    def launch(self, machine: Machine) -> None:
        """Arm every burst at the current (barrier) time."""
        if self._launched:
            raise RuntimeError("injector instances are single-use")
        self._launched = True
        for burst in self.config.bursts:
            self._arm_burst(machine, burst)

    # ------------------------------------------------------------------
    def _arm_burst(self, machine: Machine, burst: IoBurst) -> None:
        now = machine.engine.now
        # irq-class completion slices, one stream per submitting CPU
        if burst.irq_rate > 0 and burst.irq_duration > 0:
            busy_per_slice = burst.irq_rate * self.IRQ_SLICE * burst.irq_duration
            n_slices = max(1, int(round(burst.duration / self.IRQ_SLICE)))
            for cpu in burst.irq_cpus:
                for i in range(n_slices):
                    t = max(now, burst.start + i * self.IRQ_SLICE)
                    machine.engine.schedule(
                        t, self._fire_irq_slice, machine, cpu, busy_per_slice
                    )
        # thread-class flusher segments, unbound (kworkers roam)
        if burst.flush_cpu_time > 0:
            parts = self.rng.exponential(1.0, size=burst.flush_segments)
            parts = parts / parts.sum() * burst.flush_cpu_time
            offsets = np.sort(self.rng.uniform(0.0, burst.duration, size=burst.flush_segments))
            for dur, off in zip(parts, offsets):
                machine.engine.schedule(
                    max(now, burst.start + float(off)),
                    self._fire_flush,
                    machine,
                    float(dur),
                )

    def _fire_irq_slice(self, machine: Machine, cpu: int, busy: float) -> None:
        task = Task(
            "inject:nvme-completion",
            policy=SchedPolicy.FIFO,
            rt_priority=90,
            kind=TaskKind.IRQ_NOISE,
            work=busy,
        )
        self.injected_events += 1
        machine.scheduler.submit(task, hint=cpu)

    def _fire_flush(self, machine: Machine, duration: float) -> None:
        task = Task(
            "inject:kworker-flush",
            policy=SchedPolicy.OTHER,
            kind=TaskKind.THREAD_NOISE,
            work=duration,
        )
        self.injected_events += 1
        machine.scheduler.submit(task)
