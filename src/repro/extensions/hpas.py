"""HPAS-style synthetic anomaly generators.

HPAS (Ates et al., *HPAS: An HPC Performance Anomaly Suite*, ICPP'19)
injects *synthetic* anomalies with fixed shapes — a CPU hog, a memory
bandwidth hog, a cache thrasher.  The paper argues such generators
"fail to capture the complexity or variability of real-world system
noise" and replaces them with trace replay; this module implements the
synthetic baselines so the two approaches can be compared on the same
substrate (see ``examples``/benchmarks).

Each generator returns a :class:`~repro.core.config.NoiseConfig` (CPU
occupation) or a
:class:`~repro.extensions.memnoise.MemoryNoiseConfig` (bandwidth), so
the regular injectors replay them unchanged.
"""

from __future__ import annotations

import enum

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.extensions.memnoise import MemoryNoiseConfig, MemoryNoiseEvent

__all__ = ["HPASAnomaly", "cpu_occupy", "memory_bandwidth", "cache_thrash"]


class HPASAnomaly(enum.Enum):
    """The HPAS anomaly families reproduced here."""

    CPU_OCCUPY = "cpuoccupy"
    MEMORY_BANDWIDTH = "membw"
    CACHE_THRASH = "cachecopy"


def cpu_occupy(
    start: float,
    duration: float,
    cpus: tuple[int, ...],
    utilization: float = 1.0,
    period: float = 10e-3,
) -> NoiseConfig:
    """HPAS ``cpuoccupy``: a synthetic hog on each listed CPU.

    ``utilization`` < 1 produces a square-wave hog (busy for
    ``utilization * period`` out of every ``period``), which is how the
    HPAS tool implements partial occupation.  Events replay as
    ``SCHED_OTHER`` thread noise — HPAS runs as an ordinary process.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1]: {utilization!r}")
    if duration <= 0 or period <= 0:
        raise ValueError("duration and period must be positive")
    if not cpus:
        raise ValueError("need at least one target cpu")
    events_per_cpu: dict[int, list[ConfigEvent]] = {}
    for cpu in cpus:
        events = []
        if utilization >= 1.0:
            events.append(_hog_event(start, duration))
        else:
            busy = utilization * period
            n_periods = max(1, round(duration / period))
            for i in range(n_periods):
                t = start + i * period
                events.append(_hog_event(t, min(busy, start + duration - t)))
        events_per_cpu[cpu] = events
    return NoiseConfig(
        events_per_cpu,
        meta={"generator": HPASAnomaly.CPU_OCCUPY.value, "utilization": utilization},
    )


def _hog_event(start: float, duration: float) -> ConfigEvent:
    return ConfigEvent(
        start=start,
        duration=duration,
        policy="SCHED_OTHER",
        rt_priority=0,
        weight=1.0,
        etype=EventType.THREAD,
        source="hpas-cpuoccupy",
    )


def memory_bandwidth(
    start: float,
    duration: float,
    bandwidth_gbs: float,
    streams: int = 1,
) -> MemoryNoiseConfig:
    """HPAS ``membw``: synthetic streaming hogs saturating DRAM."""
    if streams <= 0:
        raise ValueError("streams must be positive")
    events = [
        MemoryNoiseEvent(
            start=start,
            duration=duration,
            bandwidth_gbs=bandwidth_gbs / streams,
            source=f"hpas-membw-{i}",
        )
        for i in range(streams)
    ]
    return MemoryNoiseConfig(
        events, meta={"generator": HPASAnomaly.MEMORY_BANDWIDTH.value}
    )


def cache_thrash(
    start: float,
    duration: float,
    cpus: tuple[int, ...],
    bandwidth_gbs: float = 8.0,
) -> MemoryNoiseConfig:
    """HPAS ``cachecopy``: per-CPU copy loops that evict shared cache.

    In this substrate cache pollution manifests as extra memory traffic
    from the victims, modelled as a per-CPU bandwidth draw.
    """
    if not cpus:
        raise ValueError("need at least one target cpu")
    events = [
        MemoryNoiseEvent(
            start=start,
            duration=duration,
            bandwidth_gbs=bandwidth_gbs,
            source=f"hpas-cachecopy-{cpu}",
        )
        for cpu in cpus
    ]
    return MemoryNoiseConfig(events, meta={"generator": HPASAnomaly.CACHE_THRASH.value})
