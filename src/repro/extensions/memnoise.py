"""Memory-bandwidth noise injection (paper §7 future work).

The paper's injector replays *CPU occupation* noise only; its stated
first extension is memory interference.  This module provides it: a
memory-noise event occupies a CPU **and** pulls a configured DRAM
bandwidth, so co-running streaming workloads slow down through the
machine's saturating memory model while compute-bound workloads barely
notice — exactly the asymmetry the paper's discussion predicts
("given the consistent accuracy for memory-bound benchmarks, we infer
that the tested worst-case noise contained minimal memory activity").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.sim.machine import Machine
from repro.sim.task import SchedPolicy, Task, TaskKind

__all__ = ["MemoryNoiseEvent", "MemoryNoiseConfig", "MemoryNoiseInjector"]


@dataclass(frozen=True)
class MemoryNoiseEvent:
    """One memory-hog burst."""

    start: float
    duration: float          # CPU-seconds the hog runs
    bandwidth_gbs: float     # DRAM bandwidth it pulls at full speed
    source: str = "membw-hog"

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("event needs start >= 0 and duration > 0")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "start_time": self.start,
            "duration": self.duration,
            "bandwidth_gbs": self.bandwidth_gbs,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MemoryNoiseEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start=d["start_time"],
            duration=d["duration"],
            bandwidth_gbs=d["bandwidth_gbs"],
            source=d.get("source", "membw-hog"),
        )


class MemoryNoiseConfig:
    """A replayable schedule of memory-hog bursts."""

    def __init__(self, events: list[MemoryNoiseEvent], meta: Optional[dict] = None):
        self.events = sorted(events, key=lambda e: e.start)
        self.meta = dict(meta) if meta else {}

    @property
    def n_events(self) -> int:
        """Number of bursts in the schedule."""
        return len(self.events)

    def total_traffic_gb(self) -> float:
        """Upper bound on DRAM traffic the config would generate."""
        return sum(e.duration * e.bandwidth_gbs for e in self.events)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise schedule + metadata to JSON."""
        return json.dumps(
            {"meta": self.meta, "events": [e.to_dict() for e in self.events]},
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "MemoryNoiseConfig":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            [MemoryNoiseEvent.from_dict(d) for d in payload["events"]],
            payload.get("meta"),
        )


class MemoryNoiseInjector:
    """Replays a :class:`MemoryNoiseConfig` on a machine.

    Hog tasks run under ``SCHED_OTHER`` without affinity (like the
    paper's injector processes) but carry a memory demand: on an
    otherwise idle CPU they are invisible to compute-bound work yet
    throttle bandwidth-bound threads machine-wide.
    """

    def __init__(self, config: MemoryNoiseConfig):
        if config.n_events == 0:
            raise ValueError("refusing to inject an empty memory-noise configuration")
        self.config = config
        self.injected_events = 0
        self._launched = False

    def launch(self, machine: Machine) -> None:
        """Arm all bursts at the current (barrier) time."""
        if self._launched:
            raise RuntimeError("injector instances are single-use")
        self._launched = True
        for event in self.config.events:
            machine.engine.schedule(
                max(event.start, machine.engine.now), self._fire, machine, event
            )

    def _fire(self, machine: Machine, event: MemoryNoiseEvent) -> None:
        task = Task(
            f"inject:{event.source}",
            policy=SchedPolicy.OTHER,
            kind=TaskKind.THREAD_NOISE,
            work=event.duration,
            mem_demand=event.bandwidth_gbs,
        )
        self.injected_events += 1
        machine.scheduler.submit(task)
