"""Figure 1 — schedbench variability: A64FX with vs without reserved
OS cores, across schedule types and chunk sizes.

Paper's motivation claim: without reserved cores the same system shows
substantially higher execution-time variability.
"""

from repro.harness import campaigns

from conftest import once


def test_fig1_schedbench(benchmark, settings, publish):
    result = once(
        benchmark,
        lambda: campaigns.figure1(
            settings, schedules=("static", "dynamic", "guided"), chunks=(1, 8, 64)
        ),
    )
    publish("fig1", result.render())

    assert len(result.x_labels) == 9
    # the unreserved system is the variable one
    assert result.variability_ratio() > 2.0
    # static schedules expose the most variability on the unreserved box
    unres = dict(zip(result.x_labels, result.series["A64FX:w/o"]))
    res = dict(zip(result.x_labels, result.series["A64FX:reserved"]))
    assert unres["st:1"][1] > res["st:1"][1]
