"""§5.1 runlevel-3 check — disabling the GUI reduces variability but
does not change the trends (the paper's control experiment)."""

from repro.harness import campaigns

from conftest import once


def test_ablation_runlevel3(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.runlevel3_study(settings))
    publish("ablation_runlevel3", result.render())

    # GUI-off should not be *more* variable than GUI-on
    assert result.sd_runlevel3 <= result.sd_gui * 1.5


def test_runlevel3_trends_unchanged(benchmark, settings, publish):
    """Housekeeping still wins without the GUI (trends unchanged)."""
    from repro.harness.experiment import ExperimentSpec

    def run():
        rows = {}
        for strat in ("Rm", "RmHK2"):
            spec = ExperimentSpec(
                platform="intel-9700kf",
                workload="nbody",
                strategy=strat,
                seed=settings.spec_seed("rl3-trend", strat),
                runlevel3=True,
                anomaly_prob=0.5,
            )
            rows[strat] = settings.cache.get_or_run(spec)
        return rows

    rows = once(benchmark, run)
    publish(
        "ablation_runlevel3_trends",
        "Runlevel-3 trends: baseline cov per strategy (GUI off)\n"
        + "\n".join(f"  {k}: cov={v.summary.cov * 100:.2f}%" for k, v in rows.items()),
    )
    assert rows["RmHK2"].summary.cov <= rows["Rm"].summary.cov * 1.2
