"""Table 6 — average relative performance change under injection.

The paper's headline comparison: SYCL averages substantially better
resilience than OpenMP in every strategy column (16.82% mean gap), and
housekeeping columns beat their non-housekeeping counterparts for both
models.  This bench reuses the cached cells of Tables 3–5.
"""

from repro.harness import campaigns
from repro.mitigation.strategies import STRATEGY_NAMES

from conftest import once


def test_table6_summary(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table6(settings))
    publish("table6", result.render())

    omp = result.averages["omp"]
    sycl = result.averages["sycl"]
    for strat in STRATEGY_NAMES:
        assert sycl[strat] <= omp[strat] + 1.0, (
            f"SYCL should be at least as resilient as OMP in column {strat}"
        )
    # housekeeping beats no-housekeeping for both models
    for model in ("omp", "sycl"):
        avg = result.averages[model]
        assert avg["RmHK2"] < avg["Rm"]
        assert avg["TPHK2"] < avg["TP"]
    # a real overall SYCL advantage, like the paper's 16.82 points
    assert result.sycl_advantage() > 0.0
