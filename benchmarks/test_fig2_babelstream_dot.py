"""Figure 2 — Babelstream *dot* kernel variability versus thread count.

Paper's sharpest motivation point: variability explodes only when all
48 cores are used on the unreserved A64FX ("no spare cores remain to
absorb OS interference"), while the reserved system stays flat.
"""

from repro.harness import campaigns

from conftest import once


def test_fig2_babelstream_dot(benchmark, settings, publish):
    result = once(
        benchmark, lambda: campaigns.figure2(settings, thread_counts=(12, 24, 36, 48))
    )
    publish("fig2", result.render())

    unres = dict(zip(result.x_labels, result.series["A64FX:w/o"]))
    res = dict(zip(result.x_labels, result.series["A64FX:reserved"]))
    # at full occupancy the unreserved system is far more variable
    assert unres["48"][1] > 3.0 * res["48"][1]
    # variability grows with occupancy on the unreserved system (fewer
    # spare cores to absorb interference) ...
    assert unres["48"][1] > 4.0 * unres["12"][1]
    # ... while the reserved system stays flat at every thread count
    assert max(p[1] for p in result.series["A64FX:reserved"]) < 2e-3
