"""Table 7 — injector replication accuracy over ten worst-case traces.

Paper: 8.57% mean absolute accuracy; seven of ten configs within 8%,
stragglers up to 23%.
"""

import numpy as np

from repro.harness import campaigns

from conftest import once


def test_table7_accuracy(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table7(settings))
    publish("table7", result.render())

    assert len(result.rows) == 10
    accs = np.array([abs(a) for _, _, a, _ in result.rows])
    # mean accuracy in the paper's ballpark (8.57%); generous ceiling
    assert result.mean_abs_accuracy() < 20.0
    # a majority of configs replicate well
    assert (accs < 12.0).sum() >= 6
