"""Benchmark-suite configuration.

Repetition counts default to a scaled-down protocol (the paper used
1000 baseline / 200 injected runs *per cell*; see EXPERIMENTS.md) so the
whole suite regenerates every table and figure in tens of minutes.
Raise them via environment variables for closer-to-paper statistics:

    REPRO_BASELINE_REPS=200 REPRO_INJECT_REPS=50 pytest benchmarks/

Results are cached in ``.repro_cache`` — an interrupted suite resumes,
and Table 6 reuses the cells of Tables 3–5 at zero cost.  Rendered
tables are written to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Scaled-down defaults, set before repro imports resolve them.
os.environ.setdefault("REPRO_BASELINE_REPS", "20")
os.environ.setdefault("REPRO_INJECT_REPS", "10")
os.environ.setdefault("REPRO_COLLECT_REPS", "40")

from repro.harness import campaigns  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def settings():
    """Shared campaign settings: one seed, one on-disk cache."""
    return campaigns.default_settings(seed=2025, collect_batches=3)


@pytest.fixture(scope="session")
def publish():
    """Write a rendered artefact to benchmarks/out/ and echo it."""

    def _publish(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish


def once(benchmark, fn):
    """Run an expensive campaign exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
