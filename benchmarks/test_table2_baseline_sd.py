"""Table 2 — average baseline standard deviation per model × strategy.

Paper's reading: OpenMP and SYCL exhibit *comparable* baseline
variability (same order of magnitude), a few ms on second-scale runs.
"""

from repro.harness import campaigns
from repro.mitigation.strategies import STRATEGY_NAMES

from conftest import once


def test_table2_baseline_sd(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table2(settings))
    publish("table2", result.render())

    omp = result.sds["omp"]
    sycl = result.sds["sycl"]
    for strat in STRATEGY_NAMES:
        assert omp[strat] >= 0 and sycl[strat] >= 0
    # comparable variability: neither model an order of magnitude worse
    omp_avg = sum(omp.values()) / len(omp)
    sycl_avg = sum(sycl.values()) / len(sycl)
    assert 0.1 < omp_avg / max(sycl_avg, 1e-9) < 10.0
