"""Extension study — thread pinning on a multi-NUMA HPC node.

The paper's §5.1/§6: on its single-socket desktops TP ≈ Rm, but it
hypothesises (citing prior HPC work) that "on large-scale systems with
several CPU clusters thread pinning can be highly beneficial" because
cross-NUMA migration is expensive.  This study runs the same
injected-noise comparison on a simulated dual-socket 64-core node
(with per-hop latencies *and* persistent remote-memory slowdowns after
cross-node migration) and contrasts it with the Intel desktop result.

Finding (recorded in EXPERIMENTS.md): under *worst-case replay*, the
escape-vs-wait trade keeps favouring roaming even with NUMA penalties —
a starved thread running at 0.3x beats one blocked at 0x for the
multi-millisecond noise events worst cases are made of.  The prior
work's pinning advantage concerns steady-state balancer churn, which a
starvation-only migration model does not produce; this bench pins down
that boundary of the reproduction.
"""

from repro.core.collection import collect_traces
from repro.core.config import generate_config
from repro.harness.experiment import ExperimentSpec
from repro.harness.report import TableBuilder

from conftest import once


def _tp_vs_rm(settings, platform):
    """(rm_delta, tp_delta, rm_migrations) under injected noise."""
    spec = ExperimentSpec(
        platform=platform,
        workload="nbody",
        model="omp",
        strategy="Rm",
        seed=settings.spec_seed("numa-study", platform),
        anomaly_prob=0.5,
    )
    coll = collect_traces(spec, reps=20, min_degradation=0.05, max_batches=3)
    config = generate_config(coll.worst_trace, coll.profile)
    deltas = {}
    for strategy in ("Rm", "TP"):
        s = spec.with_(strategy=strategy, anomaly_prob=0.0, seed=spec.seed + 17)
        base = settings.cache.get_or_run(s)
        inj = settings.cache.get_or_run(s.with_(seed=s.seed + 1_000_003), noise_config=config)
        deltas[strategy] = (inj.mean / base.mean - 1.0) * 100.0
    return deltas


def test_extension_numa_pinning(benchmark, settings, publish):
    def run():
        return {
            "intel-9700kf": _tp_vs_rm(settings, "intel-9700kf"),
            "hpc-2s64": _tp_vs_rm(settings, "hpc-2s64"),
        }

    results = once(benchmark, run)

    tb = TableBuilder(["platform", "Rm delta", "TP delta", "TP - Rm"])
    for plat, deltas in results.items():
        tb.add_row(
            plat,
            f"{deltas['Rm']:+.1f}%",
            f"{deltas['TP']:+.1f}%",
            f"{deltas['TP'] - deltas['Rm']:+.1f}pp",
        )
    publish(
        "extension_numa_pinning",
        "Extension: thread pinning vs roaming under injected noise\n" + tb.render(),
    )

    # Both platforms show a real injected hit, and TP never beats Rm
    # under worst-case replay in this substrate (the desktop result the
    # paper reports; the HPC hypothesis is the documented open gap).
    for plat, deltas in results.items():
        assert deltas["Rm"] > 5.0, f"{plat}: injection too weak to compare"
        assert deltas["TP"] >= deltas["Rm"] - 2.0
