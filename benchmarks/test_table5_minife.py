"""Table 5 — MiniFE under noise injection (the barrier-heavy extreme).

Shapes: MiniFE's OMP rows show the largest degradations of the three
workloads; under heavy AMD noise, Rm beats TP for OMP (roaming threads
escape pinned starvation, §5.2); SYCL remains the more resilient model.
"""

from repro.harness import campaigns

from conftest import once


def test_table5_minife(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table5(settings))
    publish("table5", result.render())

    amd_rows = {r.label: r for r in result.rows_by_platform["amd-9950x3d"]}
    assert len(amd_rows) == 8, "AMD MiniFE table has #1 and #2 config rows"

    for plat, rows in result.rows_by_platform.items():
        by_label = {r.label: r for r in rows}
        for omp_label in [l for l in by_label if l.startswith("OMP")]:
            sycl_label = omp_label.replace("OMP", "SYCL")
            if sycl_label in by_label:
                assert (
                    by_label[sycl_label].deltas["Rm"]
                    <= by_label[omp_label].deltas["Rm"] + 1.0
                )

    # §5.2: on AMD, Roam-omp decently outperforms TP-omp under injection
    for label in ("OMP #1", "OMP #2"):
        row = amd_rows[label]
        assert row.deltas["Rm"] <= row.deltas["TP"] + 2.0
