"""Table 4 — Babelstream under noise injection.

Shapes: degradations are modest compared with N-body/MiniFE (the
bandwidth-bound kernels soak noise), and housekeeping is essentially
free while still mitigating (§6 rec. 2).
"""

from repro.harness import campaigns

from conftest import once


def test_table4_babelstream(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table4(settings))
    publish("table4", result.render())

    for plat, rows in result.rows_by_platform.items():
        for row in rows:
            # Housekeeping never makes things substantially worse; on a
            # fully bandwidth-saturated machine it can be neutral (a
            # preempted stream's bandwidth flows to the others whether
            # or not spare cores exist) — see EXPERIMENTS.md.
            assert row.deltas["RmHK2"] <= row.deltas["Rm"] * 1.35 + 3.0
            # memory-bound: housekeeping costs almost no raw time, so
            # the HK columns' absolute times stay near the Rm column
            assert row.exec_times["RmHK2"] < row.exec_times["Rm"] * 1.15

    all_deltas = [
        d for rows in result.rows_by_platform.values() for r in rows for d in r.deltas.values()
    ]
    # the paper's Babelstream table stays below ~30%
    assert max(all_deltas) < 60.0
