"""Figures 3–6 — the pipeline's structural artefacts, regenerated live.

* Fig. 3: OSnoise trace records (sample rows);
* Fig. 4: delta refinement of the worst case vs the average profile;
* Fig. 5: the per-CPU noise configuration structure;
* Fig. 6: injector processing overview (one process per configured CPU).
"""

import json

from repro.core.collection import collect_traces
from repro.core.config import generate_config
from repro.core.events import EventType
from repro.core.refine import refine_worst_case
from repro.harness.experiment import ExperimentSpec

from conftest import once


def _collection(settings):
    spec = ExperimentSpec(
        platform="intel-9700kf",
        workload="nbody",
        model="omp",
        strategy="Rm",
        seed=settings.spec_seed("figs36"),
        anomaly_prob=0.3,
    )
    return collect_traces(spec, reps=20, min_degradation=0.03, max_batches=3)


def test_fig3_trace_sample(benchmark, settings, publish):
    coll = once(benchmark, lambda: _collection(settings))
    text = coll.worst_trace.to_osnoise_text(limit=15)
    publish("fig3", "Figure 3: sample OSnoise trace records\n" + text)

    lines = text.splitlines()
    assert lines[0].startswith("CPU")
    assert len(lines) == 16
    # the trace mixes event classes like the paper's figure
    body = "\n".join(lines[1:])
    assert "irq_noise" in body
    assert "local_timer:236" in body


def test_fig4_refinement(benchmark, settings, publish):
    coll = _collection(settings)
    refined = once(benchmark, lambda: refine_worst_case(coll.worst_trace, coll.profile))
    worst = coll.worst_trace
    text = (
        "Figure 4: delta refinement of the worst-case trace\n"
        f"  worst-case events : {worst.n_events}\n"
        f"  delta events      : {refined.n_events}\n"
        f"  noise CPU time    : {worst.total_noise_time() * 1e3:.2f}ms -> "
        f"{refined.total_noise_time() * 1e3:.2f}ms"
    )
    publish("fig4", text)

    # refinement removes the inherent hum: most events cancel outright,
    # the rest keep only their above-average residual (sub-µs residuals
    # are then dropped by the config generator's min_duration filter).
    # The anomaly's busy time survives, so total noise time shrinks only
    # by the hum's share — the *event-count* collapse is the signature.
    assert refined.n_events < worst.n_events * 0.5
    assert 0 < refined.total_noise_time() < worst.total_noise_time()
    # the tick hum specifically is almost entirely cancelled
    hum_before = worst.events_of_source("local_timer:236").sum()
    hum_after = refined.events_of_source("local_timer:236").sum()
    assert hum_after < hum_before * 0.5


def test_fig5_config_structure(benchmark, settings, publish):
    coll = _collection(settings)
    config = once(benchmark, lambda: generate_config(coll.worst_trace, coll.profile))
    payload = json.loads(config.to_json())
    preview = config.to_json(indent=2)
    publish("fig5", "Figure 5: noise configuration structure\n" + preview[:1500])

    assert "threads" in payload and payload["threads"]
    block = payload["threads"][0]
    assert set(block) == {"cpu", "noise_events"}
    event = block["noise_events"][0]
    for field in ("start_time", "duration", "policy", "event_type"):
        assert field in event
    policies = {
        e["policy"] for b in payload["threads"] for e in b["noise_events"]
    }
    assert policies <= {"SCHED_FIFO", "SCHED_OTHER"}


def test_fig6_injection_overview(benchmark, settings, publish):
    from repro.harness.experiment import run_experiment

    coll = _collection(settings)
    config = generate_config(coll.worst_trace, coll.profile)
    spec = ExperimentSpec(
        platform="intel-9700kf",
        workload="nbody",
        model="omp",
        strategy="Rm",
        seed=settings.spec_seed("fig6-inj"),
        reps=8,
    )
    injected = once(benchmark, lambda: run_experiment(spec, noise_config=config))
    text = (
        "Figure 6: injector processing overview\n"
        f"  injector processes : {config.n_cpus}\n"
        f"  events replayed    : {config.n_events}\n"
        f"  injected busy time : {config.total_busy_time() * 1e3:.1f}ms\n"
        f"  baseline mean      : {coll.mean_exec_time:.4f}s\n"
        f"  injected mean      : {injected.mean:.4f}s"
    )
    publish("fig6", text)

    assert injected.mean > coll.mean_exec_time
