"""Extension study — HPAS-style synthetic noise versus trace replay.

Quantifies the paper's §2 argument against synthetic injectors: given
the *same total CPU-busy budget*, a uniform synthetic hog neither
reproduces the recorded anomaly's magnitude nor its structure, while
the delta-refined replay tracks it closely.
"""

from repro.core.accuracy import replication_accuracy
from repro.core.collection import collect_traces
from repro.core.config import generate_config
from repro.extensions import cpu_occupy
from repro.harness.experiment import ExperimentSpec
from repro.harness.report import TableBuilder

from conftest import once


def test_extension_synthetic_vs_replay(benchmark, settings, publish):
    spec = ExperimentSpec(
        platform="intel-9700kf",
        workload="minife",
        model="omp",
        strategy="Rm",
        seed=settings.spec_seed("synth-vs-replay"),
        anomaly_prob=0.3,
    )

    def run():
        coll = collect_traces(
            spec, reps=30, min_degradation=0.08, max_batches=3,
            profile_excludes_anomalies=True,
        )
        replay_cfg = generate_config(coll.worst_trace, coll.profile)
        budget = replay_cfg.total_busy_time()
        synth_cfg = cpu_occupy(start=0.05, duration=budget / 2.0, cpus=(0, 1))
        out = {"worst": coll.worst_exec_time, "budget": budget}
        for name, cfg in (("replay", replay_cfg), ("synthetic", synth_cfg)):
            inj = settings.cache.get_or_run(
                spec.with_(reps=0, anomaly_prob=None, seed=spec.seed + 1_000_003),
                noise_config=cfg,
            )
            out[name] = inj.mean
        return out

    results = once(benchmark, run)

    replay_acc = replication_accuracy(results["replay"], results["worst"])
    synth_acc = replication_accuracy(results["synthetic"], results["worst"])
    tb = TableBuilder(["injector", "injected mean (s)", "error vs anomaly"])
    tb.add_row("trace replay", f"{results['replay']:.4f}", f"{replay_acc * 100:.2f}%")
    tb.add_row("HPAS-style synthetic", f"{results['synthetic']:.4f}", f"{synth_acc * 100:.2f}%")
    publish(
        "extension_synthetic_vs_replay",
        "Extension: synthetic vs trace-replay injection "
        f"(equal {results['budget'] * 1e3:.0f}ms CPU budget, anomaly "
        f"{results['worst']:.4f}s)\n" + tb.render(),
    )

    # the replay tracks the recorded anomaly better than the shape-less
    # synthetic hog with the same budget
    assert replay_acc < synth_acc
    assert replay_acc < 0.15
