"""Table 1 — tracing overhead (off vs on) for the three workloads.

Paper's claim: below 1% for every workload, hence tracing can stay on
for the whole evaluation.
"""

from repro.harness import campaigns

from conftest import once


def test_table1_tracing_overhead(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table1(settings))
    publish("table1", result.render())

    for workload, (off, on, pct) in result.rows.items():
        # tracing must cost something on compute-bound work but stay
        # within the paper's sub-1% bound everywhere
        assert on >= off, f"{workload}: tracing made the run faster?"
        assert pct < 1.0, f"{workload}: overhead {pct:.2f}% exceeds the paper's <1% bound"
    assert result.rows["nbody"][2] > 0.05, "compute-bound overhead should be measurable"
