"""Table 3 — N-body under noise injection (Intel + AMD).

Shapes that must hold (not absolute numbers):

* housekeeping columns (RmHK/RmHK2) show smaller degradation than Rm;
* SYCL rows degrade less than the matching OMP rows;
* TP is comparable to (not better than) Rm.
"""

import numpy as np

from repro.harness import campaigns

from conftest import once


def test_table3_nbody(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.table3(settings))
    publish("table3", result.render())

    for plat, rows in result.rows_by_platform.items():
        by_label = {r.label: r for r in rows}
        for row in rows:
            # housekeeping mitigates relative to Rm
            assert row.deltas["RmHK2"] <= row.deltas["Rm"] + 2.0, (
                f"{plat}/{row.label}: RmHK2 did not mitigate"
            )
        # SYCL more resilient than OMP under the same config
        for omp_label in [l for l in by_label if l.startswith("OMP")]:
            sycl_label = omp_label.replace("OMP", "SYCL")
            if sycl_label in by_label:
                assert (
                    by_label[sycl_label].deltas["Rm"]
                    <= by_label[omp_label].deltas["Rm"] + 1.0
                ), f"{plat}: {sycl_label} not more resilient than {omp_label}"
    # at least one configuration shows a substantial (>10%) hit, or the
    # injection would be trivial
    all_rm = [r.deltas["Rm"] for rows in result.rows_by_platform.values() for r in rows]
    assert max(all_rm) > 10.0
