"""§5.2 ablation — naive versus improved overlap merging.

The paper's compromised run: merging overlapping interrupt- and
thread-class events into pessimistic SCHED_FIFO envelopes distorted the
replay (25.74% error); keeping the classes separate and boosting
thread-noise weight restored it (5.70%).  A dense worst-case trace
(anomaly probability forced to 1) recreates the overlapping-event
conditions.
"""

from repro.harness import campaigns

from conftest import once


def test_ablation_merge(benchmark, settings, publish):
    result = once(benchmark, lambda: campaigns.merge_ablation(settings))
    publish("ablation_merge", result.render())

    # naive merging promotes thread noise into FIFO envelopes
    assert result.naive_fifo_busy > result.improved_fifo_busy
    # ... which distorts the replay relative to the improved rule
    assert result.improved_accuracy <= result.naive_accuracy + 0.02
    # the improved injector replicates within a sane band
    assert result.improved_accuracy < 0.25
