#!/usr/bin/env python
"""Record the adaptive-rep fixtures for CI-driven early stopping.

Runs the case subset in ``tests/adaptive_cases.py`` under the
reference :class:`~repro.harness.adaptive.AdaptivePolicy` and writes
their exact signatures (rep counts, stop decisions, float-hex times)
to ``tests/fixtures/adaptive_reps.json``.

The fixtures pin the adaptive determinism contract:
``tests/test_adaptive.py`` replays the same cases — serial and at
jobs=2 — and asserts exact equality.  Regenerate **only** when the
stop rule itself changes; bump ``ADAPTIVE_FIXTURE_VERSION`` in
``repro.harness.adaptive`` when you do (it is hashed into cache keys).

Usage::

    PYTHONPATH=src:. python tools/gen_adaptive_fixtures.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.adaptive_cases import (  # noqa: E402
    ADAPTIVE_FIXTURE_PATH,
    ADAPTIVE_FIXTURE_VERSION,
    FIXTURE_BUDGET,
    FIXTURE_POLICY,
    build_adaptive_cases,
    run_adaptive_case,
)


def main() -> int:
    out = {
        "format": 1,
        "version": ADAPTIVE_FIXTURE_VERSION,
        "policy": FIXTURE_POLICY.to_dict(),
        "budget": FIXTURE_BUDGET,
        "cases": [],
    }
    t0 = time.perf_counter()
    for case in build_adaptive_cases():
        t1 = time.perf_counter()
        sig = run_adaptive_case(case)
        print(
            f"  {case['name']:32s} reps={sig['reps_run']:3d}/{sig['cap']} "
            f"early={str(sig['stopped_early']):5s} {time.perf_counter() - t1:6.2f}s",
            flush=True,
        )
        out["cases"].append(sig)
    path = REPO / ADAPTIVE_FIXTURE_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=1) + "\n")
    print(f"wrote {len(out['cases'])} cases to {path} in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
