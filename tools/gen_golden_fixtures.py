#!/usr/bin/env python
"""Record the golden-equivalence fixtures for the simulator fast path.

Runs every case in ``tests/golden_cases.py`` and writes their exact
observable signatures (float-hex exec times, trace content hashes,
scheduler counters) to ``tests/fixtures/golden_equivalence.json``.

The fixtures define the bit-identity contract that scheduler/engine
optimizations must honour: ``tests/test_golden_equivalence.py`` replays
the same cases and asserts exact equality.  Regenerate **only** when a
change is *meant* to alter simulation results (a model change, not an
optimization) — and say so in the commit message.

Usage::

    PYTHONPATH=src:tests python tools/gen_golden_fixtures.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.golden_cases import FIXTURE_PATH, build_cases, run_case  # noqa: E402


def main() -> int:
    out = {"format": 1, "cases": []}
    t0 = time.perf_counter()
    for case in build_cases():
        t1 = time.perf_counter()
        sig = run_case(case)
        print(f"  {case['name']:32s} {time.perf_counter() - t1:6.2f}s", flush=True)
        out["cases"].append(sig)
    path = REPO / FIXTURE_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=1) + "\n")
    print(f"wrote {len(out['cases'])} cases to {path} "
          f"in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
