#!/usr/bin/env python3
"""Serial-vs-parallel experiment throughput microbenchmark.

Measures runs/sec of :func:`repro.harness.experiment.run_experiment`
for a representative baseline spec under the serial backend and under
process-pool backends of increasing width, verifies the bit-identity
guarantee on every configuration, and reports the speedup.  Write the
rendered table into the bench trajectory with ``--publish``
(``benchmarks/out/bench_throughput.txt``).

Usage::

    PYTHONPATH=src python tools/bench_throughput.py            # 1 vs 2 vs 4 workers
    PYTHONPATH=src python tools/bench_throughput.py --jobs 8 --reps 120 --publish

Expected scaling: reps are embarrassingly parallel, so on an idle
N-core machine the pool approaches N× (pickling traces back is the
main tax; ``--tracing`` off shows the ceiling).  On fewer cores than
workers the pool degrades gracefully to ~1×; the determinism guarantee
holds at any width.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.harness.executor import ParallelExecutor, SerialExecutor  # noqa: E402
from repro.harness.experiment import ExperimentSpec, run_experiment  # noqa: E402
from repro.harness.report import TableBuilder  # noqa: E402


def bench(spec: ExperimentSpec, executor, repeats: int) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` runs/sec and the result vector."""
    best = 0.0
    times = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        rs = run_experiment(spec, executor=executor)
        elapsed = time.perf_counter() - t0
        best = max(best, len(rs.times) / elapsed)
        times = rs.times
    return best, times


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--platform", default="intel-9700kf")
    ap.add_argument("--workload", default="nbody")
    ap.add_argument("--reps", type=int, default=60, help="reps per experiment (paper cell: 1000)")
    ap.add_argument("--seed", type=int, default=2025)
    ap.add_argument("--jobs", type=int, nargs="*", default=[2, 4], help="pool widths to probe")
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    ap.add_argument("--no-tracing", action="store_true", help="measure without the tracer")
    ap.add_argument("--publish", action="store_true", help="write benchmarks/out/bench_throughput.txt")
    args = ap.parse_args(argv)

    spec = ExperimentSpec(
        platform=args.platform,
        workload=args.workload,
        reps=args.reps,
        seed=args.seed,
        tracing=not args.no_tracing,
    )
    serial_rps, reference = bench(spec, SerialExecutor(), args.repeats)

    tb = TableBuilder(["backend", "runs/sec", "speedup", "bit-identical"])
    tb.add_row("serial", f"{serial_rps:.1f}", "1.00x", "-")
    for jobs in args.jobs:
        with ParallelExecutor(jobs) as ex:
            rps, times = bench(spec, ex, args.repeats)
        identical = bool((times == reference).all())
        tb.add_row(f"parallel jobs={jobs}", f"{rps:.1f}", f"{rps / serial_rps:.2f}x", str(identical))
        if not identical:
            print("FATAL: parallel results diverged from serial", file=sys.stderr)
            return 1

    text = (
        f"Throughput: {spec.label()} x{args.reps} reps "
        f"(tracing {'on' if spec.tracing else 'off'}, {os.cpu_count()} CPUs)\n" + tb.render()
    )
    print(text)
    if args.publish:
        out = ROOT / "benchmarks" / "out" / "bench_throughput.txt"
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n")
        print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
