#!/usr/bin/env python3
"""Simulator performance harness: throughput, profiling, regression gates.

Measures runs/sec of :func:`repro.harness.experiment.run_experiment`
for a named scenario under the serial backend (and optionally under
process-pool backends of increasing width, verifying the bit-identity
guarantee on every configuration).  Three output modes grow it beyond
a one-off microbenchmark:

* ``--profile N`` — cProfile the serial run and print the top ``N``
  functions by cumulative time (the first stop for hot-path triage);
* ``--json PATH`` — machine-readable record (scenario, reps/sec, a
  machine-speed calibration, normalized throughput, git revision, and
  a telemetry counter snapshot from one instrumented run — engine
  event counts, cache/executor activity — taken *after* the timing
  loops so instrumentation never touches the measurement); the
  committed baseline lives at ``benchmarks/out/bench_sim.json``;
* ``--check-against BASELINE`` — exit non-zero when normalized
  throughput regressed more than ``--max-regression`` (default 20%)
  vs. a previous ``--json`` record.  CI runs this as the perf smoke
  gate (see ``.github/workflows/ci.yml``).

Scenarios::

    baseline   intel-9700kf/nbody     — engine + placement dominated
    sim-bound  a64fx/minife           — scheduler rate-recompute and
                                        memory-rescale dominated (the
                                        paper-scale hot path)
    batched    a64fx/minife           — the sim-bound cell through the
                                        batched parallel path (resolved
                                        per-spec contexts + shared-memory
                                        result transport); gains scale
                                        with available cores
    adaptive   a64fx/minife           — the sim-bound cell under a ±5 %
                                        adaptive-CI stop rule; reports
                                        reps actually run per cell
    service    a64fx/minife           — the sim-bound cell submitted to
                                        the campaign service (durable
                                        queue + lease worker + shared
                                        store) and drained inline; the
                                        number is end-to-end including
                                        the queue/lease/store tax, and
                                        bit-identity to serial is a
                                        hard failure.  Also probes the
                                        queue tax itself (submit→lease /
                                        submit→complete from queue-row
                                        timestamps, notify channel on vs
                                        the poll fallback) and intra-cell
                                        sharding (the cell split into
                                        chunk sub-jobs drained by two
                                        worker processes) and the
                                        monitoring tax (submit→complete
                                        latency with a MonitorServer
                                        scraping /metrics continuously
                                        vs no monitor at all); committed
                                        baseline:
                                        benchmarks/out/bench_service.json

Usage::

    PYTHONPATH=src python tools/bench_throughput.py                     # serial vs pools
    PYTHONPATH=src python tools/bench_throughput.py --scenario sim-bound --serial-only
    PYTHONPATH=src python tools/bench_throughput.py --scenario sim-bound --profile 25
    PYTHONPATH=src python tools/bench_throughput.py --scenario sim-bound \
        --json /tmp/now.json --check-against benchmarks/out/bench_sim.json

Expected parallel scaling: reps are embarrassingly parallel, so on an
idle N-core machine the pool approaches N× (pickling traces back is the
main tax; ``--tracing`` off shows the ceiling).  On fewer cores than
workers the pool degrades gracefully to ~1×; the determinism guarantee
holds at any width.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.harness.executor import ParallelExecutor, SerialExecutor  # noqa: E402
from repro.harness.experiment import ExperimentSpec, run_experiment  # noqa: E402
from repro.harness.report import TableBuilder  # noqa: E402

#: named benchmark scenarios (platform, workload, params, default reps)
SCENARIOS = {
    "baseline": {
        "platform": "intel-9700kf",
        "workload": "nbody",
        "workload_params": {},
        "reps": 60,
    },
    # The scheduler-bound case: 48 streaming threads on A64FX drive the
    # memory-rescale cascade on nearly every completion event.
    "sim-bound": {
        "platform": "a64fx",
        "workload": "minife",
        "workload_params": {"cg_iters": 40},
        "reps": 12,
    },
    # The sim-bound cell dispatched through the batched parallel path:
    # per-spec contexts resolved once per worker, bulk results returned
    # via shared memory.  Measured against its own committed baseline
    # (benchmarks/out/bench_batched.json) as a regression gate; the
    # speedup over serial scales with the host's core count.
    "batched": {
        "platform": "a64fx",
        "workload": "minife",
        "workload_params": {"cg_iters": 40},
        "reps": 24,
        "mode": "batched",
        "jobs": 2,
        # every probed width lands in the JSON record's "points"; the
        # regression gate compares only the canonical "jobs" width
        "probe_jobs": [1, 2, 4],
    },
    # The sim-bound cell under CI-driven early stopping: reps/sec here
    # counts reps *actually run*; the interesting number is
    # mean_reps_per_cell (how much work the stop rule saved).
    "adaptive": {
        "platform": "a64fx",
        "workload": "minife",
        "workload_params": {"cg_iters": 40},
        "reps": 40,
        "mode": "adaptive",
        "adaptive": {"target_rel_hw": 0.05, "min_reps": 8, "batch": 8, "n_boot": 300},
    },
    # The sim-bound cell through the whole campaign service: submit to
    # a fresh durable queue, lease + execute with an inline worker,
    # publish to the shared store, read back.  Measures the service tax
    # over a plain serial run (each timing repeat uses a fresh queue and
    # store so nothing is served from cache).
    "service": {
        "platform": "a64fx",
        "workload": "minife",
        "workload_params": {"cg_iters": 40},
        "reps": 12,
        "mode": "service",
        # intra-cell sharding probe: the scenario cell split into
        # shard-rep chunks drained by this many worker *processes*
        "shard": 3,
        "shard_workers": 2,
    },
}


def calibrate() -> float:
    """Machine-speed proxy in Mops/s: a fixed pure-Python loop.

    Deliberately exercises none of the simulator's code, so the
    normalized throughput (reps/sec ÷ calibration) cancels host speed
    differences between the committed baseline and a CI runner while
    still tracking real simulator regressions.
    """
    n = 300_000
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0.0
        for i in range(n):
            acc += 1.0000001 * i - acc * 0.5
        best = max(best, n / (time.perf_counter() - t0))
    return best / 1e6


def telemetry_snapshot(spec: ExperimentSpec) -> dict:
    """Counter deltas from one instrumented serial run.

    Runs after the timing loops (never inside them), so the record
    documents what one run *does* — engine events executed, heap
    compactions, executor activity — without instrumentation showing
    up in the timed numbers.
    """
    from repro import telemetry

    was_enabled = telemetry.enabled()
    telemetry.configure(enabled=True)
    try:
        token = telemetry.worker_capture_begin(None)
        run_experiment(spec, executor=SerialExecutor())
        counters = telemetry.worker_capture_end(token)["counters"]
    finally:
        telemetry.configure(enabled=was_enabled)
    return counters


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def bench(spec: ExperimentSpec, executor, repeats: int) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` runs/sec and the result vector."""
    best = 0.0
    times = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        rs = run_experiment(spec, executor=executor)
        elapsed = time.perf_counter() - t0
        best = max(best, len(rs.times) / elapsed)
        times = rs.times
    return best, times


def bench_service(spec: ExperimentSpec, repeats: int) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` end-to-end service runs/sec and the result.

    Each repeat gets a fresh queue database and store directory, so the
    measured time is always submit → lease → execute → publish → read
    back, never a cache hit.
    """
    import shutil
    import tempfile

    from repro.service import JobQueue, ServiceClient, SharedResultStore, Worker

    best = 0.0
    times = None
    for _ in range(repeats):
        tmp = Path(tempfile.mkdtemp(prefix="bench_service_"))
        try:
            queue = JobQueue(tmp / "queue.sqlite")
            store = SharedResultStore(tmp / "store")
            client = ServiceClient(queue, store)
            t0 = time.perf_counter()
            client.submit(spec)
            Worker(
                queue, store, executor=SerialExecutor(), poll_s=0.01
            ).run(drain=True)
            rs = store.load_for(spec)
            elapsed = time.perf_counter() - t0
            if rs is None:
                raise RuntimeError("service run left no store entry")
            best = max(best, len(rs.times) / elapsed)
            times = rs.times
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return best, times


def bench_notify_latency(notify: bool, rounds: int = 5) -> dict:
    """Queue-tax probe: submit→lease and submit→complete latency of a
    tiny cell against an *idle* worker, from the queue's own row
    timestamps (``started_at``/``finished_at`` − ``submitted_at``).

    ``notify=True`` measures the fifo notify channel; ``False`` forces
    ``REPRO_NOTIFY=0``, i.e. the poll fallback — the difference is the
    wakeup tax the channel removes.  The cell is deliberately tiny so
    the queue tax dominates execution time.
    """
    import shutil
    import tempfile
    import threading

    from repro.service import JobQueue, ServiceClient, SharedResultStore, Worker

    prev = os.environ.get("REPRO_NOTIFY")
    os.environ["REPRO_NOTIFY"] = "1" if notify else "0"
    tmp = Path(tempfile.mkdtemp(prefix="bench_notify_"))
    try:
        queue = JobQueue(tmp / "queue.sqlite")
        store = SharedResultStore(tmp / "store")
        client = ServiceClient(queue, store)
        worker = Worker(queue, store, executor=SerialExecutor(), poll_s=0.5)
        thread = threading.Thread(target=worker.run, kwargs={"drain": False})
        thread.start()
        lease_lat, complete_lat, collect_lat = [], [], []
        try:
            for i in range(rounds):
                time.sleep(0.3)  # let the worker park idle
                tiny = ExperimentSpec(
                    platform="intel-9700kf",
                    workload="nbody",
                    reps=1,
                    seed=9000 + i,
                    tracing=False,
                )
                t0 = time.perf_counter()
                key = client.submit(tiny)
                client.wait([key], timeout=120)
                collect_lat.append(time.perf_counter() - t0)
                job = queue.job(key)
                lease_lat.append(job.started_at - job.submitted_at)
                complete_lat.append(job.finished_at - job.submitted_at)
        finally:
            worker.stop()
            queue.notify_submit.notify()  # unpark an idle fifo wait
            thread.join(timeout=30)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        return {
            "notify": notify,
            "rounds": rounds,
            "worker_poll_s": 0.5,
            "submit_to_lease_s": round(mean(lease_lat), 6),
            "submit_to_lease_min_s": round(min(lease_lat), 6),
            "submit_to_complete_s": round(mean(complete_lat), 6),
            "submit_to_collect_s": round(mean(collect_lat), 6),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
        if prev is None:
            os.environ.pop("REPRO_NOTIFY", None)
        else:
            os.environ["REPRO_NOTIFY"] = prev


def bench_monitor_overhead(monitor: bool, rounds: int = 5) -> dict:
    """Monitoring-tax probe: the notify-latency scenario re-run with a
    :class:`~repro.service.monitor.MonitorServer` scraping ``/metrics``
    continuously (``monitor=True``) vs no monitor at all.

    The delta bounds what a live observability plane adds to the
    submit→complete path.  It is expected to be ~zero: every endpoint
    is read-only, so a scrape costs the worker at most a short turn on
    the queue's connection lock.
    """
    import shutil
    import tempfile
    import threading
    import urllib.request

    from repro.service import JobQueue, MonitorServer, ServiceClient, SharedResultStore, Worker

    tmp = Path(tempfile.mkdtemp(prefix="bench_monitor_"))
    scrapes = 0
    try:
        queue = JobQueue(tmp / "queue.sqlite")
        store = SharedResultStore(tmp / "store")
        client = ServiceClient(queue, store)
        worker = Worker(queue, store, executor=SerialExecutor(), poll_s=0.5)
        thread = threading.Thread(target=worker.run, kwargs={"drain": False})
        thread.start()
        server = None
        stop_scrape = threading.Event()
        scraper = None
        if monitor:
            server = MonitorServer(queue, store).start()

            def scrape_loop():
                nonlocal scrapes
                while not stop_scrape.is_set():
                    with urllib.request.urlopen(
                        f"{server.url}/metrics", timeout=5
                    ) as resp:
                        resp.read()
                    scrapes += 1
                    stop_scrape.wait(0.02)

            scraper = threading.Thread(target=scrape_loop)
            scraper.start()
        complete_lat = []
        try:
            for i in range(rounds):
                time.sleep(0.3)  # let the worker park idle
                tiny = ExperimentSpec(
                    platform="intel-9700kf",
                    workload="nbody",
                    reps=1,
                    seed=9100 + i,
                    tracing=False,
                )
                key = client.submit(tiny)
                client.wait([key], timeout=120)
                job = queue.job(key)
                complete_lat.append(job.finished_at - job.submitted_at)
        finally:
            worker.stop()
            queue.notify_submit.notify()  # unpark an idle fifo wait
            thread.join(timeout=30)
            if scraper is not None:
                stop_scrape.set()
                scraper.join(timeout=10)
            if server is not None:
                server.stop()
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        return {
            "monitor": monitor,
            "rounds": rounds,
            "scrapes": scrapes,
            "submit_to_complete_s": round(mean(complete_lat), 6),
            "submit_to_complete_min_s": round(min(complete_lat), 6),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


_BENCH_WORKER = """\
import sys
sys.path.insert(0, {src!r})
from pathlib import Path
from repro.service import JobQueue, SharedResultStore, Worker
from repro.harness.executor import SerialExecutor
Worker(
    JobQueue(Path({queue!r})),
    SharedResultStore(Path({store!r})),
    executor=SerialExecutor(),
    poll_s=0.05,
).run(drain=True)
"""


def _drain_with_processes(tmp: Path, n_workers: int) -> float:
    """Wall seconds for ``n_workers`` subprocess workers to drain."""
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _BENCH_WORKER.format(
                    src=str(ROOT / "src"),
                    queue=str(tmp / "queue.sqlite"),
                    store=str(tmp / "store"),
                ),
            ]
        )
        for _ in range(n_workers)
    ]
    t0 = time.perf_counter()
    for proc in procs:
        proc.wait(timeout=1800)
        if proc.returncode != 0:
            raise RuntimeError(f"bench worker exited {proc.returncode}")
    return time.perf_counter() - t0


def bench_shard(
    spec: ExperimentSpec, shard: int, n_workers: int, reference: np.ndarray
) -> dict:
    """Intra-cell sharding probe: the scenario cell drained whole by one
    worker process vs. sharded into ``shard``-rep chunks drained by
    ``n_workers`` processes.  Bit-identity to the serial reference is a
    hard failure either way."""
    import math
    import shutil
    import tempfile

    from repro.service import JobQueue, ServiceClient, SharedResultStore

    walls = {}
    for label, shard_arg, workers in (
        ("whole", None, 1),
        ("sharded", shard, n_workers),
    ):
        tmp = Path(tempfile.mkdtemp(prefix="bench_shard_"))
        try:
            queue = JobQueue(tmp / "queue.sqlite")
            store = SharedResultStore(tmp / "store")
            ServiceClient(queue, store).submit(spec, shard=shard_arg)
            walls[label] = _drain_with_processes(tmp, workers)
            rs = store.load_for(spec)
            if rs is None:
                raise RuntimeError(f"{label} service run left no store entry")
            if not (rs.times == reference).all():
                raise RuntimeError(f"{label} service results diverged from serial")
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return {
        "shard": shard,
        "workers": n_workers,
        "chunks": math.ceil(spec.reps / shard),
        "whole_cell_s": round(walls["whole"], 4),
        "sharded_s": round(walls["sharded"], 4),
        "speedup": round(walls["whole"] / walls["sharded"], 3),
    }


def profile_serial(spec: ExperimentSpec, top: int) -> None:
    import cProfile
    import pstats

    pr = cProfile.Profile()
    pr.enable()
    run_experiment(spec, executor=SerialExecutor())
    pr.disable()
    stats = pstats.Stats(pr)
    stats.sort_stats("cumulative")
    print(f"cProfile: {spec.label()}, top {top} by cumulative time")
    stats.print_stats(top)


def check_against(baseline_path: Path, record: dict, max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("scenario") != record["scenario"]:
        print(
            f"FATAL: baseline scenario {baseline.get('scenario')!r} != "
            f"measured {record['scenario']!r}",
            file=sys.stderr,
        )
        return 1
    base = baseline["normalized_rps"]
    now = record["normalized_rps"]
    change = (now - base) / base
    print(
        f"perf gate [{record['scenario']}]: normalized {base:.3f} -> {now:.3f} "
        f"({change:+.1%}; raw {record['reps_per_sec']:.2f} reps/s, "
        f"calibration {record['calibration_mops']:.2f} Mops/s)"
    )
    if change < -max_regression:
        print(
            f"FAIL: normalized throughput regressed {-change:.1%} "
            f"(> {max_regression:.0%} allowed). If this is expected (e.g. a "
            "deliberate model change), refresh benchmarks/out/bench_sim.json "
            "or apply the skip-perf label (see README).",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scenario", choices=sorted(SCENARIOS), default="baseline")
    ap.add_argument("--platform", default=None, help="override scenario platform")
    ap.add_argument("--workload", default=None, help="override scenario workload")
    ap.add_argument("--reps", type=int, default=None, help="reps per experiment (paper cell: 1000)")
    ap.add_argument("--seed", type=int, default=2025)
    ap.add_argument("--jobs", type=int, nargs="*", default=[2, 4], help="pool widths to probe")
    ap.add_argument("--serial-only", action="store_true", help="skip the pool backends")
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    ap.add_argument("--no-tracing", action="store_true", help="measure without the tracer")
    ap.add_argument("--profile", type=int, metavar="N", default=0,
                    help="cProfile the serial run; print top N by cumtime")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write a machine-readable record (reps/sec, calibration, git rev)")
    ap.add_argument("--check-against", metavar="BASELINE", default=None,
                    help="fail if normalized reps/sec regressed vs. a --json baseline")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional regression for --check-against (default 0.20)")
    ap.add_argument("--publish", action="store_true", help="write benchmarks/out/bench_throughput.txt")
    args = ap.parse_args(argv)

    scenario = SCENARIOS[args.scenario]
    mode = scenario.get("mode", "serial")
    pool_jobs = scenario.get("jobs", 2)
    adaptive = None
    if scenario.get("adaptive"):
        from repro.harness.adaptive import AdaptivePolicy

        adaptive = AdaptivePolicy.from_dict(scenario["adaptive"])
    spec = ExperimentSpec(
        platform=args.platform or scenario["platform"],
        workload=args.workload or scenario["workload"],
        reps=args.reps if args.reps is not None else scenario["reps"],
        seed=args.seed,
        tracing=not args.no_tracing,
        workload_params=dict(scenario["workload_params"]),
        adaptive=adaptive,
    )

    if args.profile:
        profile_serial(spec, args.profile)
        return 0

    serial_rps, reference = bench(spec, SerialExecutor(), args.repeats)
    measured_rps = serial_rps
    transport = "serial"

    tb = TableBuilder(["backend", "runs/sec", "speedup", "bit-identical"])
    tb.add_row("serial", f"{serial_rps:.1f}", "1.00x", "-")
    points = []
    if mode == "batched":
        # The scenario's measured number *is* the batched parallel path;
        # bit-identity to serial stays a hard failure.  Every width in
        # probe_jobs is measured and recorded; the canonical "jobs"
        # width feeds the regression gate.
        for jobs in scenario.get("probe_jobs", [pool_jobs]):
            with ParallelExecutor(jobs) as ex:
                rps, times = bench(spec, ex, args.repeats)
                stats = ex.stats()
            width_transport = "shm" if stats["shm_chunks"] > 0 else "pickle"
            identical = bool((times == reference).all())
            tb.add_row(
                f"batched jobs={jobs} ({width_transport})",
                f"{rps:.1f}", f"{rps / serial_rps:.2f}x", str(identical),
            )
            if not identical:
                print("FATAL: batched results diverged from serial", file=sys.stderr)
                return 1
            points.append({"jobs": jobs, "reps_per_sec": round(rps, 4)})
            if jobs == pool_jobs:
                measured_rps = rps
                transport = width_transport
    latency = None
    shard_probe = None
    monitor_probe = None
    if mode == "service":
        # End-to-end through the durable queue + lease worker + shared
        # store; the gap to serial is the service tax per cell.
        measured_rps, times = bench_service(spec, args.repeats)
        transport = "service"
        identical = bool((times == reference).all())
        tb.add_row(
            "service (queue+worker+store)",
            f"{measured_rps:.1f}", f"{measured_rps / serial_rps:.2f}x", str(identical),
        )
        if not identical:
            print("FATAL: service results diverged from serial", file=sys.stderr)
            return 1
        # Queue-tax probes: event-driven wakeups vs the poll fallback,
        # and the scenario cell sharded across worker processes.
        latency = {
            "notify": bench_notify_latency(notify=True),
            "poll": bench_notify_latency(notify=False),
        }
        if latency["notify"]["submit_to_complete_s"] >= latency["poll"]["submit_to_complete_s"]:
            print(
                "WARNING: notify channel did not beat the poll fallback "
                f"({latency['notify']['submit_to_complete_s']*1e3:.1f} ms vs "
                f"{latency['poll']['submit_to_complete_s']*1e3:.1f} ms) — "
                "noisy host?",
                file=sys.stderr,
            )
        # Monitoring-tax probe: the same idle-worker tiny-cell latency
        # with a MonitorServer scraping /metrics continuously vs none.
        monitor_probe = {
            "off": bench_monitor_overhead(monitor=False),
            "on": bench_monitor_overhead(monitor=True),
        }
        try:
            shard_probe = bench_shard(
                spec,
                shard=scenario.get("shard", 3),
                n_workers=scenario.get("shard_workers", 2),
                reference=reference,
            )
        except RuntimeError as exc:
            print(f"FATAL: {exc}", file=sys.stderr)
            return 1
    elif not args.serial_only:
        for jobs in args.jobs:
            with ParallelExecutor(jobs) as ex:
                rps, times = bench(spec, ex, args.repeats)
            identical = bool((times == reference).all())
            tb.add_row(f"parallel jobs={jobs}", f"{rps:.1f}", f"{rps / serial_rps:.2f}x", str(identical))
            if not identical:
                print("FATAL: parallel results diverged from serial", file=sys.stderr)
                return 1

    mean_reps_per_cell = float(len(reference))
    text = (
        f"Throughput [{args.scenario}]: {spec.label()} x{spec.reps} reps "
        f"(mode {mode}, tracing {'on' if spec.tracing else 'off'}, "
        f"{os.cpu_count()} CPUs)\n" + tb.render()
    )
    if mode == "adaptive":
        text += (
            f"\nadaptive stop rule ran {mean_reps_per_cell:.0f}/{spec.reps} reps "
            f"(reps/sec above counts reps actually run)"
        )
    if latency is not None:
        text += (
            "\nqueue tax (idle worker, tiny cell, queue-row timestamps):"
            f"\n  notify on:  submit->lease {latency['notify']['submit_to_lease_s']*1e3:7.2f} ms, "
            f"submit->complete {latency['notify']['submit_to_complete_s']*1e3:7.2f} ms"
            f"\n  notify off: submit->lease {latency['poll']['submit_to_lease_s']*1e3:7.2f} ms, "
            f"submit->complete {latency['poll']['submit_to_complete_s']*1e3:7.2f} ms"
        )
    if monitor_probe is not None:
        text += (
            "\nmonitoring tax (same probe, /metrics scraped continuously):"
            f"\n  monitor off: submit->complete "
            f"{monitor_probe['off']['submit_to_complete_s']*1e3:7.2f} ms"
            f"\n  monitor on:  submit->complete "
            f"{monitor_probe['on']['submit_to_complete_s']*1e3:7.2f} ms "
            f"({monitor_probe['on']['scrapes']} scrapes served)"
        )
    if shard_probe is not None:
        text += (
            f"\nsharding: {shard_probe['chunks']} chunks x {shard_probe['shard']} reps "
            f"across {shard_probe['workers']} worker processes: "
            f"{shard_probe['whole_cell_s']:.2f}s whole -> "
            f"{shard_probe['sharded_s']:.2f}s sharded "
            f"({shard_probe['speedup']:.2f}x, bit-identical)"
        )
    print(text)

    record = None
    if args.json or args.check_against:
        calib = calibrate()
        record = {
            "scenario": args.scenario,
            "platform": spec.platform,
            "workload": spec.workload,
            "workload_params": dict(spec.workload_params),
            "reps": spec.reps,
            "tracing": spec.tracing,
            "mode": mode,
            "jobs": pool_jobs if mode == "batched" else 1,
            "transport": transport,
            "host_cpus": os.cpu_count(),
            "mean_reps_per_cell": round(mean_reps_per_cell, 2),
            "reps_per_sec": round(measured_rps, 4),
            "calibration_mops": round(calib, 4),
            "normalized_rps": round(measured_rps / calib, 4),
            "git_rev": git_rev(),
            "telemetry": telemetry_snapshot(spec),
        }
        if points:
            record["points"] = points
        if latency is not None:
            record["latency"] = latency
        if monitor_probe is not None:
            record["monitor"] = monitor_probe
        if shard_probe is not None:
            record["shard"] = shard_probe
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(record, indent=1) + "\n")
        print(f"json record written to {out}")
    if args.publish:
        out = ROOT / "benchmarks" / "out" / "bench_throughput.txt"
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n")
        print(f"\nwritten to {out}")
    if args.check_against:
        return check_against(Path(args.check_against), record, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
