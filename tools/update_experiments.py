#!/usr/bin/env python3
"""Splice the latest benchmark outputs into EXPERIMENTS.md.

Replaces the ``<!--MARKER-->`` placeholders (or previously spliced
blocks) with fenced copies of ``benchmarks/out/*.txt``.  Run after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC = ROOT / "EXPERIMENTS.md"
OUT = ROOT / "benchmarks" / "out"

#: marker -> output file
SOURCES = {
    "TABLE1": "table1.txt",
    "TABLE2": "table2.txt",
    "TABLE3": "table3.txt",
    "TABLE4": "table4.txt",
    "TABLE5": "table5.txt",
    "TABLE6": "table6.txt",
    "TABLE7": "table7.txt",
    "FIG1": "fig1.txt",
    "FIG2": "fig2.txt",
    "ABLATION": "ablation_merge.txt",
    "RL3": "ablation_runlevel3.txt",
    "NUMA": "extension_numa_pinning.txt",
}


def splice(text: str, marker: str, payload: str) -> str:
    """Replace a marker (or an earlier spliced block) with ``payload``."""
    block = f"<!--{marker}-->\n```\n{payload.rstrip()}\n```"
    pattern = re.compile(
        rf"<!--{marker}-->(?:\n```\n.*?\n```)?",
        re.DOTALL,
    )
    if not pattern.search(text):
        raise SystemExit(f"marker <!--{marker}--> not found in {DOC}")
    return pattern.sub(lambda _m: block, text, count=1)


def main() -> int:
    text = DOC.read_text()
    missing = []
    for marker, filename in SOURCES.items():
        path = OUT / filename
        if not path.exists():
            missing.append(filename)
            continue
        text = splice(text, marker, path.read_text())
    DOC.write_text(text)
    if missing:
        print(f"skipped (no output yet): {', '.join(missing)}")
    print(f"updated {DOC}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
