#!/usr/bin/env python3
"""Configuration tuning with sweeps and confidence intervals.

The paper's closing recommendation: combine traditional benchmarking
with noise injection to pick a configuration that balances average and
worst-case performance.  This example does exactly that for MiniFE on
the Intel desktop: sweep strategy × model, score each configuration on
baseline speed *and* injected degradation (with bootstrap CIs so noise
doesn't pick the winner), and print the recommendation.

Run:  python examples/configuration_tuning.py
"""

from repro import ExperimentSpec, NoiseInjectionPipeline, run_experiment, sweep
from repro.harness.bootstrap import relative_change_ci
from repro.harness.report import TableBuilder

spec = ExperimentSpec(
    platform="intel-9700kf",
    workload="minife",
    model="omp",
    strategy="Rm",
    seed=19,
    anomaly_prob=0.25,
)

print("building the worst-case noise configuration (MiniFE, Rm-OMP)...")
pipe = NoiseInjectionPipeline(spec, collect_reps=25, inject_reps=12)
pipe.build_config()
print(
    f"worst case +{pipe.collection.worst_case_degradation() * 100:.1f}% "
    f"({pipe.collection.worst_trace.meta.get('anomaly')})\n"
)

# Baseline sweep: how fast is each configuration without injection?
base = spec.with_(reps=12, anomaly_prob=0.0, seed=91)
grid = sweep(base, strategy=("Rm", "RmHK", "RmHK2", "TP"), model=("omp", "sycl"))

table = TableBuilder(
    ["strategy", "model", "baseline (s)", "injected Δ% [95% CI]", "worst injected (s)"]
)
scores = {}
for (strategy, model), baseline_rs in zip(grid.points, grid.results):
    injected = pipe.inject(base.with_(strategy=strategy, model=model))
    ci = relative_change_ci(injected.times, baseline_rs.times)
    scores[(strategy, model)] = (baseline_rs.mean, injected.summary.maximum)
    flag = "" if ci.significant else " (ns)"
    table.add_row(
        strategy,
        model.upper(),
        f"{baseline_rs.mean:.4f}",
        f"{ci.estimate:+.1f}% [{ci.low:+.1f}, {ci.high:+.1f}]{flag}",
        f"{injected.summary.maximum:.4f}",
    )

print(table.render())

# Recommendation: minimise worst injected time, tie-break on baseline.
best = min(scores, key=lambda k: (scores[k][1], scores[k][0]))
print(
    f"\nrecommendation for noise-sensitive deployments: {best[0]}-{best[1].upper()} "
    f"(worst injected {scores[best][1]:.4f}s, baseline {scores[best][0]:.4f}s)"
)
print("('ns' marks degradations whose 95% CI includes zero)")
