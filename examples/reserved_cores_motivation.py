#!/usr/bin/env python3
"""The motivation study (paper §3): reserved OS cores on A64FX.

Runs schedbench and the Babelstream *dot* kernel on the two A64FX
configurations — with firmware-reserved OS cores and without — and
shows how much run-to-run variability the reservation removes,
especially when user threads occupy every core.

Run:  python examples/reserved_cores_motivation.py
"""

from repro import ExperimentSpec, run_experiment
from repro.harness.report import TableBuilder

REPS = 25
# densified anomaly lottery so a short demo reliably shows the contrast
ANOMALY_PROB = 0.25

# ----------------------------------------------------------- schedbench
print(f"schedbench (static schedule, chunk 1), {REPS} runs per system:\n")
table = TableBuilder(["system", "mean (ms)", "sd (ms)", "max (ms)"])
for platform, label in (("a64fx", "A64FX:w/o"), ("a64fx-reserved", "A64FX:reserved")):
    rs = run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="schedbench",
            strategy="Rm",
            reps=REPS,
            seed=5,
            anomaly_prob=ANOMALY_PROB,
            workload_params={"schedule": "static", "chunk": 1},
        )
    )
    s = rs.summary
    table.add_row(label, f"{s.mean * 1e3:.2f}", f"{s.sd * 1e3:.3f}", f"{s.maximum * 1e3:.2f}")
print(table.render())

# ------------------------------------------------- babelstream dot sweep
print("\nBabelstream dot kernel vs thread count (sd in ms):\n")
table = TableBuilder(["threads", "A64FX:w/o", "A64FX:reserved"])
for threads in (12, 24, 36, 48):
    sds = {}
    for platform in ("a64fx", "a64fx-reserved"):
        rs = run_experiment(
            ExperimentSpec(
                platform=platform,
                workload="babelstream",
                strategy="Rm",
                reps=REPS,
                seed=5,
                anomaly_prob=ANOMALY_PROB,
                n_threads=threads,
                workload_params={"kernels": ("dot",)},
            )
        )
        sds[platform] = rs.sd * 1e3
    table.add_row(threads, f"{sds['a64fx']:.3f}", f"{sds['a64fx-reserved']:.3f}")
print(table.render())

print(
    "\nReading: with spare cores, OS activity is absorbed and both systems"
    "\nlook alike; at full occupancy the unreserved system's variability"
    "\nexplodes — the paper's motivation for studying software mitigations"
    "\non systems without dedicated OS cores."
)
