#!/usr/bin/env python3
"""Mitigation sweep: which strategy tolerates worst-case noise best?

Builds one worst-case noise configuration from an unmitigated (Rm)
MiniFE collection, then replays it against all six mitigation
strategies — a single row-group of the paper's Table 5, printed with
baseline cost and injected degradation side by side.

Run:  python examples/mitigation_sweep.py [platform]
"""

import sys

from repro import ExperimentSpec, NoiseInjectionPipeline, STRATEGY_NAMES, run_experiment
from repro.harness.report import TableBuilder

platform = sys.argv[1] if len(sys.argv) > 1 else "intel-9700kf"

spec = ExperimentSpec(
    platform=platform,
    workload="minife",
    model="omp",
    strategy="Rm",
    seed=7,
    anomaly_prob=0.2,  # denser anomaly lottery so a short demo finds one
)

print(f"collecting worst-case trace on {platform} (MiniFE, OpenMP, Rm)...")
pipe = NoiseInjectionPipeline(spec, collect_reps=25, inject_reps=10)
pipe.build_config()
coll = pipe.collection
print(
    f"worst case: {coll.worst_exec_time:.4f}s "
    f"(+{coll.worst_case_degradation() * 100:.1f}% over the {coll.mean_exec_time:.4f}s mean; "
    f"anomaly: {coll.worst_trace.meta.get('anomaly')})\n"
)

table = TableBuilder(["strategy", "baseline (s)", "injected (s)", "delta", "baseline cost"])
rm_baseline = None
for strategy in STRATEGY_NAMES:
    s = spec.with_(strategy=strategy, reps=10, anomaly_prob=0.0, seed=99)
    baseline = run_experiment(s)
    injected = pipe.inject(s)
    if strategy == "Rm":
        rm_baseline = baseline.mean
    delta = (injected.mean / baseline.mean - 1.0) * 100.0
    cost = (baseline.mean / rm_baseline - 1.0) * 100.0
    table.add_row(
        strategy,
        f"{baseline.mean:.4f}",
        f"{injected.mean:.4f}",
        f"{delta:+.1f}%",
        f"{cost:+.1f}%",
    )

print(table.render())
print(
    "\nReading: housekeeping (HK/HK2) absorbs most of the injected noise —"
    "\nthe paper's §6 recommendation for high-noise environments — while its"
    "\nbaseline cost depends on how compute-bound the workload is."
)
