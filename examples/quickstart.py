#!/usr/bin/env python3
"""Quickstart: the full noise-injection pipeline in ~20 lines.

Collect traced runs of an OpenMP N-body benchmark on the simulated
Intel desktop, hunt the worst case, build the delta-refined noise
configuration, replay it, and report replication accuracy — the paper's
§4 workflow end to end.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec, NoiseInjectionPipeline

# One table cell: platform + workload + programming model + mitigation.
spec = ExperimentSpec(
    platform="intel-9700kf",
    workload="nbody",
    model="omp",
    strategy="Rm",     # threads roam freely, no housekeeping
    seed=2025,
)

# Stage 1+2: trace 40 runs (hunting for a worst-case outlier), average
# the noise profile, refine the worst case, generate the config.
pipe = NoiseInjectionPipeline(spec, collect_reps=40, inject_reps=15)
config = pipe.build_config()

coll = pipe.collection
print(f"collected {len(coll.exec_times)} traced runs")
print(f"  mean execution time : {coll.clean_mean_exec_time:.4f} s (anomaly-free runs)")
print(
    f"  worst case          : {coll.worst_exec_time:.4f} s "
    f"(+{coll.worst_case_degradation() * 100:.1f}%, "
    f"anomaly: {coll.worst_trace.meta.get('anomaly')})"
)
print(
    f"  noise config        : {config.n_events} events on {config.n_cpus} CPUs, "
    f"{config.total_busy_time() * 1e3:.1f} ms of injected busy time"
)

# Stage 3: replay the worst case, repeatably.
result = pipe.run() if pipe.collection is None else None  # (already collected)
injected = pipe.inject()
print(f"\ninjected mean         : {injected.mean:.4f} s")
print(f"  degradation         : {(injected.mean / coll.clean_mean_exec_time - 1) * 100:+.1f}%")

from repro import replication_accuracy

acc = replication_accuracy(injected.mean, coll.worst_exec_time)
print(f"  replication accuracy: {acc * 100:.2f}%  (paper average: 8.57%)")
