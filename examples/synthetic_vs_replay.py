#!/usr/bin/env python3
"""Synthetic (HPAS-style) noise versus trace replay.

The paper's core argument against prior injectors: synthetic generators
like HPAS "fail to capture the complexity or variability of real-world
system noise".  This example makes that concrete on the simulated
substrate: both injectors are budgeted the *same total CPU busy time*,
but the uniform synthetic hog and the replayed worst-case trace
degrade the workload very differently — and only the replay tracks the
recorded anomaly.

Run:  python examples/synthetic_vs_replay.py
"""

from repro import ExperimentSpec, NoiseInjectionPipeline, run_experiment
from repro.core.accuracy import replication_accuracy
from repro.extensions import cpu_occupy
from repro.harness.report import TableBuilder

spec = ExperimentSpec(
    platform="intel-9700kf",
    workload="minife",
    model="omp",
    strategy="Rm",
    seed=13,
    anomaly_prob=0.25,
)

# --- trace replay: collect, refine, configure --------------------------
pipe = NoiseInjectionPipeline(spec, collect_reps=30, inject_reps=10)
replay_config = pipe.build_config()
coll = pipe.collection
budget = replay_config.total_busy_time()
print(
    f"worst case: {coll.worst_exec_time:.4f}s (+{coll.worst_case_degradation() * 100:.1f}%), "
    f"replay budget {budget * 1e3:.1f}ms of CPU busy time\n"
)

# --- synthetic: same busy-time budget as one uniform HPAS hog ----------
# Spread the identical budget evenly over the run on two CPUs.
duration = budget / 2.0
synthetic_config = cpu_occupy(start=0.05, duration=duration, cpus=(0, 1))

# --- compare ------------------------------------------------------------
baseline = run_experiment(spec.with_(reps=10, anomaly_prob=0.0, seed=77))
table = TableBuilder(["injector", "injected (s)", "delta vs baseline", "vs anomaly"])
for name, config in (("trace replay", replay_config), ("HPAS-style synthetic", synthetic_config)):
    injected = run_experiment(
        spec.with_(reps=10, anomaly_prob=0.0, seed=spec.seed + 1_000_003),
        noise_config=config,
    )
    delta = (injected.mean / baseline.mean - 1.0) * 100.0
    acc = replication_accuracy(injected.mean, coll.worst_exec_time)
    table.add_row(name, f"{injected.mean:.4f}", f"{delta:+.1f}%", f"{acc * 100:.1f}% off")

print(table.render())
print(
    "\nReading: with an identical CPU-time budget, the uniform synthetic"
    "\nhog produces a different (usually milder, always shape-less)"
    "\nslowdown, while the replayed trace reproduces the recorded anomaly"
    "\n— the reason the paper replays real traces instead."
)
