#!/usr/bin/env python3
"""OpenMP vs SYCL: raw speed against noise resilience.

For each workload, measures the baseline execution time of both
programming models and their degradation under the same injected
worst-case noise — the trade-off at the heart of the paper's Tables 3–6
and its abstract: "OpenMP consistently achieves higher raw performance,
SYCL tends to exhibit greater resilience in noisy environments."

Run:  python examples/model_comparison.py
"""

from repro import ExperimentSpec, NoiseInjectionPipeline, run_experiment
from repro.harness.report import TableBuilder

PLATFORM = "intel-9700kf"

table = TableBuilder(
    ["workload", "model", "baseline (s)", "injected (s)", "delta", "raw vs OMP"]
)

for workload in ("nbody", "babelstream", "minife"):
    spec = ExperimentSpec(
        platform=PLATFORM,
        workload=workload,
        model="omp",
        strategy="Rm",
        seed=11,
        anomaly_prob=0.2,
    )
    pipe = NoiseInjectionPipeline(spec, collect_reps=25, inject_reps=10)
    pipe.build_config()

    omp_baseline = None
    for model in ("omp", "sycl"):
        s = spec.with_(model=model, reps=10, anomaly_prob=0.0, seed=77)
        baseline = run_experiment(s)
        injected = pipe.inject(s)
        if model == "omp":
            omp_baseline = baseline.mean
        delta = (injected.mean / baseline.mean - 1.0) * 100.0
        ratio = baseline.mean / omp_baseline
        table.add_row(
            workload,
            model.upper(),
            f"{baseline.mean:.4f}",
            f"{injected.mean:.4f}",
            f"{delta:+.1f}%",
            f"{ratio:.2f}x",
        )

print(table.render())
print(
    "\nReading: SYCL pays a raw-performance premium (in-order queue"
    "\nsubmissions, kernel efficiency) but its work-stealing execution"
    "\nabsorbs preemption noise that stalls OpenMP's static regions."
)
