#!/usr/bin/env python3
"""Worst-case replay with on-disk artefacts (the operational workflow).

Demonstrates the file-based flow a performance team would use:

1. collect traces, save the worst case and the noise config as JSON;
2. days later (or on another checkout) load the config back;
3. replay it under a candidate mitigation and compare.

Run:  python examples/worst_case_replay.py
"""

import tempfile
from pathlib import Path

from repro import ExperimentSpec, NoiseConfig, collect_traces, generate_config, run_experiment
from repro.core.accuracy import replication_accuracy

workdir = Path(tempfile.mkdtemp(prefix="repro-replay-"))
spec = ExperimentSpec(
    platform="intel-9700kf",
    workload="babelstream",
    model="omp",
    strategy="Rm",
    seed=3,
    anomaly_prob=0.25,
)

# ---------------------------------------------------------------- step 1
print("step 1: trace collection")
coll = collect_traces(spec, reps=25, min_degradation=0.03, max_batches=4)
print(
    f"  {len(coll.exec_times)} runs, worst case {coll.worst_exec_time:.4f}s "
    f"(+{coll.worst_case_degradation() * 100:.1f}%)"
)

trace_path = workdir / "worst_case_trace.json"
trace_path.write_text(coll.worst_trace.to_json())
print(f"  worst-case trace -> {trace_path} ({coll.worst_trace.n_events} events)")

config = generate_config(coll.worst_trace, coll.profile, meta={"origin": spec.label()})
config_path = workdir / "noise_config.json"
config.save(config_path)
print(f"  noise config     -> {config_path} ({config.n_events} events)")

# ---------------------------------------------------------------- step 2
print("\nstep 2: reload the configuration (fresh process, another day...)")
loaded = NoiseConfig.load(config_path)
assert loaded.to_json() == config.to_json()
print(f"  loaded {loaded.n_events} events, {loaded.total_busy_time() * 1e3:.1f}ms busy, "
      f"origin: {loaded.meta['origin']}")

# ---------------------------------------------------------------- step 3
print("\nstep 3: replay against the original and a mitigated configuration")
for strategy in ("Rm", "RmHK"):
    s = spec.with_(strategy=strategy, reps=10, anomaly_prob=0.0, seed=91)
    baseline = run_experiment(s)
    injected = run_experiment(s.with_(seed=spec.seed + 1_000_003), noise_config=loaded)
    delta = (injected.mean / baseline.mean - 1.0) * 100.0
    line = (
        f"  {strategy:5s} baseline {baseline.mean:.4f}s -> injected {injected.mean:.4f}s "
        f"({delta:+.1f}%)"
    )
    if strategy == "Rm":
        acc = replication_accuracy(injected.mean, coll.worst_exec_time)
        line += f"   [replication accuracy {acc * 100:.2f}%]"
    print(line)

print(f"\nartefacts kept in {workdir}")
