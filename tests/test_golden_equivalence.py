"""Golden-equivalence suite: the simulator must be bit-identical.

The fixtures in ``tests/fixtures/golden_equivalence.json`` were
recorded (via ``tools/gen_golden_fixtures.py``) from the reference
implementation *before* the fast-path optimizations.  Every case here
re-runs the same spec and asserts the exact same observables:

* per-rep execution times, compared as ``float.hex()`` strings — any
  change in float operation order fails;
* anomaly labels and migration/preemption counters — any change in
  scheduler decision order fails;
* a sha256 of the full tracer output (event arrays + interned source
  table) — any change in the emitted noise-event stream fails.

The matrix spans >20 seeds over all five platform topologies, both
programming models, the mitigation strategies, and every noise
mechanism, so an optimization that perturbs any scheduler path shows
up as a concrete case name rather than a statistical drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.golden_cases import FIXTURE_PATH, build_cases, run_case

_FIXTURES = Path(__file__).resolve().parent.parent / FIXTURE_PATH


def _load():
    data = json.loads(_FIXTURES.read_text())
    assert data["format"] == 1
    return {c["name"]: c for c in data["cases"]}


_CASES = build_cases()


def test_fixture_covers_every_case_and_enough_seeds():
    recorded = _load()
    names = [c["name"] for c in _CASES]
    assert sorted(recorded) == sorted(names)
    seeds = {c["seed"] for c in _CASES}
    assert len(seeds) >= 20, "bit-identity contract requires >= 20 distinct seeds"


@pytest.mark.parametrize("case", _CASES, ids=lambda c: c["name"])
def test_bit_identical_to_golden_fixture(case):
    expected = _load()[case["name"]]
    actual = run_case(case)
    assert len(actual["reps"]) == len(expected["reps"])
    for i, (got, want) in enumerate(zip(actual["reps"], expected["reps"])):
        assert got == want, (
            f"{case['name']} rep {i} diverged from the golden fixture:\n"
            f"  expected {want}\n  got      {got}"
        )
