"""Self-healing tier: DLQ, store integrity, merge recovery, fsck, chaos."""

import json
import sqlite3
import time

import pytest

from repro.harness.cache import ResultCache
from repro.harness.chaos import ChaosSpec, get_chaos
from repro.harness.experiment import ExperimentSpec
from repro.service import (
    JobQueue,
    NotifyChannel,
    ServiceClient,
    SharedResultStore,
    Worker,
    fsck,
)


def spec(**kw):
    kw.setdefault("platform", "intel-9700kf")
    kw.setdefault("workload", "nbody")
    kw.setdefault("reps", 3)
    kw.setdefault("seed", 42)
    return ExperimentSpec(**kw)


def submit(queue, key, **kw):
    kw.setdefault("spec", {"k": key})
    kw.setdefault("noise", None)
    kw.setdefault("label", key)
    return queue.submit(key, **kw)


def flip_byte(path):
    raw = bytearray(path.read_bytes())
    mid = len(raw) // 2
    raw[mid] ^= 0x20
    path.write_bytes(bytes(raw))


# ----------------------------------------------------------------------
class TestDeadLetterQueue:
    def test_two_distinct_worker_deaths_quarantine(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        before = q.stats()  # the counter group is shared process-wide
        submit(q, "a")
        q.lease("w1")
        assert q.report_worker_death("w1", pid=101) == ["a"]
        job = q.job("a")
        assert job.status == "queued"  # one death: benefit of the doubt
        assert job.distinct_death_workers == 1
        q.lease("w2")
        assert q.report_worker_death("w2", pid=102) == ["a"]
        job = q.job("a")
        assert job.status == "quarantined"
        assert job.distinct_death_workers == 2
        assert job.failure["reason"] == "poison"
        assert job.failure["record"]["error"] == "PoisonJob"
        assert [d["pid"] for d in job.failure["deaths"]] == [101, 102]
        assert q.stats()["worker_deaths"] - before["worker_deaths"] == 2
        assert q.stats()["quarantined"] - before["quarantined"] == 1
        assert q.drained()  # quarantined is terminal: waiters unblock

    def test_same_worker_dying_twice_is_not_poison(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=3)
        for _ in range(2):
            q.lease("w1")
            q.report_worker_death("w1")
        job = q.job("a")
        # One distinct worker: unlucky, not poisonous.
        assert job.status == "queued"
        assert len(job.deaths) == 2 and job.distinct_death_workers == 1
        # Third death hits the attempt cap: terminal failure, not DLQ.
        q.lease("w1")
        q.report_worker_death("w1")
        job = q.job("a")
        assert job.status == "failed"
        assert job.failure["reason"] == "attempts-exhausted"
        assert job.failure["record"]["error"] == "LeaseExhausted"
        assert q.dlq_list() == []

    def test_lease_expiry_counts_as_death(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1", lease_s=0.01)
        time.sleep(0.05)
        q.lease("w2", lease_s=0.01)  # sweeps the expired lease first
        time.sleep(0.05)
        q.lease("w3", lease_s=60.0)
        job = q.job("a")
        assert job.status == "quarantined"
        workers = {d["worker"] for d in job.deaths}
        assert workers == {"w1", "w2"}
        assert "expired" in job.deaths[0]["detail"]

    def test_dlq_retry_revives_with_fresh_budget(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        before = q.stats()
        submit(q, "a")
        for worker in ("w1", "w2"):
            q.lease(worker)
            q.report_worker_death(worker)
        assert q.job("a").status == "quarantined"
        assert q.dlq_retry("a") is True
        job = q.job("a")
        assert job.status == "queued"
        assert job.attempts == 0
        assert job.deaths == [] and job.failure is None and job.error is None
        assert q.stats()["dlq_retried"] - before["dlq_retried"] == 1

    def test_dlq_retry_rejects_non_dead_letter_jobs(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        assert q.dlq_retry("a") is False  # queued, not dead-lettered
        assert q.dlq_retry("nope") is False

    def test_dlq_purge_single_and_all(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        for key in ("a", "b"):
            submit(q, key)
            for worker in (f"{key}-w1", f"{key}-w2"):
                (job,) = q.lease(worker)
                assert job.key == key
                q.report_worker_death(worker)
        assert {j.key for j in q.dlq_list()} == {"a", "b"}
        assert q.dlq_purge("a") == 1
        assert q.dlq_purge() == 1
        assert q.dlq_list() == []

    def test_release_refunds_the_attempt(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        (job,) = q.lease("w1")
        assert job.attempts == 1
        assert q.release("a", "w1") is True
        job = q.job("a")
        assert job.status == "queued" and job.attempts == 0
        assert job.deaths == []  # a clean hand-back is not a death
        assert q.release("a", "w1") is False  # no longer held

    def test_prune_preserves_quarantined_forensics(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        for worker in ("w1", "w2"):
            q.lease(worker)
            q.report_worker_death(worker)
        assert q.prune(older_than_s=0.0) == 0
        assert q.job("a").status == "quarantined"

    def test_quarantined_chunk_fails_its_parent(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        q.submit_sharded(
            "p", spec={"k": "p"}, noise=None, label="p", chunks=[(0, 2), (2, 4)]
        )
        for worker in ("w1", "w2"):
            q.lease(worker, limit=1)
            q.report_worker_death(worker)
        chunk = q.job("p:0-2")
        assert chunk.status == "quarantined"
        assert q.job("p").status == "failed"
        assert "p:0-2" in q.job("p").error


# ----------------------------------------------------------------------
class TestStoreIntegrity:
    def test_bit_flip_detected_quarantined_and_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = cache.get_or_run(spec())
        (entry,) = (tmp_path / "c").glob("*.json")
        assert json.loads(entry.read_text())["sha256"]
        flip_byte(entry)
        rs = cache.get_or_run(spec())
        assert cache.stats()["integrity_quarantined"] == 1
        assert [t.hex() for t in rs.times] == [t.hex() for t in first.times]
        # Forensics preserved out of the primary keyspace.
        assert list((tmp_path / "c").glob("*.corrupt"))
        # The re-written entry is clean: next read is a plain hit.
        cache.get_or_run(spec())
        assert cache.stats()["hits"] == 1

    def test_legacy_unsealed_entry_is_served(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = cache.get_or_run(spec())
        (entry,) = (tmp_path / "c").glob("*.json")
        data = json.loads(entry.read_text())
        del data["sha256"]
        entry.write_text(json.dumps(data))
        rs = cache.get_or_run(spec())
        assert cache.stats()["hits"] == 1
        assert [t.hex() for t in rs.times] == [t.hex() for t in first.times]

    def test_corrupt_chunk_entry_reads_as_missing(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        from repro.harness.chunkrunner import DEFAULT_RUNNER

        results = DEFAULT_RUNNER.run(spec(reps=4), None, range(0, 2), need_runs=False)
        store.store_chunk("cafef00d", 0, 2, results)
        assert store.load_chunk("cafef00d", 0, 2) is not None
        chunk = store.chunk_path("cafef00d", 0, 2)
        flip_byte(chunk)
        assert store.load_chunk("cafef00d", 0, 2) is None
        assert store.stats()["integrity_quarantined"] == 1
        assert chunk.with_suffix(chunk.suffix + ".corrupt").exists()


# ----------------------------------------------------------------------
class TestMergeSelfHealing:
    def test_lost_chunk_requeued_and_merge_retried(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        base = spec(reps=6, seed=11)
        key = client.submit(base, shard=2)
        assert queue.job(key).status == "sharded"

        worker = Worker(queue, store, worker_id="healer", poll_s=0.01)
        assert worker.run(drain=False, max_jobs=2) == 2
        # One finished slice is corrupted before the last chunk merges.
        done = [c for c in queue.children(key) if c.status == "done"]
        victim = done[0]
        flip_byte(store.chunk_path(key, victim.chunk_start, victim.chunk_stop))

        worker.run(drain=True)
        assert worker.stats()["merge_retries"] >= 1
        assert queue.job(key).status == "done"
        assert queue.counts()["failed"] == 0
        assert queue.stats()["merge_requeues"] >= 1

        # Bit-identical to an undisturbed in-process run.
        rs = client.run_cell(base)
        golden = ResultCache(tmp_path / "golden").get_or_run(base)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]


# ----------------------------------------------------------------------
class TestFsck:
    def parts(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        return queue, store, ServiceClient(queue, store, poll_s=0.01)

    def test_clean_state_reports_clean(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        client.submit(spec())
        Worker(queue, store, poll_s=0.01).run(drain=True)
        report = fsck(queue, store)
        assert report.clean
        assert report.summary() == "fsck: queue and store are consistent"

    def test_done_without_entry_detected_and_requeued(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        key = client.submit(spec())
        Worker(queue, store, poll_s=0.01).run(drain=True)
        store.entry_path(key).unlink()
        report = fsck(queue, store)
        assert report.done_without_entry == [key] and not report.repaired
        assert queue.job(key).status == "done"  # detect-only did not touch
        report = fsck(queue, store, repair=True)
        assert report.repaired and report.repairs
        assert queue.job(key).status == "queued"
        Worker(queue, store, poll_s=0.01).run(drain=True)
        assert fsck(queue, store).clean
        assert store.load_for(spec()) is not None

    def test_corrupt_entry_detected_quarantined_requeued(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        key = client.submit(spec())
        Worker(queue, store, poll_s=0.01).run(drain=True)
        flip_byte(store.entry_path(key))
        report = fsck(queue, store)
        assert report.corrupt_entries == [key]
        report = fsck(queue, store, repair=True)
        assert report.corrupt_entries == [key] and report.repairs
        assert not store.entry_path(key).exists()  # moved to .corrupt
        assert queue.job(key).status == "queued"
        Worker(queue, store, poll_s=0.01).run(drain=True)
        assert fsck(queue, store).clean

    def test_dead_worker_lease_released_through_death_path(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        key = client.submit(spec())
        queue.register_worker("w1", pid=4242)
        queue.lease("w1", lease_s=3600.0)
        # Stamp the heartbeat into the past: the worker is derived lost.
        with queue._lock:
            queue._conn.execute(
                "UPDATE workers SET heartbeat_at = heartbeat_at - 600 WHERE id = 'w1'"
            )
        report = fsck(queue, store)
        assert report.dead_worker_leases == [key]
        report = fsck(queue, store, repair=True)
        assert report.repairs
        job = queue.job(key)
        assert job.status == "queued"
        (death,) = job.deaths  # released via the death-recording path
        assert death["worker"] == "w1" and death["pid"] == 4242

    def test_orphan_chunk_files_deleted_on_repair(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        from repro.harness.chunkrunner import DEFAULT_RUNNER

        results = DEFAULT_RUNNER.run(spec(reps=2), None, range(0, 2), need_runs=False)
        store.store_chunk("deadbeef", 0, 2, results)
        report = fsck(queue, store)
        assert report.orphan_chunks == ["deadbeef.chunk-0-2.json"]
        fsck(queue, store, repair=True)
        assert not store.chunk_path("deadbeef", 0, 2).exists()
        assert fsck(queue, store).clean


# ----------------------------------------------------------------------
class TestServiceChaosProfiles:
    def test_service_profiles_never_fire_in_rep_path(self):
        for profile in ("kill-worker", "corrupt-store", "torn-fifo", "busy-storm"):
            chaos = ChaosSpec(profile=profile, seed=1, rate=1.0, persist=True)
            chaos.rep_fault(42, 0, 0)  # must be a no-op, not a ChaosError

    def test_kill_worker_noop_outside_service_workers(self):
        chaos = ChaosSpec(profile="kill-worker", seed=1, rate=1.0, persist=True)
        chaos.maybe_kill_worker("anykey", 1)  # would os._exit if armed

    def test_busy_storm_is_bounded_by_retry_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "busy-storm:3:1.0")
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        (job,) = q.lease("w1")
        assert job.key == "a"
        assert q.complete("a", "w1") is True
        # Every write weathered a storm, none escaped the retry budget.
        assert q.stats()["busy_retries"] > 0
        assert q.job("a").status == "done"

    def test_torn_fifo_drops_wakeups_not_correctness(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "torn-fifo:5:1.0")
        channel = NotifyChannel(tmp_path / "chan")
        with channel.subscribe() as sub:
            assert channel.notify() == 0  # dropped by chaos
            assert sub.wait(0.01) is False
        # The machinery still works end to end: waiters poll through.
        queue, store = JobQueue(tmp_path / "q.sqlite"), SharedResultStore(tmp_path / "s")
        client = ServiceClient(queue, store, poll_s=0.01)
        client.submit(spec(reps=2))
        Worker(queue, store, poll_s=0.01).run(drain=True)
        client.wait(timeout=30.0)
        assert queue.counts()["done"] == 1

    def test_corrupt_store_chaos_heals_bit_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt-store:7:1.0")
        cache = ResultCache(tmp_path / "c")
        cache.get_or_run(spec())  # first write is bit-flipped by chaos
        rs = cache.get_or_run(spec())  # detected, quarantined, re-run
        assert cache.stats()["integrity_quarantined"] == 1
        monkeypatch.delenv("REPRO_CHAOS")
        golden = ResultCache(tmp_path / "golden").get_or_run(spec())
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]
        # The re-written entry stands (chaos corrupts first write only).
        cache.get_or_run(spec())
        assert cache.stats()["hits"] == 1
