"""Unit tests for the bandwidth pool."""

import pytest

from repro.sim.memory import MemorySystem


class TestScale:
    def test_under_capacity_no_slowdown(self):
        assert MemorySystem(40.0).scale_for(30.0) == 1.0

    def test_exact_capacity_no_slowdown(self):
        assert MemorySystem(40.0).scale_for(40.0) == 1.0

    def test_over_capacity_scales_proportionally(self):
        assert MemorySystem(40.0).scale_for(80.0) == pytest.approx(0.5)

    def test_zero_demand(self):
        assert MemorySystem(40.0).scale_for(0.0) == 1.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(40.0).scale_for(-1.0)

    def test_infinite_bandwidth_never_saturates(self):
        m = MemorySystem(float("inf"))
        assert m.scale_for(1e12) == 1.0
        assert not m.saturated(1e12)

    def test_saturated_predicate(self):
        m = MemorySystem(40.0)
        assert m.saturated(41.0)
        assert not m.saturated(40.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            MemorySystem(0.0)
        with pytest.raises(ValueError):
            MemorySystem(-5.0)
