"""Unit tests for the on-disk result cache."""

import json

import numpy as np
import pytest

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf", workload="nbody", model="omp", strategy="Rm", reps=2, seed=9
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def tiny_config():
    return NoiseConfig(
        {
            0: [
                ConfigEvent(
                    start=0.1,
                    duration=1e-3,
                    policy="SCHED_FIFO",
                    rt_priority=90,
                    weight=1.0,
                    etype=EventType.IRQ,
                    source="x",
                )
            ]
        }
    )


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.get_or_run(spec())
        assert cache.misses == 1 and cache.hits == 0
        b = cache.get_or_run(spec())
        assert cache.hits == 1
        np.testing.assert_array_equal(a.times, b.times)

    def test_different_specs_different_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        cache.get_or_run(spec(strategy="TP"))
        assert cache.misses == 2

    def test_seed_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        cache.get_or_run(spec(seed=10))
        assert cache.misses == 2

    def test_noise_config_part_of_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        cache.get_or_run(spec(), noise_config=tiny_config())
        assert cache.misses == 2

    def test_injected_flag_persisted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec(), noise_config=tiny_config())
        rs = cache.get_or_run(spec(), noise_config=tiny_config())
        assert cache.hits == 1
        assert rs.injected

    def test_corrupt_entry_recovered(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        for f in tmp_path.glob("*.json"):
            f.write_text("not json")
        rs = cache.get_or_run(spec())
        assert cache.misses == 2
        assert len(rs.times) == 2

    def test_truncated_entry_evicted_counted_and_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.get_or_run(spec())
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        # Truncate mid-payload: the classic interrupted-write artefact.
        entries[0].write_text(entries[0].read_text()[:10])
        rs = cache.get_or_run(spec())
        assert cache.corrupt == 1
        np.testing.assert_array_equal(first.times, rs.times)
        # The re-run rewrote a valid entry: next lookup is a clean hit.
        again = cache.get_or_run(spec())
        assert cache.stats() == {"hits": 1, "misses": 2, "corrupt": 1, "stale": 0, "partial": 0, "integrity_quarantined": 0}
        np.testing.assert_array_equal(first.times, again.times)

    def test_entries_record_key_version(self, tmp_path):
        from repro.harness.cache import _KEY_VERSION

        cache = ResultCache(tmp_path)
        cache.get_or_run(spec(), noise_config=tiny_config())
        (entry,) = tmp_path.glob("*.json")
        data = json.loads(entry.read_text())
        assert data["key_version"] == _KEY_VERSION
        assert data["noise"] == ["trace-replay"]

    def test_stale_key_version_evicted_counted_and_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.get_or_run(spec())
        (entry,) = tmp_path.glob("*.json")
        data = json.loads(entry.read_text())
        data["key_version"] = 1  # pre-refactor schema
        data["times"] = [0.0] * len(data["times"])  # must NOT be served
        data.pop("sha256", None)  # entries that old never carried a seal
        entry.write_text(json.dumps(data))
        rs = cache.get_or_run(spec())
        assert cache.stats()["stale"] == 1
        assert cache.misses == 2
        np.testing.assert_array_equal(first.times, rs.times)
        # the eviction re-ran and rewrote a current entry: clean hit next
        again = cache.get_or_run(spec())
        assert cache.stats() == {"hits": 1, "misses": 2, "corrupt": 0, "stale": 1, "partial": 0, "integrity_quarantined": 0}
        np.testing.assert_array_equal(first.times, again.times)

    def test_missing_key_version_treated_as_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        (entry,) = tmp_path.glob("*.json")
        data = json.loads(entry.read_text())
        del data["key_version"]
        data.pop("sha256", None)
        entry.write_text(json.dumps(data))
        cache.get_or_run(spec())
        assert cache.stats()["stale"] == 1

    def test_noise_param_and_spec_noise_key_identically(self, tmp_path):
        from repro.noise import NoiseStack, TraceReplaySource

        cache = ResultCache(tmp_path)
        stack = NoiseStack([TraceReplaySource(tiny_config())])
        cache.get_or_run(spec(), noise=stack)
        cache.get_or_run(spec(noise=stack))          # via the spec field
        cache.get_or_run(spec(), noise_config=tiny_config())  # legacy alias
        assert cache.stats() == {"hits": 2, "misses": 1, "corrupt": 0, "stale": 0, "partial": 0, "integrity_quarantined": 0}

    def test_stats_dict(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats() == {"hits": 0, "misses": 0, "corrupt": 0, "stale": 0, "partial": 0, "integrity_quarantined": 0}
        cache.get_or_run(spec())
        cache.get_or_run(spec())
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0, "stale": 0, "partial": 0, "integrity_quarantined": 0}

    def test_on_run_with_cache_enabled_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="on_run"):
            cache.get_or_run(spec(), on_run=lambda i, r: None)

    def test_on_run_allowed_when_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        seen = []
        cache.get_or_run(spec(), on_run=lambda i, r: seen.append(i))
        assert seen == [0, 1]

    def test_explicit_executor_used_on_miss(self, tmp_path):
        from repro.harness.executor import SerialExecutor

        class CountingExecutor(SerialExecutor):
            def __init__(self):
                self.calls = 0

            def run_reps(self, *a, **kw):
                self.calls += 1
                return super().run_reps(*a, **kw)

        ex = CountingExecutor()
        cache = ResultCache(tmp_path, executor=ex)
        cache.get_or_run(spec())
        cache.get_or_run(spec())  # hit: executor untouched
        assert ex.calls == 1

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        cache.get_or_run(spec())
        cache.get_or_run(spec())
        assert cache.misses == 2
        assert list(tmp_path.glob("*.json")) == []

    def test_cache_dir_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        cache = ResultCache()
        assert cache.root == tmp_path / "alt"
