"""Unit tests for the background-noise model."""

import numpy as np
import pytest

from repro.sim.noise import (
    AnomalySpec,
    MicroNoiseSpec,
    NoiseSourceSpec,
    desktop_noise,
    hpc_noise,
    runlevel3,
)
from repro.sim.task import TaskKind

from conftest import make_machine
from repro.sim.platform import get_platform


class TestSpecs:
    def test_steal_fraction_scales_with_tick_rate(self):
        micro = MicroNoiseSpec(tick_mean=4e-6, softirq_prob=0.0)
        assert micro.steal_fraction(250) == pytest.approx(0.001)
        assert micro.steal_fraction(1000) == pytest.approx(0.004)

    def test_steal_fraction_capped(self):
        micro = MicroNoiseSpec(tick_mean=1.0)
        assert micro.steal_fraction(250) == 0.25

    def test_source_validation(self):
        with pytest.raises(ValueError):
            NoiseSourceSpec("x", TaskKind.THREAD_NOISE, rate=-1.0, duration_median=1e-6)
        with pytest.raises(ValueError):
            NoiseSourceSpec("x", TaskKind.THREAD_NOISE, rate=1.0, duration_median=0.0)

    def test_anomaly_spec_validation(self):
        with pytest.raises(ValueError):
            AnomalySpec(prob=1.5)
        with pytest.raises(ValueError):
            AnomalySpec(prob=0.5, candidates=())

    def test_intensity_scaling(self):
        env = desktop_noise()
        scaled = env.intensity_scaled(2.0)
        for a, b in zip(env.sources, scaled.sources):
            assert b.rate == pytest.approx(2.0 * a.rate)


class TestPresets:
    def test_desktop_has_gui_sources(self):
        env = desktop_noise(gui=True)
        names = {s.name for s in env.sources}
        assert "Xorg" in names

    def test_desktop_without_gui(self):
        env = desktop_noise(gui=False)
        names = {s.name for s in env.sources}
        assert "Xorg" not in names

    def test_runlevel3_strips_gui(self):
        env = runlevel3(desktop_noise(gui=True))
        names = {s.name for s in env.sources}
        assert "Xorg" not in names and "gnome-shell" not in names
        assert not env.gui

    def test_hpc_reserved_sets_affinity(self):
        env = hpc_noise(reserved_cpus=(48, 49))
        assert env.os_affinity == (48, 49)

    def test_anomaly_prob_override(self):
        env = desktop_noise(anomaly_prob=0.9)
        assert env.anomalies.prob == 0.9


class TestNoiseModel:
    def test_silent_env_produces_nothing(self):
        m = make_machine(seed=3, tracing=True)
        m.run(lambda mm: mm.engine.schedule(0.01, mm.workload_done), expected_duration=0.01)
        assert m.tracer.macro_record_count == 0

    def test_macro_sources_fire(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=3, tracing=True)

        def start(mm):
            mm.engine.schedule(0.5, mm.workload_done)

        m.run(start, expected_duration=0.5)
        assert m.tracer.macro_record_count > 0

    def test_determinism_same_seed(self):
        plat = get_platform("intel-9700kf")
        counts = []
        for _ in range(2):
            m = make_machine(plat, seed=42, tracing=True)
            m.run(lambda mm: mm.engine.schedule(0.3, mm.workload_done), expected_duration=0.3)
            counts.append(m.tracer.macro_record_count)
        assert counts[0] == counts[1]

    def test_different_seeds_differ(self):
        plat = get_platform("intel-9700kf")
        counts = []
        for seed in (1, 2):
            m = make_machine(plat, seed=seed, tracing=True)
            m.run(lambda mm: mm.engine.schedule(0.3, mm.workload_done), expected_duration=0.3)
            counts.append(m.tracer.macro_record_count)
        assert counts[0] != counts[1]

    def test_start_twice_rejected(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=1)
        assert m.noise_model is not None
        m.noise_model.start(1.0)
        with pytest.raises(RuntimeError):
            m.noise_model.start(1.0)

    def test_anomaly_forced_with_prob_one(self):
        from dataclasses import replace

        plat = get_platform("intel-9700kf")
        env = replace(plat.noise, anomalies=replace(plat.noise.anomalies, prob=1.0))
        m = make_machine(plat.with_noise(env), seed=5)
        assert m.noise_model is not None
        m.noise_model.start(1.0)
        assert m.noise_model.anomaly is not None
        m.noise_model.stop()

    def test_anomaly_scales_with_cores(self):
        # Same seed: the AMD burst should be roughly 4x the Intel one.
        from dataclasses import replace

        busys = {}
        for name in ("intel-9700kf", "amd-9950x3d"):
            plat = get_platform(name)
            env = replace(plat.noise, anomalies=replace(plat.noise.anomalies, prob=1.0))
            m = make_machine(plat.with_noise(env), seed=5, tracing=True)
            m.run(lambda mm: mm.engine.schedule(2.5, mm.workload_done), expected_duration=2.0)
            trace = m.tracer.finalize(2.5, (), None, np.random.default_rng(0))
            anomaly = m.noise_model.anomaly.name
            mask = trace.events_of_source(anomaly)
            busys[name] = trace.durations[mask].sum()
        assert busys["amd-9950x3d"] > 2.0 * busys["intel-9700kf"]


class TestMicroSynthesis:
    def test_busy_cpus_tick_at_full_rate(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=7)
        m.noise_model.start(1.0)
        cpus, kinds, starts, durs = m.noise_model.synthesize_micro_records(1.0, (0,))
        tick_counts = np.bincount(cpus[kinds == 0], minlength=8)
        assert tick_counts[0] == pytest.approx(plat.tick_hz, abs=2)
        # idle cpus tick at a tenth (dyntick)
        assert tick_counts[1] == pytest.approx(plat.tick_hz / 10, abs=2)

    def test_all_starts_within_duration(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=7)
        m.noise_model.start(0.5)
        cpus, kinds, starts, durs = m.noise_model.synthesize_micro_records(0.5, (0, 1))
        # softirqs start right after their tick, so allow a hair over
        assert starts.max() < 0.5 + 1e-3
        assert (durs > 0).all()

    def test_softirq_fraction_plausible(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=7)
        m.noise_model.start(2.0)
        cpus, kinds, starts, durs = m.noise_model.synthesize_micro_records(
            2.0, tuple(range(8))
        )
        frac = (kinds == 1).mean()
        assert 0.2 < frac / (1 - frac) / plat.noise.micro.softirq_prob < 2.0
