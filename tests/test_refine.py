"""Unit tests for delta refinement (paper §4.2, Fig. 4)."""

import numpy as np
import pytest

from repro.core.events import EventType
from repro.core.profile import build_profile
from repro.core.refine import refine_worst_case
from repro.core.trace import Trace


def trace_of(records, exec_time=1.0):
    return Trace.from_records(records, exec_time)


def uniform_trace(source, count, duration, exec_time=1.0):
    return trace_of(
        [(0, int(EventType.THREAD), source, i * exec_time / count, duration) for i in range(count)],
        exec_time,
    )


class TestRefinement:
    def test_average_behaviour_cancels_exactly(self):
        # Worst case identical to the average: nothing left to inject.
        runs = [uniform_trace("k", 10, 1e-4) for _ in range(5)]
        profile = build_profile(runs)
        refined = refine_worst_case(runs[0], profile)
        assert refined.n_events == 0

    def test_residual_kept_for_oversized_events(self):
        normal = [uniform_trace("k", 10, 1e-4) for _ in range(9)]
        worst_records = [
            (0, int(EventType.THREAD), "k", i * 0.1, 1e-4) for i in range(10)
        ] + [(0, int(EventType.THREAD), "k", 0.55, 50e-3)]  # the anomaly burst
        worst = trace_of(worst_records)
        profile = build_profile(normal + [worst])
        refined = refine_worst_case(worst, profile)
        # the reduction quota is spent on the near-average hum events
        # (closest-to-mean first, per the paper); the burst survives whole
        assert refined.n_events == 1
        assert refined.durations[0] == pytest.approx(50e-3)

    def test_unknown_source_injected_in_full(self):
        profile = build_profile([uniform_trace("k", 10, 1e-4)])
        worst = trace_of([(0, int(EventType.THREAD), "ghost", 0.5, 1e-3)])
        refined = refine_worst_case(worst, profile)
        assert refined.n_events == 1
        assert refined.durations[0] == pytest.approx(1e-3)

    def test_more_events_than_expected_partially_survive(self):
        # Average 5 events/run; worst case has 8 -> 3 survive whole.
        normal = [uniform_trace("k", 5, 1e-4) for _ in range(9)]
        worst = uniform_trace("k", 8, 1e-4)
        profile = build_profile(normal + [worst])
        refined = refine_worst_case(worst, profile)
        assert refined.n_events == 3

    def test_never_negative_durations(self):
        normal = [uniform_trace("k", 10, 2e-4) for _ in range(5)]
        worst = uniform_trace("k", 10, 1e-4)  # shorter than average
        profile = build_profile(normal + [worst])
        refined = refine_worst_case(worst, profile)
        assert refined.n_events == 0 or (refined.durations > 0).all()

    def test_min_residual_filter(self):
        profile = build_profile([uniform_trace("k", 1, 1e-4)])
        worst = trace_of([(0, int(EventType.THREAD), "k", 0.5, 1e-4 + 5e-7)])
        refined = refine_worst_case(worst, profile, min_residual=1e-6)
        assert refined.n_events == 0
        refined_loose = refine_worst_case(worst, profile, min_residual=1e-8)
        assert refined_loose.n_events == 1

    def test_negative_min_residual_rejected(self):
        profile = build_profile([uniform_trace("k", 1, 1e-4)])
        with pytest.raises(ValueError):
            refine_worst_case(uniform_trace("k", 1, 1e-4), profile, min_residual=-1.0)

    def test_meta_marks_refined(self):
        profile = build_profile([uniform_trace("k", 2, 1e-4)])
        refined = refine_worst_case(uniform_trace("k", 2, 1e-4), profile)
        assert refined.meta.get("refined") is True

    def test_total_noise_never_increases(self):
        rng = np.random.default_rng(0)
        runs = []
        for _ in range(6):
            records = [
                (int(rng.integers(4)), int(EventType.THREAD), "k", float(rng.uniform(0, 1)), float(rng.uniform(1e-5, 1e-3)))
                for _ in range(30)
            ]
            runs.append(trace_of(records))
        profile = build_profile(runs)
        worst = runs[0]
        refined = refine_worst_case(worst, profile)
        assert refined.total_noise_time() <= worst.total_noise_time() + 1e-12

    def test_closest_to_average_reduced_first(self):
        # Expected count 1: the instance closest to the mean is removed,
        # the outlier survives.
        normal = [uniform_trace("k", 1, 1e-4) for _ in range(9)]
        worst = trace_of(
            [
                (0, int(EventType.THREAD), "k", 0.2, 1.05e-4),  # near average
                (0, int(EventType.THREAD), "k", 0.6, 9e-3),     # outlier
            ]
        )
        profile = build_profile(normal + [worst])
        refined = refine_worst_case(worst, profile)
        # expected = round((9*1 + 2)/10) = 1 -> near-average one reduced to ~5e-6... dropped or tiny
        assert refined.n_events >= 1
        assert refined.durations.max() == pytest.approx(9e-3, rel=0.01)

    def test_preserves_cpu_assignment(self):
        profile = build_profile([uniform_trace("k", 10, 1e-4)])
        worst = trace_of([(3, int(EventType.THREAD), "burst", 0.5, 1e-3)])
        refined = refine_worst_case(worst, profile)
        assert list(refined.cpus) == [3]
