"""Supervisor: restarts, backoff, crash loops, drain, and poison e2e."""

import os
import signal
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec
from repro.service import JobQueue, ServiceClient, SharedResultStore, Supervisor, Worker

SRC = str(Path(__file__).resolve().parent.parent / "src")


def spec(**kw):
    kw.setdefault("platform", "intel-9700kf")
    kw.setdefault("workload", "nbody")
    kw.setdefault("reps", 3)
    kw.setdefault("seed", 42)
    return ExperimentSpec(**kw)


def make_supervisor(tmp_path, command, **kw):
    """A supervisor over throwaway child commands (no service stack)."""
    queue = JobQueue(tmp_path / "q.sqlite")
    kw.setdefault("workers", 1)
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("poll_s", 0.01)
    sup = Supervisor(queue, command_factory=lambda worker_id: command, **kw)
    return queue, sup


class TestSupervisorMechanics:
    def test_clean_exit_parks_the_slot(self, tmp_path):
        queue, sup = make_supervisor(tmp_path, [sys.executable, "-c", "pass"], workers=2)
        assert sup.run() == 0
        assert all(slot.parked for slot in sup.slots)
        assert sup.stats()["spawned"] == 2
        assert sup.stats()["restarts"] == 0

    def test_crash_restarts_until_crash_loop_parks(self, tmp_path):
        queue, sup = make_supervisor(
            tmp_path,
            [sys.executable, "-c", "raise SystemExit(3)"],
            crash_loop_threshold=3,
        )
        deaths = sup.run()
        assert deaths == 3  # threshold crashes, then the slot is parked
        (slot,) = sup.slots
        assert slot.parked
        stats = sup.stats()
        assert stats["spawned"] == 3
        assert stats["restarts"] == 2
        assert stats["deaths_reported"] == 3
        assert stats["crash_loops"] == 1

    def test_each_restart_gets_a_distinct_worker_id(self, tmp_path):
        queue, sup = make_supervisor(
            tmp_path,
            [sys.executable, "-c", "raise SystemExit(1)"],
            crash_loop_threshold=3,
        )
        seen = []
        orig = sup._spawn

        def spy(slot):
            orig(slot)
            seen.append(slot.worker_id)

        sup._spawn = spy
        sup.run()
        assert len(seen) == len(set(seen)) == 3
        assert seen[0].endswith("-w0-r0") and seen[-1].endswith("-w0-r2")

    def test_observed_death_releases_lease_immediately(self, tmp_path):
        """A crashed child's lease is released by report_worker_death,
        not by waiting out the lease expiry."""
        queue = JobQueue(tmp_path / "q.sqlite")
        queue.submit("a", spec={"k": "a"}, noise=None, label="a")
        sup = Supervisor(
            queue,
            workers=1,
            crash_loop_threshold=1,  # one crash parks: no retry churn
            poll_s=0.01,
            command_factory=lambda wid: [sys.executable, "-c", "raise SystemExit(9)"],
        )
        # Lease with the id the child *would* have used, with a lease
        # long enough that only death-reporting can release it in time.
        (job,) = queue.lease(sup._worker_id(sup.slots[0]), lease_s=3600.0)
        assert job.key == "a"
        sup.run()
        job = queue.job("a")
        assert job.status == "queued"
        assert job.lease_owner is None
        (death,) = job.deaths
        assert death["worker"].endswith("-w0-r0")
        assert "code 9" in death["detail"]

    def test_backoff_schedule_is_seeded_and_deterministic(self, tmp_path):
        def schedule(seed):
            queue, sup = make_supervisor(
                tmp_path / f"s{seed}", [sys.executable, "-c", "pass"], seed=seed
            )
            (slot,) = sup.slots
            out = []
            for restarts in (1, 2, 3, 4):
                slot.restarts = restarts
                out.append(sup._backoff(slot))
            return out

        a = schedule(7)
        assert a == schedule(7)
        assert a != schedule(8)
        # exponential shape: each uncapped step at least matches the
        # previous despite jitter (base doubles, jitter is in [0.5, 1.0])
        assert all(later >= earlier for earlier, later in zip(a, a[1:]))

    def test_min_one_worker_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="at least one worker"):
            make_supervisor(tmp_path, ["true"], workers=0)

    def test_drain_signal_forwards_and_exits_cleanly(self, tmp_path):
        script = (
            "import signal, sys, time\n"
            "signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))\n"
            "time.sleep(60)\n"
        )
        queue, sup = make_supervisor(
            tmp_path, [sys.executable, "-c", script], workers=2
        )
        done = {}
        t = threading.Thread(target=lambda: done.setdefault("deaths", sup.run()))
        t.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(slot.alive for slot in sup.slots):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("children never came up")
            time.sleep(0.2)  # let the children install their handlers
            # What the signal handler does on the first drain signal:
            sup._drain_signals = 1
            sup._stop.set()
            sup._signal_children(signal.SIGTERM)
            t.join(timeout=30)
        finally:
            sup._stop.set()
            t.join(timeout=30)
        assert not t.is_alive()
        assert done["deaths"] == 0  # SIGTERM exits are clean, not crashes
        assert all(slot.parked for slot in sup.slots)

    def test_fail_fast_sigkills_stragglers_and_releases_leases(self, tmp_path):
        script = (
            "import signal, time\n"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"  # never drains
            "time.sleep(60)\n"
        )
        queue, sup = make_supervisor(
            tmp_path, [sys.executable, "-c", script], kill_grace_s=0.1
        )
        queue.submit("a", spec={"k": "a"}, noise=None, label="a")
        t = threading.Thread(target=sup.run)
        t.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(slot.alive for slot in sup.slots):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("child never came up")
            queue.lease(sup.slots[0].worker_id, lease_s=3600.0)
            # Second drain signal: arm the SIGKILL deadline.
            sup._drain_signals = 2
            sup._stop.set()
            sup._signal_children(signal.SIGTERM)
            t.join(timeout=30)
        finally:
            sup._stop.set()
            t.join(timeout=30)
        assert not t.is_alive()
        # The SIGKILLed straggler's lease was released on its way out.
        assert queue.job("a").status == "queued"


class TestPoisonJobEndToEnd:
    def test_poison_quarantined_then_revived_bit_identically(self, tmp_path):
        """The acceptance scenario: a kill-worker! chaos job takes down
        two distinct supervised workers, lands in the DLQ with pid/spec
        forensics, and a dlq retry without chaos yields results
        byte-identical to an in-process run."""
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        poison = spec(reps=2, seed=5)
        key = client.submit(poison)

        env = dict(
            os.environ,
            PYTHONPATH=SRC,
            # Persistently kill every service worker that leases any job.
            REPRO_CHAOS="kill-worker!:1:1.0",
        )
        sup = Supervisor(
            queue,
            store_root=tmp_path / "store",
            workers=1,
            drain=True,
            backoff_base_s=0.01,
            poll_s=0.02,
            crash_loop_threshold=10,  # quarantine must trigger first
            env=env,
        )
        deaths = sup.run()
        # Two distinct workers died on the job; the third incarnation
        # found the queue drained (quarantined is terminal) and exited.
        assert deaths == 2

        job = queue.job(key)
        assert job.status == "quarantined"
        failure = job.failure
        assert failure["reason"] == "poison"
        assert failure["record"]["error"] == "PoisonJob"
        # dlq show forensics: which workers, which pids, which spec/reps.
        assert len(failure["deaths"]) == 2
        workers = {d["worker"] for d in failure["deaths"]}
        assert len(workers) == 2
        assert all(d["pid"] is not None for d in failure["deaths"])
        assert failure["spec"]["workload"] == "nbody"
        assert failure["spec"]["reps"] == 2
        assert (job,) == tuple(queue.dlq_list())

        # Revive without chaos: a plain worker drains it...
        assert queue.dlq_retry(key) is True
        revived = queue.job(key)
        assert revived.status == "queued" and revived.attempts == 0
        Worker(queue, store, worker_id="medic", poll_s=0.01).run(drain=True)
        assert queue.job(key).status == "done"
        # ... and the result is bit-identical to a never-poisoned run.
        rs = client.run_cell(poison)
        golden = ResultCache(tmp_path / "golden").get_or_run(poison)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]
