"""Unit tests for mitigation strategies (the paper's config labels)."""

import pytest

from repro.mitigation.strategies import STRATEGY_NAMES, MitigationStrategy, get_strategy
from repro.sim.platform import get_platform


@pytest.fixture
def intel():
    return get_platform("intel-9700kf")


@pytest.fixture
def amd():
    return get_platform("amd-9950x3d")


@pytest.fixture
def a64_reserved():
    return get_platform("a64fx-reserved")


class TestRegistry:
    def test_all_six_strategies(self):
        assert len(STRATEGY_NAMES) == 6
        for name in STRATEGY_NAMES:
            assert get_strategy(name).name == name

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            get_strategy("HK3")

    def test_pinning_flags(self):
        assert not get_strategy("Rm").pinned
        assert get_strategy("TP").pinned
        assert get_strategy("TPHK2").pinned

    def test_hk_fractions(self):
        assert get_strategy("Rm").hk_fraction == 0.0
        assert get_strategy("RmHK").hk_fraction == 0.125
        assert get_strategy("TPHK2").hk_fraction == 0.25


class TestPlacementIntel:
    def test_rm_uses_all_cores(self, intel):
        p = get_strategy("Rm").placement(intel)
        assert p.cpus == tuple(range(8))
        assert p.n_threads == 8
        assert not p.pinned

    def test_hk_leaves_one_core(self, intel):
        p = get_strategy("RmHK").placement(intel)
        assert p.n_threads == 7
        assert 7 not in p.cpus

    def test_hk2_leaves_two_cores(self, intel):
        p = get_strategy("TPHK2").placement(intel)
        assert p.n_threads == 6
        assert p.pinned

    def test_housekeeping_cpus_complement(self, intel):
        hk = get_strategy("RmHK2").housekeeping_cpus(intel)
        assert hk == (6, 7)


class TestPlacementAMD:
    def test_smt_uses_all_logical(self, amd):
        p = get_strategy("Rm").placement(amd, use_smt=True)
        assert p.n_threads == 32

    def test_no_smt_one_per_core(self, amd):
        p = get_strategy("Rm").placement(amd, use_smt=False)
        assert p.n_threads == 16
        assert p.cpus == tuple(range(16))

    def test_smt_hk_drops_whole_cores(self, amd):
        p = get_strategy("RmHK").placement(amd, use_smt=True)
        # 12.5% of 32 = 4 logical = 2 physical cores, both siblings gone
        assert p.n_threads == 28
        dropped = set(range(32)) - set(p.cpus)
        assert dropped == {14, 15, 30, 31}

    def test_smt_hk2_drops_four_cores(self, amd):
        p = get_strategy("TPHK2").placement(amd, use_smt=True)
        assert p.n_threads == 24

    def test_no_smt_hk(self, amd):
        p = get_strategy("RmHK").placement(amd, use_smt=False)
        assert p.n_threads == 14

    def test_label_records_smt(self, amd):
        assert get_strategy("Rm").placement(amd, use_smt=False).label == "Rm-noSMT"


class TestReservedPlatform:
    def test_reserved_cores_never_in_placement(self, a64_reserved):
        for name in STRATEGY_NAMES:
            p = get_strategy(name).placement(a64_reserved)
            assert 48 not in p.cpus and 49 not in p.cpus

    def test_full_placement_is_48_threads(self, a64_reserved):
        assert get_strategy("Rm").placement(a64_reserved).n_threads == 48


class TestValidation:
    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            MitigationStrategy("X", pinned=False, hk_fraction=0.6)
