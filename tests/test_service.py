"""Campaign service tests: queue, scheduler, shared store, workers.

The hard guarantees under test:

* queue durability — leases expire when their holder dies (including a
  real SIGKILLed worker process) and the job is re-leased and re-run
  from its original seeds, bit-identically;
* shared-store concurrency — two processes hammering one directory
  never re-simulate a key the other already ran;
* transport neutrality — tables collected through the service render
  byte-identically to in-process ones.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec
from repro.harness.sweep import sweep
from repro.noise.base import NoiseStack
from repro.service import (
    Job,
    JobQueue,
    Scheduler,
    SchedulerWeights,
    ServiceClient,
    SharedResultStore,
    Worker,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def spec(**kw):
    kw.setdefault("platform", "intel-9700kf")
    kw.setdefault("workload", "nbody")
    kw.setdefault("reps", 3)
    kw.setdefault("seed", 42)
    return ExperimentSpec(**kw)


def submit(queue, key, **kw):
    kw.setdefault("spec", {"k": key})
    kw.setdefault("noise", None)
    kw.setdefault("label", key)
    return queue.submit(key, **kw)


# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_lease_complete(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        assert submit(q, "a") is True
        assert q.counts() == {"queued": 1, "leased": 0, "sharded": 0, "done": 0, "failed": 0, "quarantined": 0}
        (job,) = q.lease("w1")
        assert job.key == "a" and job.attempts == 1 and job.spec == {"k": "a"}
        assert q.counts()["leased"] == 1
        assert q.complete("a", "w1") is True
        assert q.counts()["done"] == 1
        assert q.drained()

    def test_submit_is_idempotent(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        assert submit(q, "a") is True
        assert submit(q, "a") is False  # deduplicated, not re-queued
        assert q.counts()["queued"] == 1

    def test_resubmit_revives_failed_job(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=1)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "boom", retryable=False)
        assert q.counts()["failed"] == 1
        assert submit(q, "a") is True  # revived
        assert q.counts() == {"queued": 1, "leased": 0, "sharded": 0, "done": 0, "failed": 0, "quarantined": 0}

    def test_fail_retryable_requeues_until_attempt_cap(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=2)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "transient")
        assert q.counts()["queued"] == 1  # attempt 1 of 2: requeued
        (job,) = q.lease("w1")
        assert job.attempts == 2
        q.fail(job.key, "w1", "transient")
        assert q.counts()["failed"] == 1  # cap reached
        assert q.job("a").error == "transient"

    def test_expired_lease_is_relet_to_next_worker(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        (job,) = q.lease("w1", lease_s=0.05)
        assert q.lease("w2") == []  # still held
        time.sleep(0.1)
        (job,) = q.lease("w2")
        assert job.lease_owner == "w2" and job.attempts == 2

    def test_expiry_past_attempt_cap_fails_the_job(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=1)
        q.lease("w1", lease_s=0.05)
        time.sleep(0.1)
        assert q.lease("w2") == []
        assert q.counts()["failed"] == 1

    def test_renew_requires_current_owner(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        assert q.renew("a", "w2") is False
        assert q.renew("a", "w1") is True
        assert q.complete("a", "w2") is False  # wrong owner cannot complete

    def test_sweep_record_roundtrip(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        for key in ("a", "b"):
            submit(q, key)
        q.record_sweep("s1", {"axes": {"x": [1, 2]}}, ["a", "b"], title="demo")
        record = q.sweep("s1")
        assert record["keys"] == ["a", "b"]
        assert record["title"] == "demo"
        assert record["definition"] == {"axes": {"x": [1, 2]}}
        assert q.sweep_ids() == ["s1"]
        assert q.sweep("nope") is None

    def test_drained_for_subset_of_keys(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        submit(q, "b")
        (job,) = q.lease("w1")
        q.complete(job.key, "w1")
        assert q.drained([job.key])
        assert not q.drained()


# ----------------------------------------------------------------------
class TestScheduler:
    def job(self, key, **kw):
        kw.setdefault("spec", {})
        kw.setdefault("noise", None)
        kw.setdefault("label", key)
        kw.setdefault("status", "queued")
        kw.setdefault("priority", 0)
        kw.setdefault("expected_s", 0.0)
        kw.setdefault("cached", False)
        kw.setdefault("attempts", 0)
        kw.setdefault("max_attempts", 3)
        kw.setdefault("submitted_at", 100.0)
        return Job(key=key, **kw)

    def test_priority_dominates(self):
        s = Scheduler()
        ranked = s.rank([self.job("lo"), self.job("hi", priority=5)], now=100.0)
        assert [j.key for j in ranked] == ["hi", "lo"]

    def test_cached_jobs_jump_the_queue(self):
        s = Scheduler()
        ranked = s.rank([self.job("cold"), self.job("warm", cached=True)], now=100.0)
        assert ranked[0].key == "warm"

    def test_shortest_job_first_among_equals(self):
        s = Scheduler()
        ranked = s.rank(
            [self.job("slow", expected_s=10.0), self.job("fast", expected_s=1.0)],
            now=100.0,
        )
        assert ranked[0].key == "fast"

    def test_aging_eventually_overtakes_priority(self):
        s = Scheduler(SchedulerWeights(priority=100.0, aging=1.0))
        old = self.job("old", submitted_at=0.0)
        # Against a priority-1 job submitted *just now*, the old job's
        # accumulated age decides: under 100 s of waiting it loses,
        # past 100 s it overtakes every such newcomer.
        young = s.rank([self.job("f", priority=1, submitted_at=50.0), old], now=50.0)
        starved = s.rank([self.job("f", priority=1, submitted_at=150.0), old], now=150.0)
        assert young[0].key == "f"
        assert starved[0].key == "old"

    def test_tie_break_is_deterministic(self):
        s = Scheduler()
        a, b = self.job("a"), self.job("b")
        assert [j.key for j in s.rank([b, a], now=100.0)] == ["a", "b"]

    def test_queue_leases_in_scheduler_order(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "bulk")
        submit(q, "urgent", priority=9)
        keys = [j.key for j in q.lease("w1", limit=2, scheduler=Scheduler())]
        assert keys == ["urgent", "bulk"]


# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    def test_plain_spec(self):
        s = spec(strategy="TP", use_smt=False, workload_params={"cg_iters": 7})
        assert ExperimentSpec.from_dict(s.to_dict()) == s

    def test_noise_and_adaptive_survive(self):
        from repro.harness.adaptive import AdaptivePolicy

        s = spec(adaptive=AdaptivePolicy(target_rel_hw=0.05))
        revived = ExperimentSpec.from_dict(s.to_dict())
        assert revived.adaptive == s.adaptive
        from repro.noise import parse_noise_spec

        stack = NoiseStack(
            [parse_noise_spec("hpas.membw:start=0,duration=0.1,bandwidth_gbs=5")]
        )
        assert NoiseStack.from_dict(stack.to_dict()).kinds() == stack.kinds()


# ----------------------------------------------------------------------
def _hammer(root, specs_json, stats_path, salt):
    """Child-process body: run every spec against the shared store."""
    store = SharedResultStore(Path(root))
    specs = [ExperimentSpec.from_dict(d) for d in json.loads(specs_json)]
    # Deterministically different orders per process: more collisions.
    specs = specs[salt:] + specs[:salt]
    means = {}
    for s in specs:
        means[s.label() + f"/{s.seed}"] = float(store.get_or_run(s).mean).hex()
    st = store.stats()
    Path(stats_path).write_text(
        json.dumps({"stats": st, "means": means})
    )


class TestSharedResultStore:
    def test_second_read_is_a_hit(self, tmp_path):
        store = SharedResultStore(tmp_path)
        first = store.get_or_run(spec())
        again = store.get_or_run(spec())
        assert (first.times == again.times).all()
        assert store.stats()["hits"] == 1

    def test_matches_plain_result_cache_bytes(self, tmp_path):
        plain = ResultCache(tmp_path / "plain").get_or_run(spec())
        shared = SharedResultStore(tmp_path / "shared").get_or_run(spec())
        assert [t.hex() for t in plain.times] == [t.hex() for t in shared.times]

    def test_two_processes_never_resimulate(self, tmp_path):
        specs = [spec(seed=s) for s in range(6)]
        specs_json = json.dumps([s.to_dict() for s in specs])
        ctx = multiprocessing.get_context("spawn")
        procs = []
        for salt in (0, 3):
            stats_path = tmp_path / f"stats{salt}.json"
            p = ctx.Process(
                target=_hammer,
                args=(str(tmp_path / "store"), specs_json, str(stats_path), salt),
            )
            p.start()
            procs.append((p, stats_path))
        for p, _ in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        reports = [json.loads(path.read_text()) for _, path in procs]
        # Every key was simulated exactly once across both processes:
        # a process's own simulations are its misses not served under
        # the per-key lock.
        sims = sum(
            r["stats"]["misses"] - r["stats"]["shared_hits"] for r in reports
        )
        assert sims == len(specs)
        # ... and both observed bit-identical results for every cell.
        assert reports[0]["means"] == reports[1]["means"]


# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def parts(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.sqlite")
        store = SharedResultStore(tmp_path / "store")
        return queue, store, ServiceClient(queue, store, poll_s=0.01)

    def drain(self, queue, store, **kw):
        kw.setdefault("poll_s", 0.01)
        return Worker(queue, store, **kw).run(drain=True)

    def test_submit_drain_collect(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        key = client.submit(spec())
        assert queue.counts()["queued"] == 1
        assert self.drain(queue, store) == 1
        rs = client.run_cell(spec())
        assert client.stats()["store_served"] == 1
        golden = ResultCache(tmp_path / "golden").get_or_run(spec())
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]
        assert queue.job(key).status == "done"

    def test_failed_job_surfaces_error(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        bad = spec(platform="no-such-platform")
        key = client.submit(bad, max_attempts=1)
        self.drain(queue, store)
        assert queue.job(key).status == "failed"
        with pytest.raises(RuntimeError, match="without a store entry"):
            client._collect_one(key, bad)

    def test_sweep_renders_identically_to_in_process(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        base = spec(reps=3, seed=9)
        sweep_id = client.submit_sweep(
            base, strategy=("Rm", "TP"), model=("omp", "sycl")
        )
        self.drain(queue, store)
        service_render = client.collect_sweep(sweep_id).render()
        in_process = sweep(
            base,
            cache=ResultCache(tmp_path / "golden"),
            strategy=("Rm", "TP"),
            model=("omp", "sycl"),
        ).render()
        assert service_render == in_process

    def test_sweep_helper_routes_through_service(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        worker = Worker(queue, store, poll_s=0.01)
        import threading

        t = threading.Thread(target=worker.run, kwargs={"drain": False})
        t.start()
        try:
            result = sweep(spec(reps=2), service=client, model=("omp", "sycl"))
        finally:
            worker.stop()
            t.join(timeout=30)
        assert len(result) == 2
        golden = sweep(
            spec(reps=2), cache=ResultCache(tmp_path / "golden"), model=("omp", "sycl")
        )
        assert result.render() == golden.render()

    def test_second_client_is_fully_store_served(self, tmp_path):
        queue, store, client1 = self.parts(tmp_path)
        base = spec(reps=2, seed=7)
        client1.submit_sweep(base, seed=tuple(range(10)), title="grid")
        self.drain(queue, store)
        engine_runs_before = self._engine_runs(tmp_path / "store")
        client2 = ServiceClient(queue, SharedResultStore(tmp_path / "store"))
        sweep_id = client2.submit_sweep(base, seed=tuple(range(10)), title="grid")
        stats = client2.stats()
        # >= 90% of the resubmitted grid never re-queued; here: all of it.
        assert stats["deduplicated"] == 10 and stats["submitted"] == 0
        client2.collect_sweep(sweep_id)
        # ... and nothing was re-simulated to serve the second client.
        assert self._engine_runs(tmp_path / "store") == engine_runs_before

    @staticmethod
    def _engine_runs(store_root):
        """Number of entry files = simulations that actually ran."""
        return len(list(Path(store_root).glob("*.json")))

    def test_campaign_seam_renders_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE_REPS", "3")
        from repro.harness import campaigns

        queue, store, client = self.parts(tmp_path)
        worker = Worker(queue, store, poll_s=0.01)
        import threading

        t = threading.Thread(target=worker.run, kwargs={"drain": False})
        t.start()
        try:
            via_service = campaigns.table2(
                campaigns.default_settings(service=client),
                platforms=("intel-9700kf",),
                workloads=("nbody",),
            ).render()
        finally:
            worker.stop()
            t.join(timeout=60)
        in_process = campaigns.table2(
            campaigns.default_settings(cache=ResultCache(tmp_path / "golden")),
            platforms=("intel-9700kf",),
            workloads=("nbody",),
        ).render()
        assert via_service == in_process


# ----------------------------------------------------------------------
_KILLABLE_WORKER = textwrap.dedent(
    """
    import sys
    from pathlib import Path
    sys.path.insert(0, {src!r})
    from repro.service import JobQueue, SharedResultStore, Worker
    worker = Worker(
        JobQueue(Path({queue!r})),
        SharedResultStore(Path({store!r})),
        worker_id="victim",
        lease_s=1.0,
        poll_s=0.02,
    )
    worker.run(drain=True)
    """
)


class TestKilledWorker:
    def test_sigkill_mid_lease_then_bit_identical_rerun(self, tmp_path):
        """The acceptance scenario: SIGKILL a worker mid-job, let the
        lease expire, drain with a second worker, and require the sweep
        to be byte-identical to a never-interrupted in-process run."""
        queue = JobQueue(tmp_path / "queue.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        base = spec(
            workload="minife", workload_params={"cg_iters": 40}, reps=16, seed=3
        )
        sweep_id = client.submit_sweep(base, model=("omp", "sycl"))

        script = _KILLABLE_WORKER.format(
            src=SRC,
            queue=str(tmp_path / "queue.sqlite"),
            store=str(tmp_path / "store"),
        )
        proc = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if queue.jobs("leased"):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim worker never leased a job")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        leased = queue.jobs("leased")
        assert leased, "job should still look leased right after the kill"
        interrupted_key = leased[0].key

        # The second worker has to wait out the orphaned lease, then
        # re-runs the job from its original seeds.
        Worker(queue, store, worker_id="rescuer", poll_s=0.05).run(drain=True)
        assert queue.counts()["failed"] == 0
        assert queue.job(interrupted_key).status == "done"
        assert queue.job(interrupted_key).attempts == 2

        service_render = client.collect_sweep(sweep_id).render()
        in_process = sweep(
            base,
            cache=ResultCache(tmp_path / "golden"),
            model=("omp", "sycl"),
        ).render()
        assert service_render == in_process


# ----------------------------------------------------------------------
class TestWorkerLiveness:
    def test_status_derives_lost_from_heartbeat_age(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store)
        queue.register_worker("fresh", pid=1)
        queue.register_worker("crashed", pid=2)
        queue.register_worker("retired", pid=3)
        queue.deregister_worker("retired", "stopped")
        with queue._lock:  # age only the crashed worker's heartbeat
            queue._conn.execute(
                "UPDATE workers SET heartbeat_at = heartbeat_at - 600"
                " WHERE id = 'crashed'"
            )
        states = {w["id"]: w["state"] for w in client.status()["workers"]}
        assert states == {"fresh": "idle", "crashed": "lost", "retired": "stopped"}
        # The threshold is a parameter, not a constant baked into status.
        states = {
            w["id"]: w["state"]
            for w in client.status(lost_after_s=3600.0)["workers"]
        }
        assert states["crashed"] == "idle"

    def test_worker_registers_beats_and_deregisters(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        Worker(queue, store, worker_id="w", poll_s=0.01).run(drain=True)
        (info,) = queue.workers()
        assert info.id == "w" and info.state == "stopped"
        assert info.derived_state(time.time()) == "stopped"  # never lost


# ----------------------------------------------------------------------
class TestNotifyLeakHygiene:
    """Every wait/run exit path must unlink its fifo endpoint: leaked
    fifos turn each later notify() into wasted opens and (eventually)
    reap scans, so hygiene is a regression guarantee, not a nicety."""

    @staticmethod
    def fifos(queue):
        notify_root = queue.path.parent / f"{queue.path.name}.notify"
        return sorted(notify_root.rglob("*.fifo"))

    def test_client_wait_leaves_no_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        client.wait()  # drained queue: immediate return
        assert self.fifos(queue) == []

    def test_client_wait_timeout_leaves_no_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        queue.submit("a", spec={"k": "a"}, noise=None, label="a")
        with pytest.raises(TimeoutError):
            client.wait(timeout=0.05)
        assert self.fifos(queue) == []

    def test_worker_run_leaves_no_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        Worker(queue, store, poll_s=0.01).run(drain=True)
        assert self.fifos(queue) == []

    def test_worker_crash_mid_run_leaves_no_fifo(self, tmp_path):
        """Even when the run loop dies on an unexpected error, the
        subscription teardown in the finally block must fire."""
        queue = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        worker = Worker(queue, store, poll_s=0.01)
        worker.queue.lease = lambda *a, **kw: (_ for _ in ()).throw(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            worker.run(drain=True)
        assert self.fifos(queue) == []

    def test_subscription_close_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite")
        sub = queue.notify_submit.subscribe()
        sub.close()
        sub.close()  # second close must not raise or resurrect the fifo
        assert self.fifos(queue) == []

    def test_close_unlinks_fifo_even_if_os_close_fails(self, tmp_path, monkeypatch):
        queue = JobQueue(tmp_path / "q.sqlite")
        sub = queue.notify_submit.subscribe()
        real_close = os.close

        def bad_close(fd):
            real_close(fd)
            raise OSError("synthetic close failure")

        monkeypatch.setattr(os, "close", bad_close)
        with pytest.raises(OSError, match="synthetic"):
            sub.close()
        monkeypatch.undo()
        assert self.fifos(queue) == []
