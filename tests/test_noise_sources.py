"""Tests for the unified NoiseSource protocol, registry, and stack.

Every noise mechanism in the repo must (a) be discoverable through the
registry, (b) round-trip through the common JSON envelope with a stable
spec hash, and (c) compose with any other source in a
:class:`~repro.noise.NoiseStack` without losing determinism.
"""

import json
import pickle
import warnings

import numpy as np
import pytest

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.extensions.ionoise import IoBurst, IoNoiseConfig
from repro.extensions.memnoise import MemoryNoiseConfig, MemoryNoiseEvent
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.noise import (
    BackgroundNoiseSource,
    HpasCacheThrashSource,
    HpasCpuOccupySource,
    HpasMemoryBandwidthSource,
    IoNoiseSource,
    MemoryNoiseSource,
    NoiseStack,
    TraceReplaySource,
    available_sources,
    get_source_type,
    parse_noise_spec,
    source_from_json,
)

ALL_KINDS = [
    "background",
    "hpas.cache_thrash",
    "hpas.cpu_occupy",
    "hpas.membw",
    "io",
    "memory",
    "trace-replay",
]


def tiny_config():
    return NoiseConfig(
        {
            0: [
                ConfigEvent(
                    start=0.05,
                    duration=2e-3,
                    policy="SCHED_FIFO",
                    rt_priority=90,
                    weight=1.0,
                    etype=EventType.IRQ,
                    source="test",
                )
            ]
        }
    )


def one_of_each():
    """A representative instance of every registered source kind."""
    return {
        "trace-replay": TraceReplaySource(tiny_config()),
        "io": IoNoiseSource(
            IoNoiseConfig([IoBurst(start=0.02, duration=0.1, irq_cpus=(0, 1))])
        ),
        "memory": MemoryNoiseSource(
            MemoryNoiseConfig(
                [MemoryNoiseEvent(start=0.0, duration=0.2, bandwidth_gbs=15.0)]
            )
        ),
        "hpas.cpu_occupy": HpasCpuOccupySource(
            start=0.01, duration=0.1, cpus=(0,), utilization=0.5
        ),
        "hpas.membw": HpasMemoryBandwidthSource(
            start=0.0, duration=0.15, bandwidth_gbs=12.0, streams=2
        ),
        "hpas.cache_thrash": HpasCacheThrashSource(
            start=0.02, duration=0.1, cpus=(0, 1), bandwidth_gbs=6.0
        ),
        "background": BackgroundNoiseSource.preset("desktop-nogui", intensity=0.5),
    }


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf", workload="schedbench", model="omp", reps=2, seed=11
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_builtin_kinds_registered(self):
        assert available_sources() == ALL_KINDS

    def test_get_source_type(self):
        assert get_source_type("io") is IoNoiseSource
        assert get_source_type("trace-replay") is TraceReplaySource

    def test_unknown_kind_rejected_with_listing(self):
        with pytest.raises(KeyError, match="io"):
            get_source_type("does-not-exist")

    def test_every_kind_documents_cli_params(self):
        for kind in available_sources():
            params = get_source_type(kind).cli_params()
            assert isinstance(params, dict) and params


# ----------------------------------------------------------------------
# serialization: the common envelope
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_json_round_trip(self, kind):
        src = one_of_each()[kind]
        clone = source_from_json(src.to_json())
        assert type(clone) is type(src)
        assert clone.to_dict() == src.to_dict()
        assert clone == src

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_envelope_shape(self, kind):
        d = one_of_each()[kind].to_dict()
        assert set(d) == {"kind", "version", "params"}
        assert d["kind"] == kind
        json.dumps(d)  # must be pure-JSON serialisable

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_spec_hash_stable_across_round_trip(self, kind):
        src = one_of_each()[kind]
        h = src.spec_hash()
        assert len(h) == 16 and int(h, 16) >= 0
        assert source_from_json(src.to_json()).spec_hash() == h

    def test_spec_hash_differs_between_params(self):
        a = HpasMemoryBandwidthSource(start=0.0, duration=0.1, bandwidth_gbs=10.0)
        b = HpasMemoryBandwidthSource(start=0.0, duration=0.1, bandwidth_gbs=11.0)
        assert a.spec_hash() != b.spec_hash()

    def test_stack_round_trip(self):
        sources = one_of_each()
        stack = NoiseStack(
            [sources["trace-replay"], sources["hpas.cache_thrash"], sources["io"]]
        )
        clone = NoiseStack.from_json(stack.to_json())
        assert clone.to_dict() == stack.to_dict()
        assert clone.kinds() == ["trace-replay", "hpas.cache_thrash", "io"]
        assert clone.spec_hash() == stack.spec_hash()

    def test_stack_pickles(self):
        stack = NoiseStack([one_of_each()["memory"]])
        clone = pickle.loads(pickle.dumps(stack))
        assert clone.to_dict() == stack.to_dict()


# ----------------------------------------------------------------------
# stack semantics
# ----------------------------------------------------------------------
class TestStack:
    def test_flattens_nested_stacks(self):
        srcs = one_of_each()
        inner = NoiseStack([srcs["io"], srcs["memory"]])
        outer = NoiseStack([srcs["trace-replay"], inner])
        assert outer.kinds() == ["trace-replay", "io", "memory"]

    def test_coerce_legacy_types(self):
        assert NoiseStack.coerce(None) is None
        assert NoiseStack.coerce(tiny_config()).kinds() == ["trace-replay"]
        io_cfg = IoNoiseConfig([IoBurst(start=0.0, duration=0.1)])
        assert NoiseStack.coerce(io_cfg).kinds() == ["io"]
        mem_cfg = MemoryNoiseConfig(
            [MemoryNoiseEvent(start=0.0, duration=0.1, bandwidth_gbs=5.0)]
        )
        assert NoiseStack.coerce(mem_cfg).kinds() == ["memory"]

    def test_coerce_source_and_list(self):
        src = one_of_each()["io"]
        assert NoiseStack.coerce(src).kinds() == ["io"]
        both = NoiseStack.coerce([src, one_of_each()["memory"]])
        assert both.kinds() == ["io", "memory"]

    def test_coerce_environment(self):
        from repro.sim.noise import desktop_noise

        stack = NoiseStack.coerce(desktop_noise())
        assert stack.kinds() == ["background"]

    def test_empty_stack_is_falsy(self):
        assert not NoiseStack([])
        assert len(NoiseStack([])) == 0

    def test_rt_throttle_policy(self):
        srcs = one_of_each()
        assert NoiseStack([srcs["trace-replay"]]).disables_rt_throttle
        assert NoiseStack([srcs["io"]]).disables_rt_throttle
        assert not NoiseStack([srcs["background"]]).disables_rt_throttle
        assert NoiseStack([srcs["background"], srcs["io"]]).disables_rt_throttle


# ----------------------------------------------------------------------
# composed execution (extensions generators under the protocol)
# ----------------------------------------------------------------------
class TestComposedExecution:
    def test_hpas_and_replay_compose_in_one_run(self):
        srcs = one_of_each()
        stack = NoiseStack(
            [srcs["trace-replay"], srcs["hpas.cache_thrash"], srcs["hpas.membw"]]
        )
        baseline = run_experiment(spec())
        injected = run_experiment(spec(), noise=stack)
        assert injected.injected and not baseline.injected
        assert injected.times.mean() > baseline.times.mean()

    def test_composite_run_is_deterministic(self):
        srcs = one_of_each()
        stack = NoiseStack([srcs["io"], srcs["memory"], srcs["background"]])
        a = run_experiment(spec(), noise=stack)
        b = run_experiment(spec(), noise=stack)
        np.testing.assert_array_equal(a.times, b.times)

    def test_source_order_is_part_of_the_seed_contract(self):
        # Child RNGs key off stack position: reordering stochastic
        # sources is a different (still deterministic) experiment.
        srcs = one_of_each()
        ab = run_experiment(spec(), noise=NoiseStack([srcs["io"], srcs["background"]]))
        ab2 = run_experiment(spec(), noise=NoiseStack([srcs["io"], srcs["background"]]))
        np.testing.assert_array_equal(ab.times, ab2.times)

    def test_single_source_equivalent_to_stack_of_one(self):
        src = TraceReplaySource(tiny_config())
        a = run_experiment(spec(), noise=src)
        b = run_experiment(spec(), noise=NoiseStack([src]))
        np.testing.assert_array_equal(a.times, b.times)


# ----------------------------------------------------------------------
# spec integration and the deprecated alias
# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_spec_noise_field_drives_runs(self):
        s = spec(noise=TraceReplaySource(tiny_config()))
        rs = run_experiment(s)
        assert rs.injected

    def test_noise_config_alias_warns_and_is_equivalent(self):
        config = tiny_config()
        with pytest.warns(DeprecationWarning, match="noise_config"):
            legacy = ExperimentSpec(
                platform="intel-9700kf", workload="schedbench", reps=2, seed=11,
                noise_config=config,
            )
        modern = spec(noise=config)
        assert legacy.noise is not None
        assert legacy.noise.to_dict() == modern.noise.to_dict()
        np.testing.assert_array_equal(
            run_experiment(legacy).times, run_experiment(modern).times
        )

    def test_run_experiment_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="noise_config"):
            run_experiment(spec(), noise_config=tiny_config())

    def test_spec_with_preserves_noise(self):
        s = spec(noise=tiny_config())
        assert s.with_(seed=99).noise is s.noise

    def test_spec_with_noise_pickles(self):
        s = spec(noise=NoiseStack([one_of_each()["io"]]))
        clone = pickle.loads(pickle.dumps(s))
        assert clone.noise.to_dict() == s.noise.to_dict()

    def test_modern_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_experiment(spec(), noise=tiny_config())


# ----------------------------------------------------------------------
# CLI spec grammar
# ----------------------------------------------------------------------
class TestParseNoiseSpec:
    def test_bare_kind_with_defaults(self):
        src = parse_noise_spec("background:preset=hpc")
        assert isinstance(src, BackgroundNoiseSource)

    def test_params_and_cpu_lists(self):
        src = parse_noise_spec("io:start=0.01,duration=0.1,irq_cpus=0+2")
        assert isinstance(src, IoNoiseSource)
        assert src.config.bursts[0].irq_cpus == (0, 2)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown noise source"):
            parse_noise_spec("warp-drive:x=1")

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="frobnicate"):
            parse_noise_spec("memory:start=0,duration=0.1,bandwidth_gbs=5,frobnicate=1")

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="duration"):
            parse_noise_spec("memory:start=0")

    def test_malformed_pair(self):
        with pytest.raises(ValueError):
            parse_noise_spec("io:start")
