"""Fault-containment tests: policy semantics, retry determinism,
partial results, the campaign journal, and checkpoint/resume.

The load-bearing property mirrors the executor's determinism contract:
a rep recovered through retries (or a campaign resumed from a journal)
must be **bit-identical** to an undisturbed run.
"""

import json
import pickle

import numpy as np
import pytest

from repro.harness import campaigns
from repro.harness.cache import ResultCache
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.faults import (
    CampaignJournal,
    FailureRecord,
    FaultPolicy,
    RepExecutionError,
    RepTimeoutError,
    atomic_write_text,
    rep_deadline,
)


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf", workload="schedbench", reps=4, seed=42,
        workload_params={"repeats": 2},
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


@pytest.fixture(autouse=True)
def _isolated_chaos(monkeypatch):
    """Each test drives REPRO_CHAOS itself; an externally exported
    directive (the CI chaos-smoke job) must not leak into references."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


# ----------------------------------------------------------------------
# policy semantics
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_defaults_fail_fast(self):
        p = FaultPolicy()
        assert p.on_failure == "raise"
        assert p.retries == 0  # raise never retries

    def test_retries_granted_for_retry_and_skip(self):
        assert FaultPolicy(on_failure="retry", max_retries=3).retries == 3
        assert FaultPolicy(on_failure="skip", max_retries=3).retries == 3

    @pytest.mark.parametrize(
        "kw",
        [
            dict(on_failure="explode"),
            dict(timeout=0.0),
            dict(timeout=-1.0),
            dict(max_retries=-1),
            dict(backoff_factor=0.5),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultPolicy(**kw)

    def test_backoff_deterministic_and_bounded(self):
        p = FaultPolicy(on_failure="retry", backoff_base=0.01, backoff_max=0.5)
        a = p.backoff_delay(seed=7, index=3, attempt=1)
        b = p.backoff_delay(seed=7, index=3, attempt=1)
        assert a == b  # pure function of (seed, index, attempt)
        assert p.backoff_delay(7, 3, 2) != a
        assert p.backoff_delay(8, 3, 1) != a
        for attempt in range(1, 6):
            assert 0.0 <= p.backoff_delay(7, 3, attempt) <= 0.5 * 1.5

    def test_backoff_independent_of_rep_stream(self):
        """Jitter draws come from a dedicated spawn branch, never the
        rep's own ``(index,)`` stream."""
        from repro.harness.executor import rep_seed

        p = FaultPolicy(on_failure="retry", backoff_base=0.01)
        before = np.random.default_rng(rep_seed(42, 3)).random(8)
        p.backoff_delay(42, 3, 1)
        after = np.random.default_rng(rep_seed(42, 3)).random(8)
        np.testing.assert_array_equal(before, after)

    def test_chunk_deadline_scales_with_budget(self):
        p = FaultPolicy(timeout=1.0, on_failure="retry", max_retries=2, backoff_max=0.5)
        assert p.chunk_deadline(4) == pytest.approx(1.0 * 3 * 4 + 0.5 * 2 * 4 + 5.0)
        assert FaultPolicy().chunk_deadline(4) is None

    def test_to_dict_round_trips_fields(self):
        p = FaultPolicy(timeout=2.0, on_failure="skip", max_retries=1)
        assert FaultPolicy(**p.to_dict()) == p


class TestFailureRecord:
    def test_round_trip(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            rec = FailureRecord.from_exception(3, "rep", exc, attempts=2, wall_time=0.5)
        assert rec.error == "RuntimeError" and rec.index == 3
        assert FailureRecord.from_dict(rec.to_dict()) == rec

    def test_rep_execution_error_pickles_with_record(self):
        rec = FailureRecord(1, "rep", "X", "m", "d", 2, 0.1)
        err = RepExecutionError("failed", rec)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.args == err.args and clone.record == rec


class TestRepDeadline:
    def test_interrupts_overrun(self):
        import time

        with pytest.raises(RepTimeoutError):
            with rep_deadline(0.05):
                time.sleep(5.0)

    def test_noop_without_timeout(self):
        with rep_deadline(None):
            pass

    def test_clears_timer_on_success(self):
        import time

        with rep_deadline(0.2):
            pass
        time.sleep(0.25)  # would fire here if the timer leaked


# ----------------------------------------------------------------------
# containment through run_experiment (chaos-driven failures)
# ----------------------------------------------------------------------
class TestContainment:
    def test_retry_recovers_bit_identical(self, monkeypatch):
        """Every rep fails once (injected), retries succeed: results are
        bit-identical to an undisturbed run."""
        clean = run_experiment(spec(), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "raise:5:1.0")
        rs = run_experiment(
            spec(),
            executor=SerialExecutor(),
            policy=FaultPolicy(on_failure="retry", max_retries=2, backoff_base=0.0),
        )
        assert not rs.failures
        np.testing.assert_array_equal(clean.times, rs.times)
        assert clean.anomalies == rs.anomalies

    def test_raise_policy_propagates_original_exception(self, monkeypatch):
        from repro.harness.chaos import ChaosError

        monkeypatch.setenv("REPRO_CHAOS", "raise:5:1.0")
        with pytest.raises(ChaosError):
            run_experiment(spec(), executor=SerialExecutor())

    def test_skip_policy_partial_results(self, monkeypatch):
        """Persistent faults + skip: failed reps carry NaN and a record;
        statistics aggregate the completed reps only."""
        monkeypatch.setenv("REPRO_CHAOS", "raise!:11:0.5")
        rs = run_experiment(
            spec(reps=8),
            executor=SerialExecutor(),
            policy=FaultPolicy(on_failure="skip", max_retries=1, backoff_base=0.0),
        )
        assert 0 < rs.failure_count() < 8
        assert np.isnan(rs.times).sum() == rs.failure_count()
        assert len(rs.ok_times) == 8 - rs.failure_count()
        assert np.isfinite(rs.mean) and np.isfinite(rs.sd)
        rec = rs.failures[0]
        assert rec.phase == "rep" and rec.error == "ChaosError" and rec.attempts == 2

    def test_skipped_reps_match_clean_on_surviving_indices(self, monkeypatch):
        clean = run_experiment(spec(reps=8), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "raise!:11:0.5")
        rs = run_experiment(
            spec(reps=8),
            executor=SerialExecutor(),
            policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
        )
        ok = ~np.isnan(rs.times)
        np.testing.assert_array_equal(clean.times[ok], rs.times[ok])

    def test_timeout_retry_recovers_bit_identical(self, monkeypatch):
        """An induced stall trips the SIGALRM deadline; the retry (no
        chaos on attempt 1) reproduces the clean result exactly."""
        clean = run_experiment(spec(reps=3), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "timeout:3:1.0")
        rs = run_experiment(
            spec(reps=3),
            executor=SerialExecutor(),
            policy=FaultPolicy(
                timeout=0.2, on_failure="retry", max_retries=1, backoff_base=0.0
            ),
        )
        assert not rs.failures
        np.testing.assert_array_equal(clean.times, rs.times)

    def test_serial_executor_counts_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise:5:1.0")
        ex = SerialExecutor()
        run_experiment(
            spec(),
            executor=ex,
            policy=FaultPolicy(on_failure="retry", max_retries=2, backoff_base=0.0),
        )
        assert ex.stats()["rep_retries"] == 4  # one retry per rep
        assert ex.stats()["rep_failures"] == 0


# ----------------------------------------------------------------------
# atomic writes and the journal
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}')
        assert json.loads(target.read_text()) == {"a": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"


class TestCampaignJournal:
    def test_record_done_idempotent(self, tmp_path):
        j = CampaignJournal(tmp_path / "j.jsonl")
        j.record_done("k1", label="cell-a")
        j.record_done("k1")
        j.record_done("k2")
        assert j.completed == {"k1", "k2"}
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2  # the duplicate wrote nothing

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CampaignJournal(path)
        j.record_done("k1")
        j.record_failure("k2", FailureRecord(0, "rep", "E", "m", "d", 1, 0.0))
        j2 = CampaignJournal(path)
        assert j2.completed == {"k1"}  # failures never mark cells done
        assert j2.is_done("k1") and not j2.is_done("k2")

    def test_torn_last_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CampaignJournal(path)
        j.record_done("k1")
        j.record_done("k2")
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 8])  # tear the final line
        j2 = CampaignJournal(path)
        assert j2.completed == {"k1"}

    def test_verify_against_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE_REPS", "2")
        cache = ResultCache(tmp_path / "cache")
        j = CampaignJournal(tmp_path / "j.jsonl")
        cache.journal = j
        cache.get_or_run(spec())
        assert len(j.completed) == 1
        assert j.verify_against_cache(cache) == (1, 0)
        for f in (tmp_path / "cache").glob("*.json"):
            f.unlink()
        assert j.verify_against_cache(cache) == (0, 1)

    def test_cache_hit_also_journals(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.get_or_run(spec(reps=2))
        j = CampaignJournal(tmp_path / "j.jsonl")
        cache.journal = j
        cache.get_or_run(spec(reps=2))  # hit — still checkpointed
        assert len(j.completed) == 1


# ----------------------------------------------------------------------
# partial-result quarantine in the cache
# ----------------------------------------------------------------------
class TestPartialQuarantine:
    def test_partial_results_never_cached_under_primary_key(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "raise!:11:0.5")
        # Pin the serial backend: the behaviour under test is the cache's
        # quarantine, and a REPRO_JOBS pool forked before setenv would
        # never see the chaos directive.
        cache = ResultCache(tmp_path, executor=SerialExecutor())
        policy = FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0)
        rs = cache.get_or_run(spec(reps=8), policy=policy)
        assert rs.failure_count() > 0
        assert cache.stats()["partial"] == 1
        partials = list(tmp_path.glob("*.partial.json"))
        assert len(partials) == 1
        env = json.loads(partials[0].read_text())
        assert len(env["failures"]) == rs.failure_count()
        # The primary key is absent: the next call re-runs.
        cache.get_or_run(spec(reps=8), policy=policy)
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 2

    def test_clean_rerun_after_chaos_lifts_caches_normally(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "raise!:11:0.5")
        cache = ResultCache(tmp_path, executor=SerialExecutor())
        policy = FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0)
        partial = cache.get_or_run(spec(reps=8), policy=policy)
        monkeypatch.delenv("REPRO_CHAOS")
        clean = cache.get_or_run(spec(reps=8), policy=policy)
        assert not clean.failures
        ok = ~np.isnan(partial.times)
        np.testing.assert_array_equal(partial.times[ok], clean.times[ok])
        assert cache.get_or_run(spec(reps=8)).times.tolist() == clean.times.tolist()
        assert cache.stats()["hits"] == 1


# ----------------------------------------------------------------------
# campaign checkpoint/resume
# ----------------------------------------------------------------------
class TestCampaignResume:
    @pytest.fixture
    def small_reps(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE_REPS", "3")
        monkeypatch.setenv("REPRO_INJECT_REPS", "2")

    def _settings(self, tmp_path):
        return campaigns.default_settings(
            seed=2025,
            cache=ResultCache(tmp_path / "cache"),
            journal=CampaignJournal(tmp_path / "journal.jsonl"),
        )

    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path, small_reps):
        settings = self._settings(tmp_path)
        reference = campaigns.table1(settings).render()
        assert len(settings.journal.completed) == 6  # 3 workloads x off/on

        # Simulate an interruption that lost some completed cells.
        entries = sorted((tmp_path / "cache").glob("*.json"))
        for f in entries[:2]:
            f.unlink()
        resumed = self._settings(tmp_path)
        present, missing = resumed.journal.verify_against_cache(resumed.cache)
        assert (present, missing) == (4, 2)

        result = campaigns.table1(resumed).render()
        assert result == reference  # bit-identical to the uninterrupted run
        stats = resumed.cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 4

    def test_completed_campaign_resume_runs_nothing(self, tmp_path, small_reps):
        settings = self._settings(tmp_path)
        reference = campaigns.table1(settings).render()
        resumed = self._settings(tmp_path)
        assert resumed.journal.verify_against_cache(resumed.cache)[1] == 0
        assert campaigns.table1(resumed).render() == reference
        assert resumed.cache.stats()["misses"] == 0

    def test_cell_failure_journaled_before_raising(self, tmp_path, small_reps):
        settings = self._settings(tmp_path)

        def exploding(_item):
            raise RuntimeError("cell blew up")

        with pytest.raises(RuntimeError, match="cell blew up"):
            settings.map_cells(exploding, ["only-cell", "other"])
        raw = (tmp_path / "journal.jsonl").read_text()
        entry = json.loads(raw.splitlines()[0])
        assert entry["status"] == "failed"
        assert entry["failure"]["phase"] == "cell"
        assert entry["failure"]["error"] == "RuntimeError"

    def test_settings_thread_policy_and_journal_into_cache(self, tmp_path):
        policy = FaultPolicy(on_failure="skip")
        journal = CampaignJournal(tmp_path / "j.jsonl")
        settings = campaigns.default_settings(
            cache=ResultCache(tmp_path / "cache"),
            fault_policy=policy,
            journal=journal,
        )
        assert settings.cache.policy is policy
        assert settings.cache.journal is journal


# ----------------------------------------------------------------------
# CLI flag plumbing
# ----------------------------------------------------------------------
class TestCliPolicy:
    def _policy(self, *argv):
        from repro.cli import _policy_from, build_parser

        return _policy_from(build_parser().parse_args(argv))

    def test_no_flags_means_no_policy(self):
        assert self._policy("baseline") is None

    def test_retries_implies_retry_action(self):
        p = self._policy("baseline", "--retries", "3")
        assert p.on_failure == "retry" and p.max_retries == 3

    def test_explicit_action_and_timeout(self):
        p = self._policy("inject", "--config", "x.json", "--timeout", "2.5",
                         "--on-failure", "skip")
        assert p.on_failure == "skip" and p.timeout == 2.5

    def test_campaign_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "table1", "--resume", "j.jsonl", "--retries", "1"]
        )
        assert args.target == "table1" and args.resume == "j.jsonl"
