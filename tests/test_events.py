"""Unit tests for the noise-event vocabulary."""

import pytest

from repro.core.events import (
    POLICY_FOR_EVENT,
    RT_PRIORITY_FOR_EVENT,
    EventType,
    event_type_code,
)


class TestEventType:
    def test_labels_match_osnoise(self):
        assert EventType.IRQ.label == "irq_noise"
        assert EventType.SOFTIRQ.label == "softirq_noise"
        assert EventType.THREAD.label == "thread_noise"

    def test_from_label_roundtrip(self):
        for et in EventType:
            assert EventType.from_label(et.label) is et

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            EventType.from_label("dma_noise")

    def test_codes_are_stable(self):
        # columnar traces persist these integers
        assert int(EventType.IRQ) == 0
        assert int(EventType.SOFTIRQ) == 1
        assert int(EventType.THREAD) == 2


class TestPolicyMapping:
    def test_paper_section_4_2_mapping(self):
        assert POLICY_FOR_EVENT[EventType.THREAD] == "SCHED_OTHER"
        assert POLICY_FOR_EVENT[EventType.IRQ] == "SCHED_FIFO"
        assert POLICY_FOR_EVENT[EventType.SOFTIRQ] == "SCHED_FIFO"

    def test_irq_outranks_softirq(self):
        assert RT_PRIORITY_FOR_EVENT[EventType.IRQ] > RT_PRIORITY_FOR_EVENT[EventType.SOFTIRQ]


class TestCodeNormalisation:
    def test_accepts_enum(self):
        assert event_type_code(EventType.THREAD) == 2

    def test_accepts_int(self):
        assert event_type_code(1) == 1

    def test_accepts_label(self):
        assert event_type_code("irq_noise") == 0

    def test_invalid_int(self):
        with pytest.raises(ValueError):
            event_type_code(7)
