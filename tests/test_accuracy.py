"""Unit tests for the replication-accuracy metric (Table 7)."""

import pytest

from repro.core.accuracy import (
    replication_accuracy,
    replication_accuracy_from_times,
    signed_replication_error,
)


class TestSigned:
    def test_perfect_replay(self):
        assert signed_replication_error(1.0, 1.0) == 0.0

    def test_slow_replay_positive(self):
        assert signed_replication_error(1.1, 1.0) == pytest.approx(0.1)

    def test_fast_replay_negative(self):
        assert signed_replication_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            signed_replication_error(0.0, 1.0)
        with pytest.raises(ValueError):
            signed_replication_error(1.0, -1.0)


class TestAbsolute:
    def test_symmetry(self):
        assert replication_accuracy(0.9, 1.0) == pytest.approx(replication_accuracy(1.1, 1.0))

    def test_matches_paper_formula(self):
        # |avg/anomaly - 1|
        assert replication_accuracy(1.0857, 1.0) == pytest.approx(0.0857)


class TestFromTimes:
    def test_uses_mean(self):
        acc = replication_accuracy_from_times([0.9, 1.1], 1.0)
        assert acc == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            replication_accuracy_from_times([], 1.0)
