"""Unit tests for platform presets."""

import pytest

from repro.sim.noise import runlevel3
from repro.sim.platform import available_platforms, get_platform


class TestRegistry:
    def test_presets(self):
        assert set(available_platforms()) == {
            "intel-9700kf",
            "amd-9950x3d",
            "a64fx",
            "a64fx-reserved",
            "hpc-2s64",
        }

    def test_hpc_node_is_multi_numa(self):
        p = get_platform("hpc-2s64")
        assert p.topology.numa_nodes == 2
        assert p.topology.n_physical == 64
        assert p.topology.numa_node(0) != p.topology.numa_node(63)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("epyc")

    def test_intel_shape(self):
        p = get_platform("intel-9700kf")
        assert p.topology.n_physical == 8
        assert p.topology.smt == 1
        assert p.noise.gui  # desktop

    def test_amd_shape(self):
        p = get_platform("amd-9950x3d")
        assert p.topology.n_logical == 32
        assert p.topology.smt == 2

    def test_a64fx_reserved_hides_os_cores(self):
        p = get_platform("a64fx-reserved")
        assert len(p.user_cpus()) == 48
        assert p.noise.os_affinity == (48, 49)

    def test_a64fx_unreserved_exposes_all(self):
        p = get_platform("a64fx")
        assert len(p.user_cpus()) == 48
        assert p.noise.os_affinity == ()

    def test_noise_override(self):
        base = get_platform("intel-9700kf")
        quiet = get_platform("intel-9700kf", noise=runlevel3(base.noise))
        assert not quiet.noise.gui

    def test_presets_are_fresh_instances(self):
        assert get_platform("intel-9700kf") is not get_platform("intel-9700kf")


class TestSpec:
    def test_with_noise_copies(self):
        p = get_platform("intel-9700kf")
        q = p.with_noise(runlevel3(p.noise))
        assert p.noise.gui and not q.noise.gui
        assert q.topology is p.topology

    def test_hbm_platform_bandwidth(self):
        assert get_platform("a64fx").bandwidth_gbs > 10 * get_platform("intel-9700kf").bandwidth_gbs
