"""Unit tests for the trace-analytics layer."""

import pytest

from repro.analysis import (
    busiest_window,
    noise_timeline,
    profile_delta,
    source_breakdown,
    top_sources,
)
from repro.core.events import EventType
from repro.core.profile import build_profile
from repro.core.trace import Trace


def make_trace():
    records = [
        (0, int(EventType.IRQ), "timer", 0.10, 10e-6),
        (0, int(EventType.IRQ), "timer", 0.20, 10e-6),
        (1, int(EventType.THREAD), "kworker", 0.30, 100e-6),
        (2, int(EventType.THREAD), "snapd", 0.50, 50e-3),
        (3, int(EventType.THREAD), "snapd", 0.52, 30e-3),
    ]
    return Trace.from_records(records, exec_time=1.0)


class TestBreakdown:
    def test_sorted_by_total_time(self):
        rows = source_breakdown(make_trace())
        assert rows[0].source == "snapd"
        totals = [r.total_time for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_shares_sum_to_one(self):
        rows = source_breakdown(make_trace())
        assert sum(r.share_of_noise for r in rows) == pytest.approx(1.0)

    def test_counts_and_spread(self):
        rows = {r.source: r for r in source_breakdown(make_trace())}
        assert rows["timer"].count == 2
        assert rows["timer"].cpu_spread == 1
        assert rows["snapd"].cpu_spread == 2

    def test_etype_attribution(self):
        rows = {r.source: r for r in source_breakdown(make_trace())}
        assert rows["timer"].etype is EventType.IRQ
        assert rows["snapd"].etype is EventType.THREAD

    def test_empty_trace(self):
        t = Trace.from_records([], 1.0)
        assert source_breakdown(t) == []

    def test_top_sources_limits(self):
        assert len(top_sources(make_trace(), 2)) == 2
        with pytest.raises(ValueError):
            top_sources(make_trace(), 0)

    def test_str_render(self):
        assert "snapd" in str(source_breakdown(make_trace())[0])


class TestTimeline:
    def test_bins_cover_execution(self):
        edges, noise = noise_timeline(make_trace(), bins=10)
        assert len(edges) == 11
        assert len(noise) == 10
        assert edges[0] == 0.0 and edges[-1] == pytest.approx(1.0)

    def test_total_conserved(self):
        t = make_trace()
        _, noise = noise_timeline(t, bins=7)
        assert noise.sum() == pytest.approx(t.total_noise_time())

    def test_burst_lands_in_right_bin(self):
        _, noise = noise_timeline(make_trace(), bins=10)
        assert noise.argmax() == 5  # snapd events at 0.50-0.52

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            noise_timeline(make_trace(), bins=0)

    def test_empty_trace(self):
        edges, noise = noise_timeline(Trace.from_records([], 1.0), bins=4)
        assert noise.sum() == 0.0


class TestBusiestWindow:
    def test_finds_the_burst(self):
        start, noise = busiest_window(make_trace(), width=0.1)
        assert start == pytest.approx(0.50)
        assert noise == pytest.approx(80e-3)

    def test_wide_window_captures_everything(self):
        t = make_trace()
        _, noise = busiest_window(t, width=2.0)
        assert noise == pytest.approx(t.total_noise_time())

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            busiest_window(make_trace(), width=0.0)

    def test_empty_trace(self):
        assert busiest_window(Trace.from_records([], 1.0), 0.1) == (0.0, 0.0)


class TestProfileDelta:
    def _profiles(self):
        a = build_profile(
            [
                Trace.from_records(
                    [
                        (0, 2, "Xorg", 0.1, 1e-4),
                        (0, 2, "kworker", 0.2, 1e-4),
                    ],
                    1.0,
                )
            ]
        )
        b = build_profile(
            [Trace.from_records([(0, 2, "kworker", 0.2, 2e-4)], 1.0)]
        )
        return a, b

    def test_vanished_source_reported(self):
        a, b = self._profiles()
        deltas = {d.source: d for d in profile_delta(a, b)}
        assert deltas["Xorg"].rate_b == 0.0
        assert deltas["Xorg"].rate_change == pytest.approx(-1.0)

    def test_new_source_is_inf(self):
        a, b = self._profiles()
        deltas = {d.source: d for d in profile_delta(b, a)}
        assert deltas["Xorg"].rate_change == float("inf")

    def test_load_computation(self):
        a, b = self._profiles()
        deltas = {d.source: d for d in profile_delta(a, b)}
        kw = deltas["kworker"]
        assert kw.load_a == pytest.approx(1e-4)
        assert kw.load_b == pytest.approx(2e-4)

    def test_sorted_by_load_change(self):
        a, b = self._profiles()
        deltas = profile_delta(a, b)
        changes = [abs(d.load_b - d.load_a) for d in deltas]
        assert changes == sorted(changes, reverse=True)
