"""Unit tests for the parameter-sweep utility."""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSpec
from repro.harness.sweep import sweep


@pytest.fixture
def base():
    return ExperimentSpec(
        platform="intel-9700kf", workload="nbody", reps=2, seed=5, anomaly_prob=0.0
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path)


class TestSweep:
    def test_grid_cardinality(self, base, cache):
        r = sweep(base, cache=cache, strategy=("Rm", "TP"), model=("omp", "sycl"))
        assert len(r) == 4
        assert r.axes == ("strategy", "model")
        assert ("Rm", "omp") in r.points

    def test_results_reflect_axes(self, base, cache):
        r = sweep(base, cache=cache, model=("omp", "sycl"))
        by_model = dict(zip((p[0] for p in r.points), r.results))
        assert by_model["omp"].mean < by_model["sycl"].mean

    def test_best_by_mean(self, base, cache):
        r = sweep(base, cache=cache, model=("omp", "sycl"))
        point, rs = r.best("mean")
        assert point == ("omp",)

    def test_best_by_other_key(self, base, cache):
        r = sweep(base, cache=cache, strategy=("Rm", "RmHK2"))
        point, rs = r.best("maximum")
        assert point in r.points

    def test_render(self, base, cache):
        text = sweep(base, cache=cache, strategy=("Rm",)).render("demo")
        assert "demo" in text and "mean (s)" in text

    def test_rejects_unknown_axis(self, base, cache):
        with pytest.raises(ValueError):
            sweep(base, cache=cache, color=("red",))

    def test_rejects_empty_grid(self, base, cache):
        with pytest.raises(ValueError):
            sweep(base, cache=cache)

    def test_uses_cache(self, base, cache):
        sweep(base, cache=cache, model=("omp",))
        sweep(base, cache=cache, model=("omp",))
        assert cache.hits >= 1

    def test_thread_axis(self, base, cache):
        r = sweep(base, cache=cache, n_threads=(2, 8))
        by_threads = dict(zip((p[0] for p in r.points), r.results))
        assert by_threads[2].mean > by_threads[8].mean
